"""Text renderings of the paper's table layouts.

Every benchmark prints its table through these helpers so the output can
be compared side by side with the paper: thermometers, Context/Increase
columns, S/F counts, and (for the validation experiment) the per-bug
co-occurrence columns of Table 3.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.core.elimination import EliminationResult
from repro.core.ranking import RankingResult
from repro.core.runs_needed import RunsNeededResult
from repro.core.scores import ScoreRow
from repro.core.thermometer import Thermometer


def _thermometer_text(row: ScoreRow, max_runs: int, width: int = 16) -> str:
    return Thermometer.from_row(row, max_runs=max_runs).render_text(width)


def _row_columns(row: ScoreRow) -> str:
    return (
        f"{row.context:5.3f}  {row.increase:6.3f} ±{max(row.increase - row.increase_lo, 0.0):5.3f}  "
        f"{row.S:>6d} {row.F:>6d} {row.F + row.S:>7d}"
    )


def format_ranking_table(result: RankingResult, title: str, top: int = 10) -> str:
    """Render one Table 1 panel (a/b/c: one ranking strategy)."""
    entries = result.entries[:top]
    max_runs = max((e.row.F + e.row.S for e in entries), default=1)
    lines = [
        f"--- {title} (sorted by {result.strategy.value}) ---",
        f"{'thermometer':<18} {'Context':>7} {'Increase':>15} {'S':>6} {'F':>6} {'F+S':>7}  predicate",
    ]
    for e in entries:
        lines.append(
            f"{_thermometer_text(e.row, max_runs)} {_row_columns(e.row)}  {e.predicate.name}"
        )
    remaining = len(result.entries) - len(entries)
    if remaining > 0:
        lines.append(f"... {remaining} additional predicates follow ...")
    return "\n".join(lines)


def format_summary_table(summaries: Sequence[Mapping[str, object]]) -> str:
    """Render Table 2: the per-subject predicate funnel."""
    header = (
        f"{'subject':<10} {'LoC':>5} {'success':>8} {'failing':>8} {'sites':>7} "
        f"{'initial':>8} {'Increase>0':>11} {'elimination':>12}"
    )
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s['subject']:<10} {s['lines_of_code']:>5} {s['successful_runs']:>8} "
            f"{s['failing_runs']:>8} {s['sites']:>7} {s['initial_predicates']:>8} "
            f"{s['after_increase_pruning']:>11} {s['after_elimination']:>12}"
        )
    return "\n".join(lines)


def format_predictor_table(
    elimination: EliminationResult,
    cooccurrence: Optional[Dict[int, Dict[str, int]]] = None,
    bug_ids: Optional[Sequence[str]] = None,
    width: int = 14,
) -> str:
    """Render a Table 3/4/5/6/7-style predictor list.

    Shows the initial and effective thermometers for each selected
    predictor and, when ground truth is supplied, the per-bug failing-run
    co-occurrence columns of Table 3.
    """
    max_runs = max(
        (s.initial.row.F + s.initial.row.S for s in elimination.selected), default=1
    )
    cols = ""
    if cooccurrence is not None and bug_ids:
        cols = "  " + " ".join(f"{b[-5:]:>6}" for b in bug_ids)
    lines = [
        f"{'initial':<{width + 2}} {'effective':<{width + 2}} "
        f"{'imp':>6} {'Inc':>6} {'S':>5} {'F':>5}  predicate{cols}"
    ]
    for sel in elimination.selected:
        counts = ""
        if cooccurrence is not None and bug_ids:
            row = cooccurrence.get(sel.predicate.index, {})
            counts = "  " + " ".join(f"{row.get(b, 0):>6d}" for b in bug_ids)
        lines.append(
            f"{_thermometer_text(sel.initial.row, max_runs, width)} "
            f"{_thermometer_text(sel.effective.row, max_runs, width)} "
            f"{sel.effective.importance:>6.3f} {sel.effective.row.increase:>6.3f} "
            f"{sel.effective.row.S:>5d} {sel.effective.row.F:>5d}  "
            f"{sel.predicate.name:<40}{counts}"
        )
    return "\n".join(lines)


def format_runs_needed_table(
    results: Mapping[str, Mapping[str, RunsNeededResult]]
) -> str:
    """Render Table 8: minimum runs needed per bug, per subject."""
    lines = [f"{'subject':<12} {'bug':<8} {'F(P)':>6} {'N':>8}"]
    lines.append("-" * 38)
    for subject, bugs in results.items():
        for bug, res in bugs.items():
            n = res.runs_needed if res.runs_needed is not None else -1
            f = res.failing_true_at_n if res.failing_true_at_n is not None else -1
            lines.append(f"{subject:<12} {bug:<8} {f:>6d} {n:>8d}")
    return "\n".join(lines)


def format_logistic_table(ranked: Iterable, top: int = 10) -> str:
    """Render Table 9: top predicates by logistic-regression coefficient."""
    lines = [f"{'coefficient':>12}  predicate", "-" * 50]
    for i, (pred, coef) in enumerate(ranked):
        if i >= top:
            break
        lines.append(f"{coef:>12.6f}  {pred.name}")
    return "\n".join(lines)


def format_bakeoff_table(document: Mapping[str, object]) -> str:
    """Render a ``repro-bakeoff/v1`` document as a measures x subjects matrix.

    One row per measure, one column pair per subject:
    ``rank`` (rank of first faulty site) and ``waste`` (distinct
    non-faulty sites examined first).  ``-`` marks subjects with no
    ground-truth faulty predicate.
    """
    subjects = list(document["subjects"])
    header = f"{'measure':<14}" + "".join(
        f" {s[:10]:>10} {'waste':>6}" for s in subjects
    )
    lines = [
        f"bake-off: {document['runs']} runs/subject, seed {document['seed']}, "
        f"{document['sampling']} sampling",
        header,
        "-" * len(header),
    ]
    for entry in document["measures"]:
        cells = ""
        for s in subjects:
            res = entry["results"].get(s, {})
            rank = res.get("rank_of_first_faulty_site")
            waste = res.get("wasted_effort_sites")
            cells += (
                f" {'-':>10} {'-':>6}"
                if rank is None
                else f" {rank:>10d} {waste:>6d}"
            )
        lines.append(f"{entry['measure']:<14}" + cells)
    return "\n".join(lines)


def format_stack_table(study) -> str:
    """Render the Section 6 stack-signature study."""
    lines = [
        f"{'bug':<8} {'failures':>9} {'signatures':>11} {'dominant':>9} {'unique?':>8}",
        "-" * 50,
    ]
    for bug, stats in study.per_bug.items():
        if stats.failing_runs == 0:
            continue
        lines.append(
            f"{bug:<8} {stats.failing_runs:>9d} {len(stats.signatures):>11d} "
            f"{stats.dominant_share:>9.2f} {'yes' if stats.has_unique_signature else 'no':>8}"
        )
    lines.append(f"stack useful for {study.useful_fraction:.0%} of triggered bugs")
    return "\n".join(lines)
