"""The full paper pipeline as one configurable experiment.

:func:`run_experiment` performs, in order:

1. instrument the subject's source (Section 2);
2. optionally train per-site adaptive sampling rates on a fully sampled
   training population (Section 4);
3. run ``n_runs`` seeded random trials under the chosen sampling plan;
4. prune predicates whose ``Increase`` interval is not strictly positive
   (Section 3.1);
5. run iterative redundancy elimination over the survivors (Section 3.4).

The returned :class:`ExperimentResult` carries every intermediate
artefact, so benchmarks can regenerate any table from one run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.elimination import DiscardStrategy, EliminationResult, eliminate
from repro.core.pruning import PruningResult, prune_predicates
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE
from repro.core.truth import GroundTruth
from repro.instrument.sampling import DEFAULT_RATE, SamplingPlan
from repro.instrument.tracer import InstrumentedProgram
from repro.instrument.transform import InstrumentationConfig
from repro.harness.runner import collect_site_means, run_trials, run_trials_steered
from repro.subjects.base import Subject


@dataclass
class Experiment:
    """Configuration of one end-to-end bug isolation experiment.

    Attributes:
        subject: The subject program to study.
        n_runs: Number of random trials.
        sampling: ``"uniform"``, ``"adaptive"`` (per-site rates trained on
            ``training_runs`` executions), ``"steered"`` (closed-loop:
            rates refit every ``training_runs`` trials from the
            cumulative observed counts, the local analogue of daemon
            steering; serial collection only), or ``"full"`` (no
            sampling; the paper's validation configuration).
        rate: Global rate for ``"uniform"`` sampling.
        training_runs: Training-set size for ``"adaptive"`` sampling
            (paper: 1,000), and the refit cadence for ``"steered"``.
        seed: Base seed for input generation and samplers.
        confidence: Confidence level for the score intervals.
        strategy: Elimination discard strategy (Section 5).
        max_predictors: Optional cap on the elimination output length.
        instrumentation: Scheme configuration for the transformer.
        jobs: Worker processes for trial collection (1 = in-process
            serial; >1 uses :mod:`repro.harness.parallel`, which is
            bit-identical to serial for the same seed).
        shard_dir: When set, trials are collected as on-disk shards
            written directly by the workers
            (:func:`repro.harness.parallel.run_trials_sharded`), then the
            merged population -- bit-identical to the other collection
            modes -- feeds the analysis.  The shard store remains on disk
            for later ``repro-cbi analyze`` sessions.
    """

    subject: Subject
    n_runs: int = 4000
    sampling: str = "adaptive"
    rate: float = DEFAULT_RATE
    training_runs: int = 200
    seed: int = 0
    confidence: float = DEFAULT_CONFIDENCE
    strategy: DiscardStrategy = DiscardStrategy.DISCARD_ALL
    max_predictors: Optional[int] = 30
    instrumentation: Optional[InstrumentationConfig] = None
    jobs: int = 1
    shard_dir: Optional[str] = None


@dataclass
class ExperimentResult:
    """Everything produced by one experiment.

    Attributes:
        config: The experiment configuration.
        program: The instrumented program (sites, predicates, source).
        plan: The sampling plan actually used.
        reports: Collected feedback reports.
        truth: Ground-truth bug occurrences, run-aligned with ``reports``.
        pruning: The ``Increase > 0`` pruning pass output.
        elimination: The ranked predictor list.
        lines_of_code: Source lines of the (uninstrumented) subject.
        wall_seconds: Wall-clock duration of the run+analysis phases.
    """

    config: Experiment
    program: InstrumentedProgram
    plan: SamplingPlan
    reports: ReportSet
    truth: GroundTruth
    pruning: PruningResult
    elimination: EliminationResult
    lines_of_code: int
    wall_seconds: float

    def summary(self) -> dict:
        """One Table 2 row: runs, sites, and predicate funnel counts."""
        return {
            "subject": self.config.subject.name,
            "lines_of_code": self.lines_of_code,
            "successful_runs": self.reports.num_successful,
            "failing_runs": self.reports.num_failing,
            "sites": self.program.table.n_sites,
            "initial_predicates": self.program.table.n_predicates,
            "after_increase_pruning": self.pruning.n_kept,
            "after_elimination": len(self.elimination),
        }


def build_plan(
    subject: Subject,
    program: InstrumentedProgram,
    sampling: str,
    rate: float = DEFAULT_RATE,
    training_runs: int = 200,
    seed: int = 0,
) -> SamplingPlan:
    """Construct the sampling plan an experiment will use."""
    if sampling == "full":
        return SamplingPlan.full()
    if sampling == "uniform":
        return SamplingPlan.uniform(rate)
    if sampling == "adaptive":
        means = collect_site_means(subject, program, training_runs, seed=seed + 777_000)
        return SamplingPlan.adaptive(means)
    if sampling == "steered":
        # Closed-loop mode has no single static plan; trials start fully
        # sampled and refit as counts accumulate (run_trials_steered).
        return SamplingPlan.full()
    raise ValueError(f"unknown sampling mode {sampling!r}")


def run_experiment(config: Experiment) -> ExperimentResult:
    """Execute the full pipeline for one configuration."""
    started = time.perf_counter()
    program = config.subject.build_program(config=config.instrumentation)
    plan = build_plan(
        config.subject,
        program,
        config.sampling,
        rate=config.rate,
        training_runs=config.training_runs,
        seed=config.seed,
    )
    if config.sampling == "steered":
        if config.shard_dir is not None or config.jobs > 1:
            raise ValueError(
                "steered sampling is a serial closed loop; it cannot shard or "
                "parallelise trial collection (each trial's plan depends on "
                "every earlier trial's counts)"
            )
        reports, truth = run_trials_steered(
            config.subject,
            program,
            config.n_runs,
            seed=config.seed,
            refit_runs=config.training_runs,
        )
    elif config.shard_dir is not None:
        from repro.harness.parallel import run_trials_sharded

        store = run_trials_sharded(
            config.subject,
            config.n_runs,
            plan,
            config.shard_dir,
            seed=config.seed,
            jobs=config.jobs,
            config=config.instrumentation,
        )
        reports, truth = store.load_merged()
        if truth is None:  # pragma: no cover - shards always carry truth here
            truth = GroundTruth(bug_ids=list(config.subject.bug_ids))
    elif config.jobs > 1:
        from repro.harness.parallel import run_trials_parallel

        reports, truth = run_trials_parallel(
            config.subject,
            config.n_runs,
            plan,
            seed=config.seed,
            jobs=config.jobs,
            config=config.instrumentation,
        )
    else:
        reports, truth = run_trials(
            config.subject, program, config.n_runs, plan, seed=config.seed
        )
    pruning = prune_predicates(reports, confidence=config.confidence)
    elimination = eliminate(
        reports,
        candidates=pruning.kept,
        strategy=config.strategy,
        confidence=config.confidence,
        max_predictors=config.max_predictors,
    )
    wall = time.perf_counter() - started
    loc = sum(
        1 for line in config.subject.source().splitlines() if line.strip()
    )
    return ExperimentResult(
        config=config,
        program=program,
        plan=plan,
        reports=reports,
        truth=truth,
        pruning=pruning,
        elimination=elimination,
        lines_of_code=loc,
        wall_seconds=wall,
    )
