"""Measuring the steering payoff: runs to isolate, before vs. after.

The headline number for closed-loop adaptive collection is the paper's
Table 8 question answered live: how many runs are needed until every
bug's chosen predictor has a stable Importance?  :func:`steering_payoff`
answers it twice over identical trial budgets --

* **unsteered**: the paper's deployment default, uniform 1/100 sampling
  for every trial;
* **steered**: the closed loop, trials starting fully sampled with
  per-site rates refit every ``refit_runs`` trials from cumulative
  observed counts (:func:`repro.harness.runner.run_trials_steered`, the
  local analogue of daemon steering)

-- and reports each population's :func:`~repro.core.runs_needed.runs_to_isolate`.
Steering keeps rarely reached (and therefore information-starved) sites
fully sampled while hot sites back off toward the floor, so the steered
population reaches a stable ranking in fewer runs.

Everything is deterministic in ``(subject, n_runs, seed)``; the
EXPERIMENTS.md table and the ``steering`` bench scenario both come from
these functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.runs_needed import runs_to_isolate
from repro.core.truth import dominant_bug
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment
from repro.subjects.base import Subject


@dataclass
class SteeringPayoff:
    """Before/after runs-to-isolate for one subject at one budget.

    Attributes:
        subject: Subject name.
        n_runs: The (equal) trial budget of both populations.
        unsteered: Runs to isolate every bug under uniform 1/100
            sampling, or None when some predictor never converged
            within the budget.
        steered: Same, under closed-loop steering.
        unsteered_bugs / steered_bugs: Bugs with an isolated predictor
            in each population (the metric only covers these).
    """

    subject: str
    n_runs: int
    unsteered: Optional[int]
    steered: Optional[int]
    unsteered_bugs: int
    steered_bugs: int

    @property
    def improved(self) -> bool:
        """Did steering isolate at least as cheaply as uniform sampling?

        An unconverged population counts as needing more than the
        budget, so converged always beats unconverged.
        """
        if self.steered is None:
            return False
        if self.unsteered is None:
            return True
        return self.steered <= self.unsteered


def chosen_predictors(result: ExperimentResult) -> Dict[str, int]:
    """One predictor per bug: the highest-ranked selection dominating it."""
    chosen: Dict[str, int] = {}
    for sel in result.elimination.selected:
        dom = dominant_bug(result.reports, result.truth, sel.predicate.index)
        if dom is None:
            continue
        chosen.setdefault(dom[0], sel.predicate.index)
    return chosen


def runs_to_isolate_for(result: ExperimentResult, threshold: float = 0.2) -> Optional[int]:
    """Budget at which every isolated bug's predictor had stabilised."""
    chosen = chosen_predictors(result)
    if not chosen:
        return None
    return runs_to_isolate(
        result.reports, sorted(chosen.values()), threshold=threshold
    )


def steering_payoff(
    subject: Subject,
    n_runs: int,
    seed: int = 0,
    refit_runs: int = 200,
    threshold: float = 0.2,
) -> SteeringPayoff:
    """Run the before/after comparison for one subject at one budget."""
    unsteered = run_experiment(
        Experiment(subject=subject, n_runs=n_runs, sampling="uniform", seed=seed)
    )
    steered = run_experiment(
        Experiment(
            subject=subject,
            n_runs=n_runs,
            sampling="steered",
            training_runs=refit_runs,
            seed=seed,
        )
    )
    return SteeringPayoff(
        subject=subject.name,
        n_runs=n_runs,
        unsteered=runs_to_isolate_for(unsteered, threshold=threshold),
        steered=runs_to_isolate_for(steered, threshold=threshold),
        unsteered_bugs=len(chosen_predictors(unsteered)),
        steered_bugs=len(chosen_predictors(steered)),
    )
