"""Run subject programs over random inputs and collect feedback reports.

Each trial: generate a seeded random input, arm the sampler, execute the
subject's entry function, label the run (crash, oracle verdict, or clean
success), and append the run's sparse predicate counters to the report
set.  Ground-truth bug occurrences are captured through the
:mod:`repro.subjects.base` side channel.
"""

from __future__ import annotations

import random
from typing import Tuple

import numpy as np

from repro.core.reports import ReportBuilder, ReportSet
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import InstrumentedProgram, crash_stack
from repro.subjects import base as subject_base
from repro.subjects.base import Subject


def run_one_trial(
    subject: Subject,
    program: InstrumentedProgram,
    entry,
    plan: SamplingPlan,
    trial_seed: int,
):
    """Execute exactly one seeded trial of an instrumented program.

    This is the single definition of what "trial ``trial_seed``" means:
    the input RNG, the sampler seed, the crash/oracle labelling and the
    ground-truth capture all derive from ``trial_seed`` alone, so every
    collection path -- the serial runner, the sharded workers of
    :mod:`repro.harness.parallel`, and the networked uploader of
    :mod:`repro.serve.client` -- produces byte-identical run records for
    the same seed.

    Args:
        subject: The subject describing inputs and the oracle.
        program: The instrumented program.
        entry: The bound entry callable (``program.func(subject.entry)``),
            passed in so callers amortise the lookup across trials.
        plan: Sampling plan for the trial.
        trial_seed: The absolute trial seed (base seed + trial index).

    Returns:
        ``(failed, site_obs, pred_true, stack, bugs)`` -- the run's
        outcome label, sparse counter dicts, optional crash-stack
        signature, and ground-truth bug ids.
    """
    input_rng = random.Random(trial_seed * 2654435761 % (2 ** 31))
    trial_input = subject.generate_input(input_rng)
    subject_base.begin_truth_capture()
    program.begin_run(plan, seed=trial_seed + 1)
    failed = False
    stack = None
    try:
        output = entry(trial_input)
    except Exception as exc:  # crash: any uncaught exception
        failed = True
        stack = crash_stack(exc, program.filename)
    else:
        failed = not subject.oracle(trial_input, output)
    site_obs, pred_true = program.end_run()
    bugs = subject_base.end_truth_capture()
    return failed, site_obs, pred_true, stack, bugs


def run_trials(
    subject: Subject,
    program: InstrumentedProgram,
    n_runs: int,
    plan: SamplingPlan,
    seed: int = 0,
) -> Tuple[ReportSet, GroundTruth]:
    """Execute ``n_runs`` seeded trials and collect reports + truth.

    Args:
        subject: The subject describing inputs and the oracle.
        program: The instrumented program (from
            :func:`repro.instrument.tracer.instrument_source`).
        n_runs: Number of trials.
        plan: Sampling plan for every trial.
        seed: Base seed; trial ``i`` derives its input and sampler seeds
            from ``seed + i`` so populations are reproducible and can be
            extended by increasing ``n_runs``.

    Returns:
        ``(reports, truth)``, run-aligned.
    """
    builder = ReportBuilder(program.table)
    truth = GroundTruth(bug_ids=list(subject.bug_ids))
    entry = program.func(subject.entry)

    for i in range(n_runs):
        failed, site_obs, pred_true, stack, bugs = run_one_trial(
            subject, program, entry, plan, seed + i
        )
        builder.add_run(failed, site_obs, pred_true, stack=stack, seed=seed + i)
        truth.add_run(bugs)

    return builder.build(), truth


def run_trials_steered(
    subject: Subject,
    program: InstrumentedProgram,
    n_runs: int,
    seed: int = 0,
    refit_runs: int = 100,
    target_samples: float = None,
    min_rate: float = None,
) -> Tuple[ReportSet, GroundTruth]:
    """Closed-loop collection: refit per-site rates from the runs so far.

    The local analogue of daemon steering, for measuring the payoff
    without a network: trials start fully sampled (a cold fit over zero
    counts yields rate 1.0 everywhere), and every ``refit_runs`` trials
    the per-site rates are refit via
    :func:`repro.instrument.sampling.adaptive_rates` over the cumulative
    mean observed reach counts -- exactly the statistics a steering
    daemon accumulates from committed batches.  Hot sites back off
    toward the 1/100 floor while rarely reached sites stay fully
    sampled, so information per trial stays high as the budget grows.

    Deterministic in ``(seed, n_runs, refit_runs)``: the rate schedule
    is a pure function of the trials already executed.

    Returns:
        ``(reports, truth)``, run-aligned, like :func:`run_trials`.
    """
    from repro.instrument.sampling import (
        DEFAULT_TARGET_SAMPLES,
        MIN_ADAPTIVE_RATE,
        adaptive_rates,
    )

    if target_samples is None:
        target_samples = DEFAULT_TARGET_SAMPLES
    if min_rate is None:
        min_rate = MIN_ADAPTIVE_RATE

    builder = ReportBuilder(program.table)
    truth = GroundTruth(bug_ids=list(subject.bug_ids))
    entry = program.func(subject.entry)
    totals = np.zeros(program.table.n_sites, dtype=np.float64)
    plan = SamplingPlan.full()

    for i in range(n_runs):
        if i and i % refit_runs == 0:
            plan = SamplingPlan.adaptive(
                totals / i, target_samples=target_samples, min_rate=min_rate
            )
        failed, site_obs, pred_true, stack, bugs = run_one_trial(
            subject, program, entry, plan, seed + i
        )
        builder.add_run(failed, site_obs, pred_true, stack=stack, seed=seed + i)
        truth.add_run(bugs)
        for site, count in site_obs.items():
            totals[site] += count

    return builder.build(), truth


def collect_site_means(
    subject: Subject,
    program: InstrumentedProgram,
    n_runs: int,
    seed: int = 10_000_000,
) -> np.ndarray:
    """Measure mean per-run site reach counts on a fully sampled training set.

    This is the training phase of the paper's nonuniform sampling: "Based
    on a training set of 1,000 executions, we set the sampling rate of
    each predicate so as to obtain an expected 100 samples" (Section 4).
    Training inputs use a disjoint seed range from the experiment proper.

    Returns:
        Array of shape ``(n_sites,)`` with mean observation counts.
    """
    totals = np.zeros(program.table.n_sites, dtype=np.float64)
    entry = program.func(subject.entry)
    for i in range(n_runs):
        input_rng = random.Random((seed + i) * 2654435761 % (2 ** 31))
        trial_input = subject.generate_input(input_rng)
        subject_base.begin_truth_capture()
        program.begin_run(SamplingPlan.full(), seed=seed + i + 1)
        try:
            entry(trial_input)
        except Exception:
            pass  # training only measures coverage; outcomes are irrelevant
        site_obs, _ = program.end_run()
        subject_base.end_truth_capture()
        for site, count in site_obs.items():
            totals[site] += count
    if n_runs > 0:
        totals /= n_runs
    return totals
