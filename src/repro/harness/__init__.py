"""End-to-end experiment pipeline.

``runner`` executes a subject program over many seeded random inputs and
collects feedback reports plus ground truth; ``experiment`` wires the
full paper pipeline together (instrument -> optionally train adaptive
sampling rates -> run -> prune -> eliminate); ``tables`` renders the
paper's table layouts as text for the benchmark harness.
"""

from repro.harness.runner import collect_site_means, run_trials
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment

__all__ = [
    "run_trials",
    "collect_site_means",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
]
