"""HTML report generation: the paper's interactive analysis view.

"Complete analysis results for all experiments may be browsed
interactively" -- the paper's companion website rendered, per
experiment, the ranked predictor list with bug thermometers, and linked
each predictor to its affinity list.  This module renders the same
artefact as a standalone HTML file from an
:class:`~repro.harness.experiment.ExperimentResult`.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

from repro.core.affinity import affinity_list
from repro.core.thermometer import Thermometer
from repro.core.truth import classify_predictor, cooccurrence_table
from repro.harness.experiment import ExperimentResult

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 8px; font-size: 13px;
         text-align: left; }
th { background: #f0f0f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f6f6f6; padding: 1px 4px; }
.affinity { margin-left: 2em; color: #555; font-size: 12px; }
.kind-bug { color: #067d00; font-weight: bold; }
.kind-sub-bug { color: #b07700; }
.kind-super-bug { color: #b00060; }
h2 { border-bottom: 1px solid #ddd; padding-bottom: 4px; }
"""


def _summary_rows(summary: Dict[str, object]) -> str:
    cells = "".join(
        f"<tr><th>{html.escape(str(k))}</th>"
        f"<td class='num'>{html.escape(str(v))}</td></tr>"
        for k, v in summary.items()
    )
    return f"<table>{cells}</table>"


def render_report(
    result: ExperimentResult,
    title: Optional[str] = None,
    affinity_top: int = 5,
    include_truth: bool = True,
) -> str:
    """Render one experiment as a standalone HTML document.

    Args:
        result: A finished experiment.
        title: Page title; defaults to the subject name.
        affinity_top: Affinity-list entries shown per predictor.
        include_truth: Include the ground-truth co-occurrence columns
            and predictor grading (available in controlled experiments).

    Returns:
        The HTML text.
    """
    reports = result.reports
    truth = result.truth
    subject = result.config.subject
    title = title or f"Bug isolation report: {subject.name}"

    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<h2>Summary</h2>",
        _summary_rows(result.summary()),
        "<h2>Ranked failure predictors</h2>",
    ]

    selected = [s.predicate.index for s in result.elimination.selected]
    co = None
    if include_truth and truth.bug_ids and truth.n_runs == reports.n_runs:
        co = cooccurrence_table(reports, truth, selected)

    bug_cols = (
        "".join(f"<th>{html.escape(b)}</th>" for b in truth.bug_ids) if co else ""
    )
    parts.append(
        "<table><tr><th>#</th><th>initial</th><th>effective</th>"
        "<th>Importance</th><th>Increase</th><th>S</th><th>F</th>"
        f"<th>predicate</th><th>kind</th>{bug_cols}</tr>"
    )

    max_runs = max(
        (s.initial.row.F + s.initial.row.S for s in result.elimination.selected),
        default=1,
    )
    for sel in result.elimination.selected:
        initial = Thermometer.from_row(sel.initial.row, max_runs=max_runs)
        effective = Thermometer.from_row(sel.effective.row, max_runs=max_runs)
        kind = ""
        if co is not None:
            k = classify_predictor(reports, truth, sel.predicate.index)
            kind = f"<span class='kind-{k}'>{k}</span>"
        cells = [
            f"<td class='num'>{sel.rank}</td>",
            f"<td>{initial.render_html()}</td>",
            f"<td>{effective.render_html()}</td>",
            f"<td class='num'>{sel.effective.importance:.3f}</td>",
            f"<td class='num'>{sel.effective.row.increase:.3f}</td>",
            f"<td class='num'>{sel.effective.row.S}</td>",
            f"<td class='num'>{sel.effective.row.F}</td>",
            f"<td><code>{html.escape(sel.predicate.name)}</code></td>",
            f"<td>{kind}</td>",
        ]
        if co is not None:
            row = co[sel.predicate.index]
            cells.extend(
                f"<td class='num'>{row.get(b, 0)}</td>" for b in truth.bug_ids
            )
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</table>")

    parts.append("<h2>Affinity lists</h2>")
    for sel in result.elimination.selected:
        parts.append(
            f"<p><code>{html.escape(sel.predicate.name)}</code></p>"
            "<div class='affinity'><ol>"
        )
        entries = affinity_list(
            reports,
            sel.predicate.index,
            candidates=result.pruning.kept,
            top=affinity_top,
        )
        for entry in entries:
            parts.append(
                f"<li>drop {entry.drop:.3f} &mdash; "
                f"<code>{html.escape(entry.predicate.name)}</code></li>"
            )
        parts.append("</ol></div>")

    parts.append(
        f"<p><em>{reports.n_runs} runs, {reports.num_failing} failing; "
        f"sampling: {result.plan.mode}.</em></p>"
    )
    parts.append("</body></html>")
    return "".join(parts)


def write_report(result: ExperimentResult, path: str, **kwargs) -> None:
    """Render and write the HTML report to ``path``."""
    text = render_report(result, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
