"""The measure bake-off harness behind ``repro-cbi bakeoff``.

Runs every registered suspiciousness measure (:mod:`repro.core.measures`)
on every subject against the static ground-truth bug sites
(:func:`repro.core.truth.bug_sites_from_source`) and reports, per
``(measure, subject)`` cell:

* **rank of first faulty site** -- 1-based position, in the measure's
  full-table descending ranking (stable ties by predicate index), of the
  first predicate whose site lies in a faulty function;
* **wasted effort** -- the number of *distinct non-faulty sites* a
  developer would examine before reaching that predicate (the standard
  "wasted effort" cost model of the SBFL literature, at site
  granularity so duplicate predicates on one site are not double-billed).

Trials are fully deterministic (seeded inputs, full observation -- no
sampling noise in the counts), so the emitted document is reproducible
bit for bit; CI compares the Importance row against a committed baseline
(:func:`compare_to_baseline`).  Regenerating the paper's own ranking is
the ``importance`` row of the matrix: the registry entry delegates to
:func:`repro.core.importance.importance_scores`, so that row is
bit-identical to the historical pipeline by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import measures
from repro.core.truth import faulty_predicate_mask
from repro.instrument.sampling import SamplingPlan
from repro.store.incremental import SufficientStats

#: Document schema identifier, bumped on layout changes.
BAKEOFF_SCHEMA = "repro-bakeoff/v1"

#: Default trials per subject; enough for every subject to surface each
#: measure's ordering while keeping the full 5-subject matrix fast.
DEFAULT_RUNS = 400


@dataclass(frozen=True)
class BakeoffCell:
    """Metrics for one measure on one subject."""

    measure: str
    subject: str
    rank_of_first_faulty_site: Optional[int]
    wasted_effort_sites: Optional[int]
    first_faulty_predicate: Optional[str]

    def to_json(self) -> Dict[str, object]:
        return {
            "rank_of_first_faulty_site": self.rank_of_first_faulty_site,
            "wasted_effort_sites": self.wasted_effort_sites,
            "first_faulty_predicate": self.first_faulty_predicate,
        }


def rank_metrics(
    table, values: np.ndarray, faulty_mask: np.ndarray
) -> Dict[str, object]:
    """Grade one measure's value array against the faulty-predicate mask.

    The ranking is the full-table stable descending argsort of
    ``values`` (ties resolve in predicate-index order, exactly as in
    :func:`repro.core.ranking.rank_by_measure`).  Returns the metric dict
    for one bake-off cell; all three metrics are ``None`` when no
    predicate is faulty (a subject with no extracted bug sites).
    """
    values = np.asarray(values, dtype=np.float64)
    faulty_mask = np.asarray(faulty_mask, dtype=bool)
    if not faulty_mask.any():
        return {
            "rank_of_first_faulty_site": None,
            "wasted_effort_sites": None,
            "first_faulty_predicate": None,
        }
    order = np.argsort(-values, kind="stable")
    examined_sites: set = set()
    for rank, idx in enumerate(order, start=1):
        idx = int(idx)
        if faulty_mask[idx]:
            pred = table.predicates[idx]
            return {
                "rank_of_first_faulty_site": rank,
                "wasted_effort_sites": len(examined_sites),
                "first_faulty_predicate": pred.name,
            }
        examined_sites.add(table.predicates[idx].site_index)
    raise AssertionError("faulty_mask.any() held but no faulty predicate ranked")


def run_bakeoff(
    subjects: Dict[str, object],
    subject_names: Optional[Sequence[str]] = None,
    measure_names: Optional[Sequence[str]] = None,
    runs: Optional[int] = None,
    seed: int = 0,
    jobs: int = 1,
) -> Dict[str, object]:
    """Run the full measure x subject bake-off matrix.

    Args:
        subjects: Name -> subject-constructor mapping
            (``repro.cli.SUBJECTS``; classes or any zero-arg callables).
        subject_names: Subset of subjects to grade (default: all, in
            registry order).
        runs: Deterministic trials per subject, full observation.  When
            ``None``, builtin subjects get :data:`DEFAULT_RUNS` and
            factory subjects follow their auto-derived ``trial_budget``
            (their failure rates vary too widely for one fixed count).
        measure_names: Subset of measures (default: every registered
            measure, sorted).
        seed: Base trial seed.
        jobs: Worker count for the scoring engine (the measure values go
            through :meth:`AnalysisEngine.score_stats`, so the matrix is
            identical for any ``jobs``).

    Returns:
        A ``repro-bakeoff/v1`` JSON document (see ``docs/MEASURES.md``).
        When any graded subject is factory-made, the document carries a
        ``mutation_classes`` section summarising rank-of-first-faulty-site
        per mutation class for every measure.
    """
    from repro.core.engine import AnalysisEngine
    from repro.harness.runner import run_trials

    names = list(subject_names) if subject_names else list(subjects)
    mnames = list(measure_names) if measure_names else list(measures.available())
    for m in mnames:
        measures.get(m)  # fail fast on unknown names
    engine = AnalysisEngine(jobs=jobs)

    subject_docs: Dict[str, object] = {}
    matrix: Dict[str, Dict[str, Dict[str, object]]] = {m: {} for m in mnames}
    by_class: Dict[str, List[str]] = {}
    for name in names:
        subject = subjects[name]()
        program = subject.build_program()
        sites = subject.bug_sites()
        faulty = faulty_predicate_mask(program.table, sites)
        mutation_class = getattr(subject, "mutation_class", None)
        if mutation_class is not None:
            by_class.setdefault(mutation_class, []).append(name)
        n_runs = runs
        if n_runs is None:
            n_runs = (
                subject.trial_budget if subject.kind == "factory" else DEFAULT_RUNS
            )
        reports, _truth = run_trials(
            subject, program, n_runs, SamplingPlan.full(), seed=seed
        )
        stats = SufficientStats.from_reports(reports)
        subject_docs[name] = {
            "runs": int(reports.n_runs),
            "failing": int(reports.failed.sum()),
            "kind": subject.kind,
            "mutation_class": mutation_class,
            "predicates": int(len(program.table.predicates)),
            "faulty_predicates": int(faulty.sum()),
            "bug_sites": [
                {"bug_id": s.bug_id, "function": s.function, "line": s.line}
                for s in sites
            ],
        }
        for m in mnames:
            scoring = engine.score_stats(stats, measure=m)
            matrix[m][name] = rank_metrics(
                program.table, scoring.measure_values, faulty
            )

    document: Dict[str, object] = {
        "schema": BAKEOFF_SCHEMA,
        "runs": None if runs is None else int(runs),
        "seed": int(seed),
        "sampling": "full",
        "subjects": subject_docs,
        "measures": [
            {
                "measure": m,
                "version": measures.get(m).version,
                "formula": measures.get(m).formula,
                "results": matrix[m],
            }
            for m in mnames
        ],
    }
    if by_class:
        document["mutation_classes"] = {
            m: {
                cls: _class_summary(matrix[m], subs)
                for cls, subs in sorted(by_class.items())
            }
            for m in mnames
        }
    return document


def _class_summary(
    row: Dict[str, Dict[str, object]], subject_names: List[str]
) -> Dict[str, object]:
    """Aggregate one measure's ranks over one mutation class."""
    ranks = {
        name: row[name]["rank_of_first_faulty_site"] for name in subject_names
    }
    ranked = sorted(r for r in ranks.values() if r is not None)
    return {
        "ranks": ranks,
        "best_rank": ranked[0] if ranked else None,
        "median_rank": ranked[len(ranked) // 2] if ranked else None,
        "isolated_at_5": sum(1 for r in ranked if r <= 5),
        "subjects": len(subject_names),
    }


@dataclass
class BaselineRegression:
    """One Importance-row regression against a committed baseline."""

    subject: str
    baseline_rank: int
    current_rank: Optional[int]

    def __str__(self) -> str:
        cur = "unranked" if self.current_rank is None else str(self.current_rank)
        return (
            f"importance rank-of-first-faulty-site regressed on "
            f"{self.subject}: baseline {self.baseline_rank}, now {cur}"
        )


def compare_to_baseline(
    document: Dict[str, object], baseline: Dict[str, object]
) -> List[BaselineRegression]:
    """Compare the Importance row against a committed baseline document.

    A *regression* is a strictly larger (or newly missing)
    rank-of-first-faulty-site for a subject both documents grade.
    Subjects present only on one side are ignored, so a quick CI run over
    one subject can gate against a full committed matrix.
    """

    def importance_row(doc: Dict[str, object]) -> Dict[str, Dict[str, object]]:
        for entry in doc.get("measures", []):
            if entry.get("measure") == "importance":
                return entry.get("results", {})
        return {}

    base_row = importance_row(baseline)
    cur_row = importance_row(document)
    regressions: List[BaselineRegression] = []
    for subject in sorted(set(base_row) & set(cur_row)):
        base_rank = base_row[subject].get("rank_of_first_faulty_site")
        cur_rank = cur_row[subject].get("rank_of_first_faulty_site")
        if base_rank is None:
            continue
        if cur_rank is None or cur_rank > base_rank:
            regressions.append(
                BaselineRegression(
                    subject=subject,
                    baseline_rank=int(base_rank),
                    current_rank=None if cur_rank is None else int(cur_rank),
                )
            )
    return regressions
