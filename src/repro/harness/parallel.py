"""Parallel trial execution.

Trials are independent by construction (each derives its input and
sampler state from ``seed + i``), so populations can be collected on all
cores.  Each worker process instruments its own copy of the subject --
the transform is deterministic, so site and predicate indices agree
across processes -- and streams back plain-tuple run records that the
parent merges in seed order.  The result is bit-identical to the serial
:func:`repro.harness.runner.run_trials` for the same arguments, which
``tests/harness/test_parallel.py`` asserts.
"""

from __future__ import annotations

import multiprocessing
import random
from typing import Dict, List, Optional, Tuple

from repro.core.reports import ReportBuilder, ReportSet
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import crash_stack, instrument_source
from repro.instrument.transform import InstrumentationConfig
from repro.subjects import base as subject_base
from repro.subjects.base import Subject

#: Per-process cache of the instrumented program.
_WORKER: Dict[str, object] = {}

#: One run's serialised record:
#: (seed, failed, site_obs, pred_true, stack, bugs)
_RunRecord = Tuple[int, bool, Dict[int, int], Dict[int, int], Optional[Tuple[str, ...]], List[str]]


def _init_worker(subject: Subject, config: Optional[InstrumentationConfig]) -> None:
    program = instrument_source(subject.source(), subject.name, config=config)
    _WORKER["subject"] = subject
    _WORKER["program"] = program


def _run_chunk(args: Tuple[int, int, SamplingPlan]) -> List[_RunRecord]:
    start, count, plan = args
    subject: Subject = _WORKER["subject"]  # type: ignore[assignment]
    program = _WORKER["program"]
    entry = program.func(subject.entry)  # type: ignore[attr-defined]

    records: List[_RunRecord] = []
    for i in range(start, start + count):
        input_rng = random.Random(i * 2654435761 % (2 ** 31))
        trial_input = subject.generate_input(input_rng)
        subject_base.begin_truth_capture()
        program.begin_run(plan, seed=i + 1)  # type: ignore[attr-defined]
        failed = False
        stack = None
        try:
            output = entry(trial_input)
        except Exception as exc:
            failed = True
            stack = crash_stack(exc, program.filename)  # type: ignore[attr-defined]
        else:
            failed = not subject.oracle(trial_input, output)
        site_obs, pred_true = program.end_run()  # type: ignore[attr-defined]
        bugs = subject_base.end_truth_capture()
        records.append((i, failed, site_obs, pred_true, stack, bugs))
    return records


def run_trials_parallel(
    subject: Subject,
    n_runs: int,
    plan: SamplingPlan,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[InstrumentationConfig] = None,
    chunk_size: int = 200,
) -> Tuple[ReportSet, GroundTruth]:
    """Collect a report population using ``jobs`` worker processes.

    Args:
        subject: The subject program.
        n_runs: Total trials.
        plan: Sampling plan (shared by every trial).
        seed: Base seed; trial ``i`` uses ``seed + i``, exactly like the
            serial runner.
        jobs: Worker process count.
        config: Instrumentation configuration (must match whatever the
            analysis side instruments with).
        chunk_size: Trials per task; larger amortises IPC.

    Returns:
        ``(reports, truth)``, run-aligned and ordered by trial index.
    """
    # The parent instruments too, for the predicate table.
    program = instrument_source(subject.source(), subject.name, config=config)
    builder = ReportBuilder(program.table)
    truth = GroundTruth(bug_ids=list(subject.bug_ids))

    chunks = [
        (seed + start, min(chunk_size, n_runs - start), plan)
        for start in range(0, n_runs, chunk_size)
    ]

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=max(jobs, 1),
        initializer=_init_worker,
        initargs=(subject, config),
    ) as pool:
        for records in pool.imap(_run_chunk, chunks):
            for run_seed, failed, site_obs, pred_true, stack, bugs in records:
                builder.add_run(failed, site_obs, pred_true, stack=stack, seed=run_seed)
                truth.add_run(bugs)

    return builder.build(), truth
