"""Parallel trial execution.

Trials are independent by construction (each derives its input and
sampler state from ``seed + i``), so populations can be collected on all
cores.  Each worker process instruments its own copy of the subject --
the transform is deterministic, so site and predicate indices agree
across processes.

Two collection modes are provided:

* :func:`run_trials_parallel` streams plain-tuple run records back
  through the parent, which merges them in seed order into one in-memory
  :class:`~repro.core.reports.ReportSet` -- bit-identical to the serial
  :func:`repro.harness.runner.run_trials` for the same arguments, which
  ``tests/harness/test_parallel.py`` asserts.
* :func:`run_trials_sharded` has each worker write its chunk *directly
  to disk* as a shard archive (:mod:`repro.store`, written in the
  store's pinned format version); only shard membership records (a
  filename and two counts per chunk) return to the parent.  This removes the parent-merge bottleneck and bounds parent
  memory independently of ``n_runs``, which is the collection story for
  populations far larger than one process can hold.  Merging the shards
  in seed order reproduces the streamed population exactly.

The sharded collector is additionally *supervised*: each chunk runs in
its own forked worker process whose death (SIGKILL, crash) or hang
(per-chunk timeout) the parent detects and repairs by re-running the
chunk's seed range with exponential backoff.  Because every trial
derives its input and sampler state purely from ``seed + i``
(:meth:`repro.instrument.runtime.Runtime.begin_run`), a retried range
reproduces the lost shard's contents exactly -- fault recovery never
perturbs the collected population.  Shards are committed through the
store's write-ahead protocol (pending file, then manifest append as the
commit point), their checksums are verified before commit, and damaged
shards are quarantined and re-collected.  Every attempt, failure,
quarantine and commit is appended to the store's
``collection_log.jsonl``.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.reports import ReportBuilder, ReportSet
from repro.core.truth import GroundTruth
from repro.harness.runner import run_one_trial
from repro.instrument.sampling import SamplingPlan
from repro.instrument.transform import InstrumentationConfig
from repro.obs import (
    enabled as _obs_enabled,
    inc as _obs_inc,
    instant as _obs_instant,
    merge_snapshot as _obs_merge,
    reset as _obs_reset,
    snapshot as _obs_snapshot,
    span as _obs_span,
)
from repro.subjects.base import Subject

#: Per-process cache of the instrumented program.
_WORKER: Dict[str, object] = {}

#: One run's serialised record:
#: (seed, failed, site_obs, pred_true, stack, bugs)
_RunRecord = Tuple[int, bool, Dict[int, int], Dict[int, int], Optional[Tuple[str, ...]], List[str]]


def fork_map(fn, tasks, jobs: int = 1, label: str = "parallel.map") -> list:
    """Order-preserving map over ``tasks``, optionally in forked workers.

    The shared process-pool primitive of the collection *and* analysis
    layers (:mod:`repro.core.engine` maps its shard-streaming and
    predicate-scoring tasks through here).  ``fn`` must be a module-level
    (picklable) function of one task; with ``jobs <= 1`` or fewer than
    two tasks the map runs inline in the caller -- the exact same ``fn``
    invocations in the same order, so for pure ``fn`` the two paths are
    interchangeable bit for bit.

    Observability follows the worker-snapshot protocol of
    :func:`run_trials_sharded`'s chunk workers: each forked worker resets
    the registry it inherited, wraps its task in a ``label`` span (trace
    events stream straight to the shared trace file), and ships a metrics
    snapshot back with its result; the parent merges the snapshots in
    task order, so counters are deterministic and cover exactly the
    mapped work.

    Args:
        fn: Module-level function applied to each task.
        tasks: The task payloads (pickled to workers when ``jobs > 1``).
        jobs: Worker process count; capped at ``len(tasks)``.
        label: Span name for per-task timing.

    Returns:
        ``[fn(t) for t in tasks]``, in task order.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) < 2:
        results = []
        for index, task in enumerate(tasks):
            with _obs_span(label, task=index):
                results.append(fn(task))
        return results
    ctx = multiprocessing.get_context("fork")
    payloads = [(fn, label, index, task) for index, task in enumerate(tasks)]
    with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
        outcomes = pool.map(_fork_map_task, payloads)
    results = []
    for result, snap in outcomes:
        if snap is not None and _obs_enabled():
            _obs_merge(snap)
        results.append(result)
    return results


def _fork_map_task(payload):
    """Worker body for :func:`fork_map`: run one task under a span.

    Returns ``(result, snapshot)`` where the snapshot covers exactly this
    task's metrics (the inherited registry is reset first), or ``None``
    when observability is off.
    """
    fn, label, index, task = payload
    obs_on = _obs_enabled()
    if obs_on:
        _obs_reset()
    with _obs_span(label, task=index):
        result = fn(task)
    return result, (_obs_snapshot() if obs_on else None)


def _init_worker(subject: Subject, config: Optional[InstrumentationConfig]) -> None:
    program = subject.build_program(config=config)
    _WORKER["subject"] = subject
    _WORKER["program"] = program


def _run_chunk(args: Tuple[int, int, SamplingPlan]) -> List[_RunRecord]:
    start, count, plan = args
    subject: Subject = _WORKER["subject"]  # type: ignore[assignment]
    program = _WORKER["program"]
    entry = program.func(subject.entry)  # type: ignore[attr-defined]

    records: List[_RunRecord] = []
    for i in range(start, start + count):
        failed, site_obs, pred_true, stack, bugs = run_one_trial(
            subject, program, entry, plan, i  # type: ignore[arg-type]
        )
        records.append((i, failed, site_obs, pred_true, stack, bugs))
    return records


def run_trials_parallel(
    subject: Subject,
    n_runs: int,
    plan: SamplingPlan,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[InstrumentationConfig] = None,
    chunk_size: int = 200,
) -> Tuple[ReportSet, GroundTruth]:
    """Collect a report population using ``jobs`` worker processes.

    Args:
        subject: The subject program.
        n_runs: Total trials.
        plan: Sampling plan (shared by every trial).
        seed: Base seed; trial ``i`` uses ``seed + i``, exactly like the
            serial runner.
        jobs: Worker process count.
        config: Instrumentation configuration (must match whatever the
            analysis side instruments with).
        chunk_size: Trials per task; larger amortises IPC.

    Returns:
        ``(reports, truth)``, run-aligned and ordered by trial index.
    """
    # The parent instruments too, for the predicate table.
    program = subject.build_program(config=config)
    builder = ReportBuilder(program.table)
    truth = GroundTruth(bug_ids=list(subject.bug_ids))

    chunks = [
        (seed + start, min(chunk_size, n_runs - start), plan)
        for start in range(0, n_runs, chunk_size)
    ]

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=max(jobs, 1),
        initializer=_init_worker,
        initargs=(subject, config),
    ) as pool:
        for records in pool.imap(_run_chunk, chunks):
            for run_seed, failed, site_obs, pred_true, stack, bugs in records:
                builder.add_run(failed, site_obs, pred_true, stack=stack, seed=run_seed)
                truth.add_run(bugs)

    return builder.build(), truth


def _run_chunk_to_shard(
    args: Tuple[int, int, SamplingPlan, str, Optional[int]]
) -> Tuple[str, int, int, int]:
    """Worker task: run one chunk and persist it as a shard archive.

    The archive format version comes from the store's manifest so append
    sessions keep a store homogeneous; ``None`` means the current
    default.  Returns ``(filename, n_runs, num_failing, seed_start)`` --
    the only data crossing back to the parent.
    """
    from repro.core.io import save_reports

    start, count, plan, shard_path, shard_version = args
    subject: Subject = _WORKER["subject"]  # type: ignore[assignment]
    program = _WORKER["program"]

    builder = ReportBuilder(program.table)  # type: ignore[attr-defined]
    truth = GroundTruth(bug_ids=list(subject.bug_ids))
    for run_seed, failed, site_obs, pred_true, stack, bugs in _run_chunk(
        (start, count, plan)
    ):
        builder.add_run(failed, site_obs, pred_true, stack=stack, seed=run_seed)
        truth.add_run(bugs)
    reports = builder.build()
    save_reports(shard_path, reports, truth, version=shard_version)
    return os.path.basename(shard_path), reports.n_runs, reports.num_failing, start


#: How long a hang-worker fault sleeps; effectively forever next to any
#: realistic chunk timeout.
_HANG_SECONDS = 3600.0


@dataclass
class _ChunkState:
    """Supervision bookkeeping for one collection chunk."""

    index: int
    start: int
    count: int
    attempt: int = 0
    ready_at: float = 0.0  # monotonic time before which it may not launch


@dataclass
class CollectionReport:
    """What the supervised collector did beyond the happy path.

    Attached to the returned store as ``store.last_collection`` and
    mirrored, event by event, in the store's ``collection_log.jsonl``.

    Attributes:
        n_chunks: Chunks this session collected.
        attempts: Worker launches, including retries.
        retries: Re-executions after a failure (``attempts - n_chunks``
            when every chunk eventually succeeded).
        worker_deaths: Attempts that ended with a dead worker (crash or
            kill) before reporting a result.
        timeouts: Attempts the parent killed for exceeding the chunk
            timeout.
        corrupt_shards: Attempts whose shard failed post-write
            verification and was quarantined.
        quarantined: Quarantined shard filenames.
    """

    n_chunks: int = 0
    attempts: int = 0
    retries: int = 0
    worker_deaths: int = 0
    timeouts: int = 0
    corrupt_shards: int = 0
    quarantined: List[str] = field(default_factory=list)


def _chunk_worker(
    result_queue,
    chunk_index: int,
    attempt: int,
    start: int,
    count: int,
    plan: SamplingPlan,
    pending_path: str,
    shard_version: Optional[int],
    faults,
) -> None:
    """Collection worker body: run a chunk, write + hash its shard.

    Runs in a forked child that inherited the instrumented program via
    :data:`_WORKER`.  The shard digest is computed on the healthy bytes
    *before* any injected damage, so damage is detected by the parent's
    checksum verification exactly as real in-transit corruption would be.
    """
    from repro.core.io import file_sha256
    from repro.store.faults import FaultInjector, apply_worker_damage

    injector = FaultInjector(faults or ())
    if injector.fires("hang-worker", chunk_index, attempt):
        time.sleep(_HANG_SECONDS)
    if injector.fires("kill-worker", chunk_index, attempt):
        os.kill(os.getpid(), signal.SIGKILL)
    # The fork inherited the parent's metrics registry; reset it so the
    # snapshot shipped back covers exactly this chunk attempt.  Trace
    # events append straight to the shared trace file (one write per
    # line), so worker spans land in the same timeline as the parent's.
    obs_on = _obs_enabled()
    if obs_on:
        _obs_reset()
    with _obs_span(
        "collect.worker_chunk",
        chunk=chunk_index,
        attempt=attempt,
        seed_start=start,
        count=count,
    ):
        _, n_runs, num_failing, _ = _run_chunk_to_shard(
            (start, count, plan, pending_path, shard_version)
        )
        digest = file_sha256(pending_path)
    apply_worker_damage(injector, chunk_index, attempt, pending_path)
    result_queue.put(
        (chunk_index, n_runs, num_failing, digest, _obs_snapshot() if obs_on else None)
    )


def run_trials_sharded(
    subject: Subject,
    n_runs: int,
    plan: SamplingPlan,
    store_dir: str,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[InstrumentationConfig] = None,
    chunk_size: int = 200,
    max_attempts: int = 3,
    chunk_timeout: Optional[float] = None,
    backoff_base: float = 0.1,
    backoff_cap: float = 5.0,
    faults=None,
):
    """Collect a population as on-disk shards written directly by workers.

    Unlike :func:`run_trials_parallel`, no run record ever crosses back
    to the parent: each worker builds its chunk's
    :class:`~repro.core.reports.ReportSet` locally and writes it as a
    shard archive (in the store's pinned format version) into
    ``store_dir``.  The parent only instruments once
    (for the predicate table in the manifest) and commits shard
    membership, so its memory use is independent of ``n_runs``.

    The trial seeding is identical to the serial and streaming runners,
    so ``ShardStore.load_merged()`` on the result is bit-identical to
    :func:`repro.harness.runner.run_trials` with the same arguments --
    including when chunks are retried, because a chunk's shard is a pure
    function of its seed range.

    Supervision: each chunk runs in its own forked process.  A worker
    that dies (crash, OOM kill) or exceeds ``chunk_timeout`` is detected
    and its seed range re-run after an exponential backoff
    (``backoff_base * 2**(attempt-1)``, capped at ``backoff_cap``), up to
    ``max_attempts`` total attempts per chunk.  Completed shards are
    checksum-verified before commit; damaged ones are quarantined and
    the chunk retried.  Shards are committed in seed order through the
    store's write-ahead protocol, so an interrupted session never leaves
    a partially written shard under a committed name (see
    :mod:`repro.store.shards`).

    Args:
        subject: The subject program.
        n_runs: Total trials.
        plan: Sampling plan (shared by every trial).
        store_dir: Shard-store directory; created on first use, appended
            to otherwise (the instrumentation must match).
        seed: Base seed; trial ``i`` uses ``seed + i``.
        jobs: Concurrent worker process count.
        config: Instrumentation configuration.
        chunk_size: Trials per shard.
        max_attempts: Total attempts per chunk before giving up.
        chunk_timeout: Seconds a single chunk attempt may run; ``None``
            disables the watchdog.
        backoff_base: First-retry delay in seconds.
        backoff_cap: Upper bound on the retry delay.
        faults: Optional iterable of :class:`repro.store.faults.Fault`
            to inject (testing only); when ``None``, faults may still
            arrive through the ``REPRO_INJECT_FAULTS`` environment
            variable.

    Returns:
        The :class:`repro.store.ShardStore` holding the new shards, with
        this session's :class:`CollectionReport` attached as
        ``store.last_collection``.

    Raises:
        repro.store.errors.CollectionError: A chunk failed
            ``max_attempts`` times; everything committed before the
            failure remains committed and recoverable.
    """
    from repro.core.io import file_sha256, load_shard_stats
    from repro.core.io import ArchiveError
    from repro.store import ShardStore
    from repro.store.errors import CollectionError
    from repro.store.faults import FaultInjector, faults_from_env
    from repro.store.manifest import ShardEntry
    from repro.store.shards import PENDING_SUFFIX, shard_filename

    injector = FaultInjector(faults if faults is not None else faults_from_env())

    program = subject.build_program(config=config)
    store = ShardStore.open_or_create(
        store_dir, subject.name, program.table, plan, config=config
    )
    store.recover()

    chunks = [
        _ChunkState(index=i, start=seed + offset, count=min(chunk_size, n_runs - offset))
        for i, offset in enumerate(range(0, n_runs, chunk_size))
    ]
    for chunk in chunks:
        final_path = os.path.join(store_dir, shard_filename(chunk.start))
        filename = os.path.basename(final_path)
        if store.manifest.find(filename) is not None:
            raise FileExistsError(
                f"shard {filename} already exists in "
                f"{store_dir}; choose a disjoint seed range (next free seed: "
                f"{store.next_seed})"
            )
        if os.path.exists(final_path):
            # A shard file with no manifest entry was never committed
            # (e.g. a pre-commit-protocol session died between the shard
            # write and the manifest update); its range was never counted,
            # so reclaim the name and re-collect it.
            os.unlink(final_path)
            store.log_event("reclaim-uncommitted", filename=filename)

    report = CollectionReport(n_chunks=len(chunks))
    store.log_event(
        "session-start",
        subject=subject.name,
        seed=seed,
        n_runs=n_runs,
        chunks=len(chunks),
        jobs=jobs,
        faults=[f.spec() for f in injector.faults],
    )

    # Workers are forked per chunk and inherit the instrumented program
    # through _WORKER -- no per-worker re-instrumentation, and chunk
    # shards stay a pure function of their seed range.
    _WORKER["subject"] = subject
    _WORKER["program"] = program

    ctx = multiprocessing.get_context("fork")
    result_queue = ctx.SimpleQueue()

    waiting: List[_ChunkState] = list(chunks)
    active: Dict[int, Tuple[object, float, _ChunkState]] = {}
    completed: Dict[int, ShardEntry] = {}
    chunk_attempt: Dict[int, int] = {}
    next_commit = 0
    results: Dict[int, Tuple[int, int, str, Optional[dict]]] = {}

    def pending_path_of(chunk: _ChunkState) -> str:
        return os.path.join(
            store_dir, shard_filename(chunk.start) + PENDING_SUFFIX
        )

    def fail_chunk(chunk: _ChunkState, why: str, detail: str) -> None:
        """Record a failed attempt and requeue (or give up on) the chunk."""
        store.log_event(
            "chunk-failed",
            chunk=chunk.index,
            seed_start=chunk.start,
            attempt=chunk.attempt,
            reason=why,
            detail=detail,
        )
        if _obs_enabled():
            _obs_instant(
                "collect.chunk_failed",
                chunk=chunk.index,
                attempt=chunk.attempt,
                reason=why,
            )
        results.pop(chunk.index, None)  # drop any stale result of this attempt
        staged = pending_path_of(chunk)
        if why == "corrupt-shard":
            record = store.quarantine_file(
                os.path.basename(staged),
                "failed-verification",
                detail,
                seed_start=chunk.start,
            )
            report.corrupt_shards += 1
            report.quarantined.append(record.filename)
        elif os.path.exists(staged):
            os.unlink(staged)
        next_attempt = chunk.attempt + 1
        if next_attempt >= max_attempts:
            for proc, _, _ in active.values():
                proc.kill()  # type: ignore[attr-defined]
                proc.join()  # type: ignore[attr-defined]
            raise CollectionError(chunk.start, chunk.count, next_attempt, f"{why}: {detail}")
        delay = min(backoff_cap, backoff_base * (2 ** chunk.attempt))
        chunk.attempt = next_attempt
        chunk.ready_at = time.monotonic() + delay
        report.retries += 1
        store.log_event(
            "chunk-retry",
            chunk=chunk.index,
            seed_start=chunk.start,
            attempt=next_attempt,
            backoff=delay,
        )
        waiting.append(chunk)

    def verify_result(chunk: _ChunkState, n: int, failing: int, digest: str):
        """Check the worker's pending shard before committing it."""
        staged = pending_path_of(chunk)
        if not os.path.exists(staged):
            return None, "pending shard file vanished"
        actual = file_sha256(staged)
        if actual != digest:
            return None, (
                f"checksum mismatch: worker wrote {digest[:12]}..., "
                f"file now {actual[:12]}..."
            )
        try:
            _, _, _, _, num_failing, num_successful, table_sha = load_shard_stats(staged)
        except ArchiveError as exc:
            return None, f"unreadable: {exc}"
        if table_sha is not None and table_sha != store.manifest.table_sha:
            return None, "table signature mismatch"
        if num_failing + num_successful != chunk.count or n != chunk.count:
            return None, (
                f"run count mismatch: expected {chunk.count}, "
                f"archive holds {num_failing + num_successful}"
            )
        return (
            ShardEntry(
                filename=shard_filename(chunk.start),
                n_runs=n,
                num_failing=failing,
                seed_start=chunk.start,
                sha256=digest,
            ),
            None,
        )

    # Entered manually so the span brackets the whole supervision loop
    # without re-indenting it; the matching __exit__ sits in the finally
    # below, so the span closes (and its trace event is emitted) even
    # when a chunk exhausts its attempts.
    session_span = _obs_span(
        "collect.session",
        subject=subject.name,
        n_runs=n_runs,
        chunks=len(chunks),
        jobs=jobs,
    )
    session_span.__enter__()
    try:
        while len(completed) < len(chunks) or next_commit < len(chunks):
            now = time.monotonic()

            # Launch ready chunks up to the concurrency cap.
            launchable = [c for c in waiting if c.ready_at <= now]
            for chunk in launchable:
                if len(active) >= max(jobs, 1):
                    break
                waiting.remove(chunk)
                proc = ctx.Process(
                    target=_chunk_worker,
                    args=(
                        result_queue,
                        chunk.index,
                        chunk.attempt,
                        chunk.start,
                        chunk.count,
                        plan,
                        pending_path_of(chunk),
                        store.shard_format_version,
                        injector.faults,
                    ),
                    daemon=True,
                )
                proc.start()
                report.attempts += 1
                chunk_attempt[chunk.index] = chunk.attempt
                deadline = now + chunk_timeout if chunk_timeout else float("inf")
                active[chunk.index] = (proc, deadline, chunk)
                store.log_event(
                    "chunk-start",
                    chunk=chunk.index,
                    seed_start=chunk.start,
                    count=chunk.count,
                    attempt=chunk.attempt,
                )

            # Drain finished workers' results.
            while not result_queue.empty():
                idx, n, failing, digest, snap = result_queue.get()
                results[idx] = (n, failing, digest, snap)

            # Reap exited or timed-out workers.
            for idx in list(active):
                proc, deadline, chunk = active[idx]
                if proc.is_alive():  # type: ignore[attr-defined]
                    if time.monotonic() > deadline:
                        proc.kill()  # type: ignore[attr-defined]
                        proc.join()  # type: ignore[attr-defined]
                        del active[idx]
                        report.timeouts += 1
                        fail_chunk(
                            chunk,
                            "timeout",
                            f"exceeded chunk timeout of {chunk_timeout}s",
                        )
                    continue
                proc.join()  # type: ignore[attr-defined]
                del active[idx]
                # A SimpleQueue write completes before the child exits,
                # but drain once more in case it landed after the loop
                # above.
                while not result_queue.empty():
                    ridx, n, failing, digest, snap = result_queue.get()
                    results[ridx] = (n, failing, digest, snap)
                if idx not in results:
                    report.worker_deaths += 1
                    fail_chunk(
                        chunk,
                        "worker-died",
                        f"worker exited with code {proc.exitcode} before "  # type: ignore[attr-defined]
                        "reporting a result",
                    )
                    continue
                n, failing, digest, snap = results.pop(idx)
                entry, problem = verify_result(chunk, n, failing, digest)
                if entry is None:
                    fail_chunk(chunk, "corrupt-shard", problem or "verification failed")
                    continue
                # Fold the worker's metrics into the parent registry only
                # for accepted attempts: counters then reflect exactly the
                # work that produced the committed population.
                if snap is not None and _obs_enabled():
                    _obs_merge(snap)
                completed[idx] = entry
                store.log_event(
                    "chunk-done",
                    chunk=idx,
                    seed_start=chunk.start,
                    attempt=chunk.attempt,
                    n_runs=entry.n_runs,
                    num_failing=entry.num_failing,
                )

            # Commit completed chunks in seed order (merge order).
            while next_commit < len(chunks) and next_commit in completed:
                entry = completed[next_commit]
                store.commit_shard(entry)
                store.log_event(
                    "commit", chunk=next_commit, filename=entry.filename
                )
                if injector.fires(
                    "stale-manifest", next_commit, chunk_attempt.get(next_commit, 0)
                ):
                    os.unlink(os.path.join(store_dir, entry.filename))
                    store.log_event(
                        "fault-injected",
                        kind="stale-manifest",
                        chunk=next_commit,
                        filename=entry.filename,
                    )
                next_commit += 1

            if active or waiting or len(completed) > next_commit:
                time.sleep(0.005)
    finally:
        session_span.__exit__(None, None, None)
        for proc, _, _ in active.values():
            if proc.is_alive():  # type: ignore[attr-defined]
                proc.kill()  # type: ignore[attr-defined]
            proc.join()  # type: ignore[attr-defined]
        result_queue.close()

    if _obs_enabled():
        _obs_inc("collect.chunks", report.n_chunks)
        _obs_inc("collect.attempts", report.attempts)
        _obs_inc("collect.retries", report.retries)
        _obs_inc("collect.worker_deaths", report.worker_deaths)
        _obs_inc("collect.timeouts", report.timeouts)
        _obs_inc("collect.corrupt_shards", report.corrupt_shards)

    store.log_event(
        "session-end",
        chunks=report.n_chunks,
        attempts=report.attempts,
        retries=report.retries,
        timeouts=report.timeouts,
        worker_deaths=report.worker_deaths,
        corrupt_shards=report.corrupt_shards,
    )
    store.last_collection = report
    return store
