"""Parallel trial execution.

Trials are independent by construction (each derives its input and
sampler state from ``seed + i``), so populations can be collected on all
cores.  Each worker process instruments its own copy of the subject --
the transform is deterministic, so site and predicate indices agree
across processes.

Two collection modes are provided:

* :func:`run_trials_parallel` streams plain-tuple run records back
  through the parent, which merges them in seed order into one in-memory
  :class:`~repro.core.reports.ReportSet` -- bit-identical to the serial
  :func:`repro.harness.runner.run_trials` for the same arguments, which
  ``tests/harness/test_parallel.py`` asserts.
* :func:`run_trials_sharded` has each worker write its chunk *directly
  to disk* as a format-v2 shard (:mod:`repro.store`); only shard
  membership records (a filename and two counts per chunk) return to the
  parent.  This removes the parent-merge bottleneck and bounds parent
  memory independently of ``n_runs``, which is the collection story for
  populations far larger than one process can hold.  Merging the shards
  in seed order reproduces the streamed population exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import random
from typing import Dict, List, Optional, Tuple

from repro.core.reports import ReportBuilder, ReportSet
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import crash_stack, instrument_source
from repro.instrument.transform import InstrumentationConfig
from repro.subjects import base as subject_base
from repro.subjects.base import Subject

#: Per-process cache of the instrumented program.
_WORKER: Dict[str, object] = {}

#: One run's serialised record:
#: (seed, failed, site_obs, pred_true, stack, bugs)
_RunRecord = Tuple[int, bool, Dict[int, int], Dict[int, int], Optional[Tuple[str, ...]], List[str]]


def _init_worker(subject: Subject, config: Optional[InstrumentationConfig]) -> None:
    program = instrument_source(subject.source(), subject.name, config=config)
    _WORKER["subject"] = subject
    _WORKER["program"] = program


def _run_chunk(args: Tuple[int, int, SamplingPlan]) -> List[_RunRecord]:
    start, count, plan = args
    subject: Subject = _WORKER["subject"]  # type: ignore[assignment]
    program = _WORKER["program"]
    entry = program.func(subject.entry)  # type: ignore[attr-defined]

    records: List[_RunRecord] = []
    for i in range(start, start + count):
        input_rng = random.Random(i * 2654435761 % (2 ** 31))
        trial_input = subject.generate_input(input_rng)
        subject_base.begin_truth_capture()
        program.begin_run(plan, seed=i + 1)  # type: ignore[attr-defined]
        failed = False
        stack = None
        try:
            output = entry(trial_input)
        except Exception as exc:
            failed = True
            stack = crash_stack(exc, program.filename)  # type: ignore[attr-defined]
        else:
            failed = not subject.oracle(trial_input, output)
        site_obs, pred_true = program.end_run()  # type: ignore[attr-defined]
        bugs = subject_base.end_truth_capture()
        records.append((i, failed, site_obs, pred_true, stack, bugs))
    return records


def run_trials_parallel(
    subject: Subject,
    n_runs: int,
    plan: SamplingPlan,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[InstrumentationConfig] = None,
    chunk_size: int = 200,
) -> Tuple[ReportSet, GroundTruth]:
    """Collect a report population using ``jobs`` worker processes.

    Args:
        subject: The subject program.
        n_runs: Total trials.
        plan: Sampling plan (shared by every trial).
        seed: Base seed; trial ``i`` uses ``seed + i``, exactly like the
            serial runner.
        jobs: Worker process count.
        config: Instrumentation configuration (must match whatever the
            analysis side instruments with).
        chunk_size: Trials per task; larger amortises IPC.

    Returns:
        ``(reports, truth)``, run-aligned and ordered by trial index.
    """
    # The parent instruments too, for the predicate table.
    program = instrument_source(subject.source(), subject.name, config=config)
    builder = ReportBuilder(program.table)
    truth = GroundTruth(bug_ids=list(subject.bug_ids))

    chunks = [
        (seed + start, min(chunk_size, n_runs - start), plan)
        for start in range(0, n_runs, chunk_size)
    ]

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=max(jobs, 1),
        initializer=_init_worker,
        initargs=(subject, config),
    ) as pool:
        for records in pool.imap(_run_chunk, chunks):
            for run_seed, failed, site_obs, pred_true, stack, bugs in records:
                builder.add_run(failed, site_obs, pred_true, stack=stack, seed=run_seed)
                truth.add_run(bugs)

    return builder.build(), truth


def _run_chunk_to_shard(args: Tuple[int, int, SamplingPlan, str]) -> Tuple[str, int, int, int]:
    """Worker task: run one chunk and persist it as a shard archive.

    Returns ``(filename, n_runs, num_failing, seed_start)`` -- the only
    data crossing back to the parent.
    """
    from repro.core.io import save_reports

    start, count, plan, shard_path = args
    subject: Subject = _WORKER["subject"]  # type: ignore[assignment]
    program = _WORKER["program"]

    builder = ReportBuilder(program.table)  # type: ignore[attr-defined]
    truth = GroundTruth(bug_ids=list(subject.bug_ids))
    for run_seed, failed, site_obs, pred_true, stack, bugs in _run_chunk(
        (start, count, plan)
    ):
        builder.add_run(failed, site_obs, pred_true, stack=stack, seed=run_seed)
        truth.add_run(bugs)
    reports = builder.build()
    save_reports(shard_path, reports, truth)
    return os.path.basename(shard_path), reports.n_runs, reports.num_failing, start


def run_trials_sharded(
    subject: Subject,
    n_runs: int,
    plan: SamplingPlan,
    store_dir: str,
    seed: int = 0,
    jobs: int = 2,
    config: Optional[InstrumentationConfig] = None,
    chunk_size: int = 200,
):
    """Collect a population as on-disk shards written directly by workers.

    Unlike :func:`run_trials_parallel`, no run record ever crosses back
    to the parent: each worker builds its chunk's
    :class:`~repro.core.reports.ReportSet` locally and writes it as a
    format-v2 shard into ``store_dir``.  The parent only instruments once
    (for the predicate table in the manifest) and registers shard
    membership, so its memory use is independent of ``n_runs``.

    The trial seeding is identical to the serial and streaming runners,
    so ``ShardStore.load_merged()`` on the result is bit-identical to
    :func:`repro.harness.runner.run_trials` with the same arguments.

    Args:
        subject: The subject program.
        n_runs: Total trials.
        plan: Sampling plan (shared by every trial).
        store_dir: Shard-store directory; created on first use, appended
            to otherwise (the instrumentation must match).
        seed: Base seed; trial ``i`` uses ``seed + i``.
        jobs: Worker process count.
        config: Instrumentation configuration.
        chunk_size: Trials per shard.

    Returns:
        The :class:`repro.store.ShardStore` holding the new shards.
    """
    from repro.store import ShardStore
    from repro.store.shards import shard_filename

    program = instrument_source(subject.source(), subject.name, config=config)
    store = ShardStore.open_or_create(
        store_dir, subject.name, program.table, plan, config=config
    )

    chunks = [
        (
            seed + start,
            min(chunk_size, n_runs - start),
            plan,
            os.path.join(store_dir, shard_filename(seed + start)),
        )
        for start in range(0, n_runs, chunk_size)
    ]
    for _, _, _, shard_path in chunks:
        if os.path.exists(shard_path):
            raise FileExistsError(
                f"shard {os.path.basename(shard_path)} already exists in "
                f"{store_dir}; choose a disjoint seed range (next free seed: "
                f"{store.next_seed})"
            )

    from repro.store.manifest import ShardEntry

    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(
        processes=max(jobs, 1),
        initializer=_init_worker,
        initargs=(subject, config),
    ) as pool:
        for filename, count, failing, start in pool.imap(
            _run_chunk_to_shard, chunks
        ):
            store.register_shard(
                ShardEntry(
                    filename=filename,
                    n_runs=count,
                    num_failing=failing,
                    seed_start=start,
                )
            )

    return store
