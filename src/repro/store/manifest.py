"""Shard-store manifest: what a directory of shards contains.

The manifest (``manifest.json``) is the store's source of truth for
membership and provenance.  It records:

* which subject the reports were collected from;
* a digest of the :class:`~repro.instrument.transform.InstrumentationConfig`
  and the predicate table's content signature -- together these pin the
  instrumentation, so ``analyze`` can refuse shards that would
  mis-attribute counters;
* the sampling plan used during collection;
* one entry per shard with its run counts and base seed, in collection
  order (merge order matters: it is what makes the merged population
  bit-identical to a monolithic one).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.instrument.sampling import SamplingPlan
from repro.instrument.transform import InstrumentationConfig

#: Manifest schema version, independent of the shard archive version.
MANIFEST_VERSION = 1


def config_digest(config: Optional[InstrumentationConfig]) -> str:
    """Return a stable digest of an instrumentation configuration.

    ``None`` (the defaults) hashes identically to an explicitly
    constructed default config, so collection sessions that spell the
    default differently still append to the same store.
    """
    config = config if config is not None else InstrumentationConfig()
    spec = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        elif isinstance(value, tuple):
            value = list(value)
        spec[f.name] = value
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def plan_to_json(plan: SamplingPlan) -> Dict[str, object]:
    """Serialise a sampling plan to a JSON-clean dict."""
    spec: Dict[str, object] = {"mode": plan.mode}
    if plan.mode == "uniform":
        spec["rate"] = float(plan.rate)
    elif plan.mode == "per-site":
        if plan.site_rates is None:
            raise ValueError("per-site plan lacks site rates")
        spec["site_rates"] = [float(r) for r in plan.site_rates]
    return spec


def plan_from_json(spec: Dict[str, object]) -> SamplingPlan:
    """Reconstruct a sampling plan serialised by :func:`plan_to_json`."""
    mode = spec["mode"]
    if mode == "full":
        return SamplingPlan.full()
    if mode == "uniform":
        return SamplingPlan.uniform(float(spec["rate"]))
    if mode == "per-site":
        return SamplingPlan.per_site(np.asarray(spec["site_rates"], dtype=np.float64))
    raise ValueError(f"unknown sampling mode {mode!r} in manifest")


@dataclass
class ShardEntry:
    """One shard's membership record.

    Attributes:
        filename: Shard archive name, relative to the store directory.
        n_runs: Runs in the shard.
        num_failing: Failing runs in the shard.
        seed_start: Base seed of the shard's first trial (``None`` when
            the shard was appended from pre-collected reports).
        sha256: Hex digest of the shard file's bytes at commit time, or
            ``None`` for entries written before digests were recorded.
            Verified by :meth:`repro.store.shards.ShardStore.audit`.
        source: Provenance label for shards replicated from another
            store (:mod:`repro.federate`): the source store's path or
            daemon URL.  ``None`` for locally collected shards.
    """

    filename: str
    n_runs: int
    num_failing: int
    seed_start: Optional[int] = None
    sha256: Optional[str] = None
    source: Optional[str] = None

    @property
    def seed_range(self) -> Optional[range]:
        """The half-open trial-seed interval this shard covers."""
        if self.seed_start is None:
            return None
        return range(self.seed_start, self.seed_start + self.n_runs)

    def overlaps(self, other: "ShardEntry") -> bool:
        """True when both shards are seeded and their ranges intersect."""
        a, b = self.seed_range, other.seed_range
        if a is None or b is None:
            return False
        return a.start < b.stop and b.start < a.stop

    def to_json(self) -> Dict[str, object]:
        spec = dataclasses.asdict(self)
        for optional in ("sha256", "source"):
            if spec.get(optional) is None:
                del spec[optional]  # keep old-manifest byte-compat when absent
        return spec

    @classmethod
    def from_json(cls, spec: Dict[str, object]) -> "ShardEntry":
        return cls(
            filename=str(spec["filename"]),
            n_runs=int(spec["n_runs"]),
            num_failing=int(spec["num_failing"]),
            seed_start=(
                int(spec["seed_start"]) if spec.get("seed_start") is not None else None
            ),
            sha256=(
                str(spec["sha256"]) if spec.get("sha256") is not None else None
            ),
            source=(
                str(spec["source"]) if spec.get("source") is not None else None
            ),
        )


@dataclass
class ShardManifest:
    """The store-level metadata record.

    Attributes:
        subject: Subject program name the reports were collected from.
        table_sha: Predicate-table content signature every shard must
            match (see :meth:`repro.core.predicates.PredicateTable.signature`).
        config_sha: Digest of the instrumentation configuration.
        plan: Sampling plan in :func:`plan_to_json` form.
        shards: Shard entries in collection (merge) order.
        format_version: Shard archive format the store writes.
        manifest_version: Schema version of this file.
    """

    subject: str
    table_sha: str
    config_sha: str
    plan: Dict[str, object]
    shards: List[ShardEntry] = field(default_factory=list)
    format_version: int = 2
    manifest_version: int = MANIFEST_VERSION

    @property
    def n_runs(self) -> int:
        """Total runs across all shards."""
        return sum(e.n_runs for e in self.shards)

    @property
    def num_failing(self) -> int:
        """Total failing runs across all shards."""
        return sum(e.num_failing for e in self.shards)

    @property
    def next_seed(self) -> int:
        """First unused trial seed, for appending contiguous collections.

        Assumes seeded shards cover ``[seed_start, seed_start + n_runs)``;
        returns 0 for an empty or unseeded store.
        """
        ends = [
            e.seed_start + e.n_runs for e in self.shards if e.seed_start is not None
        ]
        return max(ends) if ends else 0

    def find(self, filename: str) -> Optional[ShardEntry]:
        """The entry for ``filename``, or ``None`` if unregistered."""
        for entry in self.shards:
            if entry.filename == filename:
                return entry
        return None

    def overlapping(self, entry: ShardEntry) -> Optional[ShardEntry]:
        """The first registered shard whose seed range intersects ``entry``."""
        for existing in self.shards:
            if existing.filename != entry.filename and existing.overlaps(entry):
                return existing
        return None

    def to_json(self) -> Dict[str, object]:
        return {
            "manifest_version": self.manifest_version,
            "format_version": self.format_version,
            "subject": self.subject,
            "table_sha": self.table_sha,
            "config_sha": self.config_sha,
            "plan": self.plan,
            "shards": [e.to_json() for e in self.shards],
        }

    @classmethod
    def from_json(cls, spec: Dict[str, object]) -> "ShardManifest":
        version = int(spec.get("manifest_version", 1))
        if version > MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {version} is newer than supported "
                f"({MANIFEST_VERSION})"
            )
        return cls(
            subject=str(spec["subject"]),
            table_sha=str(spec["table_sha"]),
            config_sha=str(spec["config_sha"]),
            plan=dict(spec["plan"]),
            shards=[ShardEntry.from_json(e) for e in spec["shards"]],
            format_version=int(spec.get("format_version", 2)),
            manifest_version=version,
        )

    def save(self, path: str) -> None:
        """Write the manifest atomically (write-then-rename)."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ShardManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))
