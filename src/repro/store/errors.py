"""Typed errors for the sharded store and its collection pipeline.

The paper's deployment model assumes feedback reports arrive from
thousands of unreliable machines, so every way a shard directory can be
damaged gets its own exception type: callers (and tests) distinguish "a
shard's bytes are bad" from "the manifest and the directory disagree"
from "two collections claimed the same seed range".  None of these are
ever allowed to surface as a silent mis-count -- the analysis either
quarantines the offending shard (:meth:`repro.store.shards.ShardStore.audit`)
or raises one of these.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class for all shard-store failures."""


class ShardCorruptionError(StoreError):
    """A shard archive's bytes are unreadable (truncated, flipped, ...).

    Raised when a shard fails to load as a report archive; wraps the
    underlying zip/JSON/NumPy error as ``__cause__``.
    """

    def __init__(self, filename: str, detail: str) -> None:
        super().__init__(f"shard {filename} is corrupt: {detail}")
        self.filename = filename
        self.detail = detail

    def __reduce__(self):
        # BaseException pickles as ``cls(*self.args)``, which breaks for
        # multi-argument constructors; these errors cross process
        # boundaries (analysis-engine workers raise them inside a pool
        # map), so spell out the real constructor arguments.
        return (type(self), (self.filename, self.detail))


class ShardIntegrityError(StoreError):
    """A shard is readable but inconsistent with the store's manifest.

    Covers checksum mismatches, predicate-table signature mismatches and
    run-count disagreements -- anything where the bytes parse but cannot
    be trusted to count toward this store's population.
    """

    def __init__(self, filename: str, detail: str) -> None:
        super().__init__(f"shard {filename} fails integrity check: {detail}")
        self.filename = filename
        self.detail = detail

    def __reduce__(self):
        # See ShardCorruptionError.__reduce__.
        return (type(self), (self.filename, self.detail))


class DuplicateSeedRangeError(StoreError):
    """Two shards claim overlapping trial seed ranges.

    Counting both would double-count runs, silently inflating every
    sufficient statistic, so overlap is always an error (at registration
    time) or a quarantine (at audit time) -- never a merge.
    """


class StaleManifestError(StoreError):
    """The manifest references a shard file that does not exist.

    Seen when a shard was deleted (or never renamed into place) after
    the manifest committed it.  :meth:`ShardStore.audit` downgrades this
    to a quarantine record so analysis can proceed over survivors.
    """


class CollectionError(StoreError):
    """A collection chunk exhausted its retries.

    Carries the failed seed range so a later session can re-collect it.
    """

    def __init__(self, seed_start: int, count: int, attempts: int, detail: str) -> None:
        super().__init__(
            f"chunk seeds [{seed_start}, {seed_start + count}) failed after "
            f"{attempts} attempts: {detail}"
        )
        self.seed_start = seed_start
        self.count = count
        self.attempts = attempts
        self.detail = detail

    def __reduce__(self):
        # See ShardCorruptionError.__reduce__.
        return (type(self), (self.seed_start, self.count, self.attempts, self.detail))
