"""Deterministic fault injection for the collection pipeline.

The store's robustness guarantees (crash-safe writes, quarantine,
retry/backoff) are only believable if they can be exercised on demand, so
this module defines a small language of injectable faults used by both
the test suite and the CLI (``repro-cbi collect --testing
--inject-fault ...``):

==================  =====================================================
kind                effect
==================  =====================================================
``kill-worker``     the worker SIGKILLs itself before writing its shard
                    (models an OOM-killed or crashed collection machine)
``hang-worker``     the worker sleeps forever (models a wedged machine;
                    caught by the parent's per-chunk timeout)
``truncate-shard``  the written shard file is truncated to 60% of its
                    bytes after the worker hashed it (corruption in
                    transit)
``flip-bytes``      bytes in the middle of the written shard are
                    inverted after hashing (bit rot / bad disk)
``duplicate-shard`` an unregistered copy of the shard appears in the
                    store directory (a retried upload that landed twice)
``stale-manifest``  the shard file is deleted *after* the manifest
                    committed it (models post-collection data loss)
``net-refuse``      the client's connection attempt is refused before any
                    bytes are sent (server down / firewall)
``net-disconnect``  the server drops the TCP connection mid-request, so
                    the client sees a reset instead of a response
``net-500``         the server answers with ``500 Internal Server Error``
                    after reading the request (transient server bug)
``net-slow``        the server stalls before responding (congestion /
                    overload; exercises client timeouts)
``fed-fetch-error`` a federation pull fails in flight before any bytes
                    arrive (source daemon briefly unreachable); retried
``fed-corrupt-fetch`` the fetched shard bytes are damaged in transit;
                    the checksum verify catches it and the pull retries
==================  =====================================================

The ``net-*`` kinds target the networked collection path of
:mod:`repro.serve`: for them, "chunk" means the zero-based upload batch
index on the client side (``net-refuse``) or the zero-based POST ordinal
on the server side (the others), and "attempt" the retry number.  Like
every other kind, each fires on exactly one (index, attempt) pair, so
the uploader's retry loop always converges.

The ``fed-*`` kinds target store-to-store replication
(:mod:`repro.federate`): "chunk" is the zero-based ordinal of the shard
in the federation's pull plan and "attempt" the pull retry number.

A fault spec is ``kind@chunk`` with an optional ``#attempt`` suffix,
e.g. ``kill-worker@1`` (kill the worker for chunk 1 on its first
attempt) or ``flip-bytes@2#1`` (corrupt chunk 2's shard on its second
attempt).  Specs combine with commas: ``kill-worker@0,flip-bytes@2``.
Every fault fires on exactly one (chunk, attempt) pair, so a retried
chunk succeeds -- which is precisely what the integration tests assert.

Faults can also be injected ambiently through the ``REPRO_INJECT_FAULTS``
environment variable (same syntax), which reaches worker processes that
the CLI cannot parameterise directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Environment variable consulted by :func:`faults_from_env`.
FAULTS_ENV_VAR = "REPRO_INJECT_FAULTS"

#: All recognised fault kinds.
FAULT_KINDS = (
    "kill-worker",
    "hang-worker",
    "truncate-shard",
    "flip-bytes",
    "duplicate-shard",
    "stale-manifest",
    "net-refuse",
    "net-disconnect",
    "net-500",
    "net-slow",
    "fed-fetch-error",
    "fed-corrupt-fetch",
)

#: Fault kinds applied inside the worker process.
WORKER_FAULTS = frozenset(
    {"kill-worker", "hang-worker", "truncate-shard", "flip-bytes", "duplicate-shard"}
)

#: Fault kinds applied by the supervising parent after commit.
PARENT_FAULTS = frozenset({"stale-manifest"})

#: Fault kinds exercised on the networked collection path
#: (:mod:`repro.serve`); ``net-refuse`` fires client-side, the rest fire
#: inside the collection daemon's request handler.
NETWORK_FAULTS = frozenset({"net-refuse", "net-disconnect", "net-500", "net-slow"})

#: Fault kinds exercised on the store-to-store replication path
#: (:mod:`repro.federate`); both fire inside the federating process's
#: pull loop, keyed by the shard's ordinal in the sync plan.
FEDERATION_FAULTS = frozenset({"fed-fetch-error", "fed-corrupt-fetch"})


@dataclass(frozen=True)
class Fault:
    """One injectable fault, pinned to a chunk index and attempt number.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        chunk: Zero-based collection chunk index the fault targets.
        attempt: Zero-based attempt number on which it fires (0 = the
            chunk's first execution), so retries see a healthy worker.
    """

    kind: str
    chunk: int = 0
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )

    def spec(self) -> str:
        """The spec string that parses back to this fault."""
        text = f"{self.kind}@{self.chunk}"
        if self.attempt:
            text += f"#{self.attempt}"
        return text


def parse_fault(spec: str) -> Fault:
    """Parse one ``kind@chunk[#attempt]`` spec."""
    text = spec.strip()
    attempt = 0
    if "#" in text:
        text, attempt_text = text.rsplit("#", 1)
        attempt = int(attempt_text)
    chunk = 0
    if "@" in text:
        text, chunk_text = text.rsplit("@", 1)
        chunk = int(chunk_text)
    return Fault(kind=text, chunk=chunk, attempt=attempt)


def parse_faults(spec: Optional[str]) -> Tuple[Fault, ...]:
    """Parse a comma-separated fault list; ``None``/empty means no faults."""
    if not spec:
        return ()
    return tuple(parse_fault(part) for part in spec.split(",") if part.strip())


def faults_from_env(environ=os.environ) -> Tuple[Fault, ...]:
    """Faults requested through :data:`FAULTS_ENV_VAR`."""
    return parse_faults(environ.get(FAULTS_ENV_VAR))


class FaultInjector:
    """Decides whether a fault fires at a given pipeline point.

    Picklable (carries only the fault tuple) so it can cross the fork
    boundary into collection workers.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def fires(self, kind: str, chunk: int, attempt: int) -> bool:
        """True when a fault of ``kind`` targets this (chunk, attempt)."""
        return any(
            f.kind == kind and f.chunk == chunk and f.attempt == attempt
            for f in self.faults
        )

    def active_kinds(self) -> List[str]:
        """The distinct fault kinds carried, in spec order."""
        seen: List[str] = []
        for f in self.faults:
            if f.kind not in seen:
                seen.append(f.kind)
        return seen


def damage_truncate(path: str, keep_fraction: float = 0.6) -> None:
    """Truncate a file to ``keep_fraction`` of its bytes."""
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def damage_flip_bytes(path: str, n_bytes: int = 32) -> None:
    """Invert ``n_bytes`` in the middle of a file."""
    size = os.path.getsize(path)
    offset = max(0, size // 2 - n_bytes // 2)
    with open(path, "rb+") as handle:
        handle.seek(offset)
        block = handle.read(n_bytes)
        handle.seek(offset)
        handle.write(bytes(b ^ 0xFF for b in block))


def apply_worker_damage(
    injector: FaultInjector, chunk: int, attempt: int, shard_path: str
) -> None:
    """Apply post-write worker-side damage faults to a shard file.

    Called by the collection worker *after* it hashed the healthy bytes,
    so the supervisor's checksum verification is what catches the damage.
    """
    if injector.fires("truncate-shard", chunk, attempt):
        damage_truncate(shard_path)
    if injector.fires("flip-bytes", chunk, attempt):
        damage_flip_bytes(shard_path)
    if injector.fires("duplicate-shard", chunk, attempt):
        import shutil

        final = shard_path
        if final.endswith(".pending"):
            final = final[: -len(".pending")]
        root, ext = os.path.splitext(final)
        shutil.copyfile(shard_path, f"{root}-dup{ext}")
