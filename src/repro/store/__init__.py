"""Sharded feedback-report store.

The paper's deployment collected feedback reports from user populations
far too large for one process, so this package splits a population into
*shards*: independently written ``.npz`` archives (format version 2 of
:mod:`repro.core.io`) described by a JSON *manifest*.  Three properties
make the split safe:

1. **Merge exactness** -- :meth:`repro.core.reports.ReportSet.merge`
   concatenates shards in collection order, reproducing the monolithic
   population row for row.
2. **Incremental scoring** -- all Section 3.1-3.2 scores are functions
   of per-predicate integer counts (``F``, ``S``, ``F_obs``, ``S_obs``)
   plus ``NumF``/``NumS``, which add exactly across disjoint shards
   (:class:`~repro.store.incremental.SufficientStats`), so a shard
   directory can be scored without materialising any run matrix.
3. **Compatibility checking** -- every shard and the manifest carry the
   predicate table's content signature, so shards from different
   instrumentations can never be silently mixed.

Because the collection fleet is assumed unreliable (PAPER.md section 2's
deployed user population), the store is additionally *fault tolerant*:
shard writes are crash-safe with the manifest append as the commit point
(:mod:`repro.store.shards`), damaged shards are quarantined with
machine-readable reasons rather than aborting analysis
(:meth:`ShardStore.audit`), every failure mode has a typed exception
(:mod:`repro.store.errors`), and the whole pipeline can be exercised
under injected faults (:mod:`repro.store.faults`).
"""

from repro.store.errors import (
    CollectionError,
    DuplicateSeedRangeError,
    ShardCorruptionError,
    ShardIntegrityError,
    StaleManifestError,
    StoreError,
)
from repro.store.faults import (
    FAULT_KINDS,
    FAULTS_ENV_VAR,
    Fault,
    FaultInjector,
    faults_from_env,
    parse_faults,
)
from repro.store.incremental import SufficientStats
from repro.store.manifest import (
    ShardEntry,
    ShardManifest,
    config_digest,
    plan_from_json,
    plan_to_json,
)
from repro.store.shards import (
    COLLECTION_LOG_NAME,
    MANIFEST_NAME,
    PENDING_SUFFIX,
    QUARANTINE_DIR,
    AuditReport,
    QuarantineRecord,
    ShardStore,
)

__all__ = [
    "AuditReport",
    "COLLECTION_LOG_NAME",
    "CollectionError",
    "DuplicateSeedRangeError",
    "FAULTS_ENV_VAR",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "MANIFEST_NAME",
    "PENDING_SUFFIX",
    "QUARANTINE_DIR",
    "QuarantineRecord",
    "ShardCorruptionError",
    "ShardEntry",
    "ShardIntegrityError",
    "ShardManifest",
    "ShardStore",
    "StaleManifestError",
    "StoreError",
    "SufficientStats",
    "config_digest",
    "faults_from_env",
    "parse_faults",
    "plan_from_json",
    "plan_to_json",
]
