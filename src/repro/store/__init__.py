"""Sharded feedback-report store.

The paper's deployment collected feedback reports from user populations
far too large for one process, so this package splits a population into
*shards*: independently written ``.npz`` archives (format version 2 of
:mod:`repro.core.io`) described by a JSON *manifest*.  Three properties
make the split safe:

1. **Merge exactness** -- :meth:`repro.core.reports.ReportSet.merge`
   concatenates shards in collection order, reproducing the monolithic
   population row for row.
2. **Incremental scoring** -- all Section 3.1-3.2 scores are functions
   of per-predicate integer counts (``F``, ``S``, ``F_obs``, ``S_obs``)
   plus ``NumF``/``NumS``, which add exactly across disjoint shards
   (:class:`~repro.store.incremental.SufficientStats`), so a shard
   directory can be scored without materialising any run matrix.
3. **Compatibility checking** -- every shard and the manifest carry the
   predicate table's content signature, so shards from different
   instrumentations can never be silently mixed.
"""

from repro.store.incremental import SufficientStats
from repro.store.manifest import (
    ShardEntry,
    ShardManifest,
    config_digest,
    plan_from_json,
    plan_to_json,
)
from repro.store.shards import MANIFEST_NAME, ShardStore

__all__ = [
    "MANIFEST_NAME",
    "ShardEntry",
    "ShardManifest",
    "ShardStore",
    "SufficientStats",
    "config_digest",
    "plan_from_json",
    "plan_to_json",
]
