"""The shard store: a directory of report shards plus a manifest.

A :class:`ShardStore` wraps a directory laid out as::

    store/
      manifest.json           # ShardManifest: provenance + membership
      shard-00000000.npz      # format-v2 report archives (core/io.py)
      shard-00000200.npz
      ...

Shards are appended by collection sessions (possibly across machines --
workers write shards directly, see
:func:`repro.harness.parallel.run_trials_sharded`) and analysed either
by streaming sufficient statistics (:meth:`ShardStore.sufficient_stats`,
memory bounded by one predicate-length array set) or by materialising
the merged population (:meth:`ShardStore.load_merged`) when run-level
data is needed, e.g. for iterative elimination.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, Tuple

from repro.core.io import FORMAT_VERSION, load_reports, load_shard_stats, save_reports
from repro.core.predicates import PredicateTable
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.instrument.transform import InstrumentationConfig
from repro.store.incremental import SufficientStats
from repro.store.manifest import (
    ShardEntry,
    ShardManifest,
    config_digest,
    plan_from_json,
    plan_to_json,
)

#: Manifest filename inside a store directory.
MANIFEST_NAME = "manifest.json"


def shard_filename(seed_start: int) -> str:
    """Canonical shard name for a collection chunk starting at a seed."""
    return f"shard-{seed_start:08d}.npz"


class ShardStore:
    """A directory of feedback-report shards with a manifest.

    Use :meth:`create` for a new store, :meth:`open` for an existing one,
    or :meth:`open_or_create` for append-style collection sessions.
    """

    def __init__(self, directory: str, manifest: ShardManifest) -> None:
        self.directory = directory
        self.manifest = manifest
        self._table: Optional[PredicateTable] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        subject: str,
        table: PredicateTable,
        plan: SamplingPlan,
        config: Optional[InstrumentationConfig] = None,
    ) -> "ShardStore":
        """Initialise an empty store (directory may exist but not a manifest)."""
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise FileExistsError(
                f"{manifest_path} already exists; use ShardStore.open() to append"
            )
        manifest = ShardManifest(
            subject=subject,
            table_sha=table.signature(),
            config_sha=config_digest(config),
            plan=plan_to_json(plan),
            format_version=FORMAT_VERSION,
        )
        store = cls(directory, manifest)
        store._table = table
        manifest.save(manifest_path)
        return store

    @classmethod
    def open(cls, directory: str) -> "ShardStore":
        """Open an existing store."""
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                f"no {MANIFEST_NAME} in {directory}; not a shard store"
            )
        return cls(directory, ShardManifest.load(manifest_path))

    @classmethod
    def open_or_create(
        cls,
        directory: str,
        subject: str,
        table: PredicateTable,
        plan: SamplingPlan,
        config: Optional[InstrumentationConfig] = None,
    ) -> "ShardStore":
        """Open ``directory`` for appending, creating it on first use.

        When the store exists, the subject, instrumentation config and
        predicate table must match what it was created with; the sampling
        plan may differ between sessions (the analysis is sampling-agnostic)
        but the manifest keeps the original.
        """
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            return cls.create(directory, subject, table, plan, config=config)
        store = cls.open(directory)
        if store.manifest.subject != subject:
            raise ValueError(
                f"store holds subject {store.manifest.subject!r}, refusing to "
                f"append {subject!r} reports"
            )
        if store.manifest.table_sha != table.signature():
            raise ValueError(
                "store was collected with a different predicate table "
                "(instrumentation changed?); appending would mis-attribute "
                "counters"
            )
        if store.manifest.config_sha != config_digest(config):
            raise ValueError(
                "store was collected with a different instrumentation "
                "configuration; appending would mix incompatible predicates"
            )
        store._table = table
        return store

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        """Path of the manifest file."""
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def n_shards(self) -> int:
        """Number of shards registered."""
        return len(self.manifest.shards)

    @property
    def n_runs(self) -> int:
        """Total runs across shards."""
        return self.manifest.n_runs

    @property
    def num_failing(self) -> int:
        """Total failing runs across shards."""
        return self.manifest.num_failing

    @property
    def next_seed(self) -> int:
        """First unused trial seed (for contiguous append sessions)."""
        return self.manifest.next_seed

    def plan(self) -> SamplingPlan:
        """The sampling plan recorded at store creation."""
        return plan_from_json(self.manifest.plan)

    def shard_paths(self) -> List[str]:
        """Absolute shard paths in collection (merge) order."""
        return [os.path.join(self.directory, e.filename) for e in self.manifest.shards]

    def table(self) -> PredicateTable:
        """The predicate table, loaded lazily from the first shard."""
        if self._table is None:
            if not self.manifest.shards:
                raise ValueError("empty store has no shards to read a table from")
            reports, _ = load_reports(self.shard_paths()[0])
            self._table = reports.table
        return self._table

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_shard(
        self,
        reports: ReportSet,
        truth: Optional[GroundTruth] = None,
        seed_start: Optional[int] = None,
    ) -> str:
        """Write one shard archive and register it in the manifest.

        Args:
            reports: The shard's report population; its table signature
                must match the store's.
            truth: Optional run-aligned ground truth, persisted alongside.
            seed_start: Base seed of the shard's first trial, if the shard
                comes from a seeded collection.

        Returns:
            The shard's absolute path.
        """
        if reports.table.signature() != self.manifest.table_sha:
            raise ValueError(
                "shard was collected against a different predicate table than "
                "this store; refusing to append"
            )
        if seed_start is not None:
            filename = shard_filename(seed_start)
        else:
            filename = f"shard-x{self.n_shards:06d}.npz"
        path = os.path.join(self.directory, filename)
        if os.path.exists(path):
            raise FileExistsError(f"shard {filename} already exists in the store")
        save_reports(path, reports, truth)
        self.register_shard(
            ShardEntry(
                filename=filename,
                n_runs=reports.n_runs,
                num_failing=reports.num_failing,
                seed_start=seed_start,
            )
        )
        return path

    def register_shard(self, entry: ShardEntry) -> None:
        """Add a membership entry for a shard file already on disk.

        Used by the parallel collector, whose workers write shard
        archives directly; the parent only registers the entries (in
        collection order) and rewrites the manifest.
        """
        if any(e.filename == entry.filename for e in self.manifest.shards):
            raise ValueError(f"shard {entry.filename} is already registered")
        self.manifest.shards.append(entry)
        self.manifest.save(self.manifest_path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def iter_reports(self) -> Iterator[Tuple[ReportSet, Optional[GroundTruth]]]:
        """Yield ``(reports, truth)`` per shard, in collection order.

        Peak memory is one shard at a time.
        """
        for path in self.shard_paths():
            yield load_reports(path)

    def load_merged(self) -> Tuple[ReportSet, Optional[GroundTruth]]:
        """Materialise the whole population (all shards concatenated).

        Row order equals collection order, so the result is bit-identical
        to a monolithic collection with the same seeds.  Ground truth is
        merged when *every* shard carries it; otherwise ``None``.
        """
        parts: List[ReportSet] = []
        truths: List[Optional[GroundTruth]] = []
        for reports, truth in self.iter_reports():
            parts.append(reports)
            truths.append(truth)
        if not parts:
            raise ValueError("cannot merge an empty shard store")
        merged = ReportSet.merge(parts)
        truth_out: Optional[GroundTruth] = None
        if all(t is not None for t in truths):
            truth_out = GroundTruth.merge([t for t in truths if t is not None])
        return merged, truth_out

    def sufficient_stats(self) -> SufficientStats:
        """Accumulate scoring statistics across shards, streaming.

        For format-v2 shards this reads only the six embedded statistic
        arrays per shard -- the run-by-predicate matrices are never
        reconstructed, so parent memory is bounded by one predicate-length
        array set regardless of how many runs the store holds.
        """
        if not self.manifest.shards:
            raise ValueError("cannot score an empty shard store")
        total: Optional[SufficientStats] = None
        for path in self.shard_paths():
            F, S, F_obs, S_obs, num_failing, num_successful, table_sha = (
                load_shard_stats(path)
            )
            if table_sha is not None and table_sha != self.manifest.table_sha:
                raise ValueError(
                    f"shard {os.path.basename(path)} carries table signature "
                    f"{table_sha[:12]}..., manifest expects "
                    f"{self.manifest.table_sha[:12]}..."
                )
            part = SufficientStats(
                F=F,
                S=S,
                F_obs=F_obs,
                S_obs=S_obs,
                num_failing=num_failing,
                num_successful=num_successful,
            )
            total = part if total is None else total.add(part)
        assert total is not None
        return total

    def compute_scores(
        self, confidence: float = DEFAULT_CONFIDENCE
    ) -> PredicateScores:
        """Score the whole store incrementally (see :mod:`repro.store.incremental`)."""
        return self.sufficient_stats().to_scores(confidence=confidence)

    def __repr__(self) -> str:
        return (
            f"ShardStore({self.directory!r}, subject={self.manifest.subject!r}, "
            f"shards={self.n_shards}, runs={self.n_runs})"
        )
