"""The shard store: a directory of report shards plus a manifest.

A :class:`ShardStore` wraps a directory laid out as::

    store/
      manifest.json           # ShardManifest: provenance + membership
      shard-00000000.npz      # report archives (core/io.py); the .npz
      shard-00000200.npz      #   suffix is historical -- v3 shards are
                              #   mmap-columnar files, sniffed by magic
      ...
      collection_log.jsonl    # append-only record of collection events
      quarantine/             # damaged shards, moved aside with reasons
        shard-00000400.npz
        shard-00000400.npz.reason.json

Shards are appended by collection sessions (possibly across machines --
workers write shards directly, see
:func:`repro.harness.parallel.run_trials_sharded`) and analysed either
by streaming sufficient statistics (:meth:`ShardStore.sufficient_stats`,
memory bounded by one predicate-length array set) or by materialising
the merged population (:meth:`ShardStore.load_merged`) when run-level
data is needed, e.g. for iterative elimination.

Fault tolerance
---------------

Collection machines are assumed unreliable (the paper's deployment
model), so the store follows a write-ahead commit protocol:

1. a shard's bytes are written crash-safely to ``<name>.pending``
   (temp file + fsync + atomic rename inside
   :func:`repro.core.io.save_reports`);
2. the manifest entry -- including the file's SHA-256 -- is appended and
   the manifest saved atomically: **this is the commit point**;
3. the pending file is renamed to its final name.

A crash between (1) and (2) leaves an uncommitted ``.pending`` file that
:meth:`ShardStore.recover` rolls back (deletes); a crash between (2) and
(3) leaves a committed entry whose bytes sit under the pending name,
which recovery rolls forward (renames).  No interleaving leaves a
partially written shard under a committed name.

Damage that slips past collection (bit rot, truncation, deletion) is
caught by :meth:`ShardStore.audit`, which verifies every committed
shard's checksum and readability, moves offenders to ``quarantine/``
with a machine-readable reason file, and reports exactly how many runs
were lost.  Scores over the surviving shards are bit-identical to a
clean collection of just those seed ranges -- the sufficient statistics
are per-shard sums, so dropping a shard drops exactly its runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.core.io import (
    FORMAT_VERSION,
    WRITABLE_VERSIONS,
    ArchiveError,
    file_sha256,
    load_reports,
    load_shard_stats,
    save_reports,
)
from repro.core.predicates import PredicateTable
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores
from repro.core.truth import GroundTruth
from repro.instrument.sampling import SamplingPlan
from repro.instrument.transform import InstrumentationConfig
from repro.obs import (
    enabled as _obs_enabled,
    inc as _obs_inc,
    span as _obs_span,
    timer as _obs_timer,
)
from repro.store.errors import (
    DuplicateSeedRangeError,
    ShardCorruptionError,
    ShardIntegrityError,
    StaleManifestError,
)
from repro.store.incremental import SufficientStats
from repro.store.manifest import (
    ShardEntry,
    ShardManifest,
    config_digest,
    plan_from_json,
    plan_to_json,
)

#: Manifest filename inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory damaged shards are moved into.
QUARANTINE_DIR = "quarantine"

#: Append-only JSONL record of collection/audit events.
COLLECTION_LOG_NAME = "collection_log.jsonl"

#: Suffix of written-but-uncommitted shard files.
PENDING_SUFFIX = ".pending"


def shard_filename(seed_start: int) -> str:
    """Canonical shard name for a collection chunk starting at a seed."""
    return f"shard-{seed_start:08d}.npz"


def load_entry_stats(directory: str, entry: "ShardEntry", table_sha: str) -> SufficientStats:
    """Load and verify one committed shard's embedded sufficient statistics.

    The single per-shard step of the streaming scorer, factored out at
    module level so the serial loop (:meth:`ShardStore.sufficient_stats`)
    and the parallel engine's forked workers
    (:mod:`repro.core.engine`) run the *same* bytes-to-counts code --
    including the missing-file, unreadable and table-mismatch errors.

    Raises:
        StaleManifestError: The shard file is missing.
        ShardCorruptionError: Its bytes fail to parse.
        ShardIntegrityError: It carries a different predicate table.
    """
    path = os.path.join(directory, entry.filename)
    if not os.path.exists(path):
        raise StaleManifestError(
            f"manifest lists {entry.filename} but the file is missing; "
            "run audit() to quarantine it"
        )
    if _obs_enabled():
        _obs_inc("store.shards_streamed")
        _obs_inc("store.bytes_streamed", os.path.getsize(path))
    try:
        F, S, F_obs, S_obs, num_failing, num_successful, shard_sha = (
            load_shard_stats(path)
        )
    except ArchiveError as exc:
        raise ShardCorruptionError(entry.filename, str(exc)) from exc
    if shard_sha is not None and shard_sha != table_sha:
        raise ShardIntegrityError(
            entry.filename,
            f"carries table signature {shard_sha[:12]}..., manifest "
            f"expects {table_sha[:12]}...",
        )
    return SufficientStats(
        F=F,
        S=S,
        F_obs=F_obs,
        S_obs=S_obs,
        num_failing=num_failing,
        num_successful=num_successful,
    )


def pending_name(filename: str) -> str:
    """The staging name a shard occupies before its manifest commit."""
    return filename + PENDING_SUFFIX


@dataclass
class QuarantineRecord:
    """Why one shard (or manifest entry) was quarantined.

    Attributes:
        filename: The shard's name relative to the store directory.
        reason: Machine-readable reason code (``checksum-mismatch``,
            ``unreadable``, ``table-mismatch``, ``missing-file``,
            ``duplicate-seed-range``, ``failed-verification``).
        detail: Human-readable elaboration.
        n_runs: Runs the store lost with this shard (0 when the shard
            was never committed).
        num_failing: Failing runs lost.
        seed_start: The shard's base seed, when known -- this is the
            range a later session must re-collect.
    """

    filename: str
    reason: str
    detail: str
    n_runs: int = 0
    num_failing: int = 0
    seed_start: Optional[int] = None

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class AuditReport:
    """Outcome of one :meth:`ShardStore.audit` pass.

    Attributes:
        checked: Manifest entries examined.
        quarantined: Entries removed from membership, with reasons.
        orphans: Shard-like files present in the directory but not in
            the manifest (never counted, so only reported).
        rolled_forward: Committed shards recovered from pending names.
        rolled_back: Uncommitted pending files deleted.
    """

    checked: int = 0
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    orphans: List[str] = field(default_factory=list)
    rolled_forward: List[str] = field(default_factory=list)
    rolled_back: List[str] = field(default_factory=list)

    @property
    def runs_lost(self) -> int:
        """Exactly how many runs the quarantined shards took with them."""
        return sum(r.n_runs for r in self.quarantined)

    @property
    def failing_lost(self) -> int:
        """Failing runs among :attr:`runs_lost`."""
        return sum(r.num_failing for r in self.quarantined)

    @property
    def clean(self) -> bool:
        """True when nothing was quarantined and nothing was orphaned."""
        return not self.quarantined and not self.orphans


class ShardStore:
    """A directory of feedback-report shards with a manifest.

    Use :meth:`create` for a new store, :meth:`open` for an existing one,
    or :meth:`open_or_create` for append-style collection sessions.
    """

    def __init__(self, directory: str, manifest: ShardManifest) -> None:
        self.directory = directory
        self.manifest = manifest
        self._table: Optional[PredicateTable] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str,
        subject: str,
        table: PredicateTable,
        plan: SamplingPlan,
        config: Optional[InstrumentationConfig] = None,
        format_version: Optional[int] = None,
    ) -> "ShardStore":
        """Initialise an empty store (directory may exist but not a manifest).

        ``format_version`` pins the shard archive version the store will
        write (it must be in :data:`repro.core.io.WRITABLE_VERSIONS`);
        the default is the current writer.
        """
        if format_version is None:
            format_version = FORMAT_VERSION
        if format_version not in WRITABLE_VERSIONS:
            raise ValueError(
                f"cannot create a store writing archive version {format_version} "
                f"(writable: {sorted(WRITABLE_VERSIONS)})"
            )
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise FileExistsError(
                f"{manifest_path} already exists; use ShardStore.open() to append"
            )
        manifest = ShardManifest(
            subject=subject,
            table_sha=table.signature(),
            config_sha=config_digest(config),
            plan=plan_to_json(plan),
            format_version=format_version,
        )
        store = cls(directory, manifest)
        store._table = table
        manifest.save(manifest_path)
        return store

    @classmethod
    def create_like(cls, directory: str, like: ShardManifest) -> "ShardStore":
        """Initialise an empty store copying another store's identity.

        Used by cross-store replication (:mod:`repro.federate`), where
        the destination must accept a source's shards byte-for-byte: the
        subject, table signature, config digest, sampling plan and
        archive format version are copied from ``like``; membership
        starts empty.  No predicate table object is needed -- the first
        replicated shard carries it.
        """
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise FileExistsError(
                f"{manifest_path} already exists; use ShardStore.open() to append"
            )
        manifest = ShardManifest(
            subject=like.subject,
            table_sha=like.table_sha,
            config_sha=like.config_sha,
            plan=dict(like.plan),
            format_version=like.format_version,
        )
        store = cls(directory, manifest)
        manifest.save(manifest_path)
        return store

    @classmethod
    def open(cls, directory: str) -> "ShardStore":
        """Open an existing store."""
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise FileNotFoundError(
                f"no {MANIFEST_NAME} in {directory}; not a shard store"
            )
        return cls(directory, ShardManifest.load(manifest_path))

    @classmethod
    def open_or_create(
        cls,
        directory: str,
        subject: str,
        table: PredicateTable,
        plan: SamplingPlan,
        config: Optional[InstrumentationConfig] = None,
    ) -> "ShardStore":
        """Open ``directory`` for appending, creating it on first use.

        When the store exists, the subject, instrumentation config and
        predicate table must match what it was created with; the sampling
        plan may differ between sessions (the analysis is sampling-agnostic)
        but the manifest keeps the original.
        """
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            return cls.create(directory, subject, table, plan, config=config)
        store = cls.open(directory)
        if store.manifest.subject != subject:
            raise ValueError(
                f"store holds subject {store.manifest.subject!r}, refusing to "
                f"append {subject!r} reports"
            )
        if store.manifest.table_sha != table.signature():
            raise ValueError(
                "store was collected with a different predicate table "
                "(instrumentation changed?); appending would mis-attribute "
                "counters"
            )
        if store.manifest.config_sha != config_digest(config):
            raise ValueError(
                "store was collected with a different instrumentation "
                "configuration; appending would mix incompatible predicates"
            )
        store._table = table
        return store

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        """Path of the manifest file."""
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def quarantine_dir(self) -> str:
        """Path of the quarantine subdirectory (may not exist yet)."""
        return os.path.join(self.directory, QUARANTINE_DIR)

    @property
    def collection_log_path(self) -> str:
        """Path of the append-only collection event log."""
        return os.path.join(self.directory, COLLECTION_LOG_NAME)

    @property
    def n_shards(self) -> int:
        """Number of shards registered."""
        return len(self.manifest.shards)

    @property
    def shard_format_version(self) -> int:
        """Archive version this store's shards are written in.

        Pinned at creation (new stores get the current
        :data:`repro.core.io.FORMAT_VERSION`), so append sessions to a
        store collected under an older format keep it homogeneous --
        readers dispatch per file either way, but a uniform store keeps
        its checksums comparable across sessions.  Stores whose manifest
        predates writable-version tracking fall back to the current
        writer.
        """
        version = self.manifest.format_version
        return version if version in WRITABLE_VERSIONS else FORMAT_VERSION

    @property
    def n_runs(self) -> int:
        """Total runs across shards."""
        return self.manifest.n_runs

    @property
    def num_failing(self) -> int:
        """Total failing runs across shards."""
        return self.manifest.num_failing

    @property
    def next_seed(self) -> int:
        """First unused trial seed (for contiguous append sessions)."""
        return self.manifest.next_seed

    def plan(self) -> SamplingPlan:
        """The sampling plan recorded at store creation."""
        return plan_from_json(self.manifest.plan)

    def shard_paths(self) -> List[str]:
        """Absolute shard paths in collection (merge) order."""
        return [os.path.join(self.directory, e.filename) for e in self.manifest.shards]

    def table(self) -> PredicateTable:
        """The predicate table, loaded lazily from the first shard."""
        if self._table is None:
            if not self.manifest.shards:
                raise ValueError("empty store has no shards to read a table from")
            reports, _ = load_reports(self.shard_paths()[0])
            self._table = reports.table
        return self._table

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------
    def log_event(self, event: str, **fields: object) -> None:
        """Append one event record to ``collection_log.jsonl``.

        Each line is a self-contained JSON object with at least ``event``
        and a wall-clock ``ts``; collection and audit use it to leave a
        machine-readable trail of attempts, failures and quarantines.
        """
        record = {"event": event, "ts": time.time(), **fields}
        with open(self.collection_log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def read_log(self) -> List[dict]:
        """All event records logged so far (empty when no log exists)."""
        if not os.path.exists(self.collection_log_path):
            return []
        with open(self.collection_log_path, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append_shard(
        self,
        reports: ReportSet,
        truth: Optional[GroundTruth] = None,
        seed_start: Optional[int] = None,
    ) -> str:
        """Write one shard archive and register it in the manifest.

        Follows the store's commit protocol: the bytes land under a
        ``.pending`` name first, the manifest append is the commit point,
        and only then is the shard renamed into place -- an interruption
        at any step is repaired by :meth:`recover`.

        Args:
            reports: The shard's report population; its table signature
                must match the store's.
            truth: Optional run-aligned ground truth, persisted alongside.
            seed_start: Base seed of the shard's first trial, if the shard
                comes from a seeded collection.

        Returns:
            The shard's absolute path.
        """
        if reports.table.signature() != self.manifest.table_sha:
            raise ValueError(
                "shard was collected against a different predicate table than "
                "this store; refusing to append"
            )
        if seed_start is not None:
            filename = shard_filename(seed_start)
        else:
            filename = f"shard-x{self.n_shards:06d}.npz"
        path = os.path.join(self.directory, filename)
        if os.path.exists(path):
            raise FileExistsError(f"shard {filename} already exists in the store")
        staged = path + PENDING_SUFFIX
        save_reports(staged, reports, truth, version=self.shard_format_version)
        self.commit_shard(
            ShardEntry(
                filename=filename,
                n_runs=reports.n_runs,
                num_failing=reports.num_failing,
                seed_start=seed_start,
                sha256=file_sha256(staged),
            )
        )
        return path

    def register_shard(self, entry: ShardEntry) -> None:
        """Add a membership entry for a shard file already on disk.

        Used by the parallel collector, whose workers write shard
        archives directly; the parent only registers the entries (in
        collection order) and rewrites the manifest.

        Raises:
            ValueError: When ``entry.filename`` is already registered.
            DuplicateSeedRangeError: When the entry's seed range overlaps
                a registered shard -- counting both would double-count.
        """
        if self.manifest.find(entry.filename) is not None:
            raise ValueError(f"shard {entry.filename} is already registered")
        clash = self.manifest.overlapping(entry)
        if clash is not None:
            raise DuplicateSeedRangeError(
                f"shard {entry.filename} covers seeds "
                f"[{entry.seed_start}, {entry.seed_start + entry.n_runs}) which "
                f"overlaps registered shard {clash.filename} "
                f"[{clash.seed_start}, {clash.seed_start + clash.n_runs}); "
                "merging both would double-count runs"
            )
        self.manifest.shards.append(entry)
        self.manifest.save(self.manifest_path)

    def commit_shard(self, entry: ShardEntry) -> str:
        """Commit a shard whose bytes sit under its pending name.

        Registers the manifest entry (the commit point) and then renames
        ``<filename>.pending`` to ``<filename>``.  Safe against crashes
        at every step; see the module docstring for the protocol.

        Returns:
            The committed shard's absolute path.
        """
        final = os.path.join(self.directory, entry.filename)
        staged = final + PENDING_SUFFIX
        if not os.path.exists(staged):
            raise FileNotFoundError(f"no pending shard at {staged} to commit")
        with _obs_timer("store.commit_shard"):
            self.register_shard(entry)
            os.replace(staged, final)
        if _obs_enabled():
            _obs_inc("store.shards_committed")
            _obs_inc("store.runs_committed", entry.n_runs)
        return final

    def ingest_shard_bytes(self, data: bytes, entry: ShardEntry) -> str:
        """Commit a shard replicated from another store, byte-for-byte.

        The cross-store commit primitive of :mod:`repro.federate`: the
        raw archive bytes (exactly as committed at the source) go
        through the same pending-file protocol as a local
        :meth:`append_shard`, so a crash mid-replication is repaired by
        :meth:`recover` and never leaves a half-copied shard under a
        committed name.  ``entry`` must carry the digest of ``data``.

        Raises:
            ShardIntegrityError: ``data`` does not hash to
                ``entry.sha256`` -- damaged in transit, refuse to commit.
            ValueError: ``entry.sha256`` is unset (replication always
                verifies end to end, so a digest is mandatory here).

        Returns:
            The committed shard's absolute path.
        """
        import hashlib

        if entry.sha256 is None:
            raise ValueError(
                f"refusing to ingest {entry.filename} without a sha256 digest"
            )
        actual = hashlib.sha256(data).hexdigest()
        if actual != entry.sha256:
            raise ShardIntegrityError(
                entry.filename,
                f"replicated bytes hash to {actual[:12]}..., entry says "
                f"{entry.sha256[:12]}...",
            )
        final = os.path.join(self.directory, entry.filename)
        if os.path.exists(final):
            raise FileExistsError(f"shard {entry.filename} already exists in the store")
        staged = final + PENDING_SUFFIX
        with open(staged, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return self.commit_shard(entry)

    # ------------------------------------------------------------------
    # Recovery, quarantine, audit
    # ------------------------------------------------------------------
    def recover(self) -> Tuple[List[str], List[str]]:
        """Repair interrupted commits; idempotent and cheap.

        Rolls *forward* committed shards still sitting under their
        pending names (crash after manifest append, before rename) and
        rolls *back* (deletes) pending files with no manifest entry
        (crash before the commit point -- their seed range was never
        counted and will be re-collected).

        Returns:
            ``(rolled_forward, rolled_back)`` filename lists.
        """
        rolled_forward: List[str] = []
        rolled_back: List[str] = []
        with _obs_timer("store.recover"):
            for entry in self.manifest.shards:
                final = os.path.join(self.directory, entry.filename)
                staged = final + PENDING_SUFFIX
                if not os.path.exists(final) and os.path.exists(staged):
                    os.replace(staged, final)
                    rolled_forward.append(entry.filename)
            for name in sorted(os.listdir(self.directory)):
                if not name.endswith(PENDING_SUFFIX):
                    continue
                final_name = name[: -len(PENDING_SUFFIX)]
                if self.manifest.find(final_name) is None:
                    os.unlink(os.path.join(self.directory, name))
                    rolled_back.append(name)
        if rolled_forward or rolled_back:
            self.log_event(
                "recover", rolled_forward=rolled_forward, rolled_back=rolled_back
            )
        return rolled_forward, rolled_back

    def quarantine_file(
        self,
        filename: str,
        reason: str,
        detail: str,
        n_runs: int = 0,
        num_failing: int = 0,
        seed_start: Optional[int] = None,
    ) -> QuarantineRecord:
        """Move a damaged shard aside with a machine-readable reason.

        The file (when present) lands in ``quarantine/`` under its own
        name, next to ``<name>.reason.json`` describing why, what seed
        range was lost, and when.  The manifest is *not* modified here;
        callers drop the entry themselves (see :meth:`audit`).
        """
        record = QuarantineRecord(
            filename=filename,
            reason=reason,
            detail=detail,
            n_runs=n_runs,
            num_failing=num_failing,
            seed_start=seed_start,
        )
        os.makedirs(self.quarantine_dir, exist_ok=True)
        source = os.path.join(self.directory, filename)
        if os.path.exists(source):
            os.replace(source, os.path.join(self.quarantine_dir, filename))
        reason_path = os.path.join(self.quarantine_dir, f"{filename}.reason.json")
        with open(reason_path, "w", encoding="utf-8") as handle:
            json.dump(
                {**record.to_json(), "quarantined_at": time.time()},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        self.log_event("quarantine", filename=filename, reason=reason, detail=detail)
        return record

    def quarantined(self) -> List[dict]:
        """The reason records of everything quarantined so far."""
        records: List[dict] = []
        if not os.path.isdir(self.quarantine_dir):
            return records
        for name in sorted(os.listdir(self.quarantine_dir)):
            if name.endswith(".reason.json"):
                with open(
                    os.path.join(self.quarantine_dir, name), "r", encoding="utf-8"
                ) as handle:
                    records.append(json.load(handle))
        return records

    def verify_entry(self, entry: ShardEntry) -> None:
        """Check one committed shard's existence, checksum and contents.

        Raises:
            StaleManifestError: The file is missing.
            ShardIntegrityError: Checksum or table-signature mismatch, or
                run counts disagreeing with the manifest entry.
            ShardCorruptionError: The bytes fail to parse as an archive.
        """
        path = os.path.join(self.directory, entry.filename)
        if not os.path.exists(path):
            raise StaleManifestError(
                f"manifest lists {entry.filename} but the file is missing"
            )
        if entry.sha256 is not None:
            actual = file_sha256(path)
            if actual != entry.sha256:
                raise ShardIntegrityError(
                    entry.filename,
                    f"checksum mismatch: manifest {entry.sha256[:12]}..., "
                    f"file {actual[:12]}...",
                )
        try:
            F, S, F_obs, S_obs, num_failing, num_successful, table_sha = (
                load_shard_stats(path)
            )
        except ArchiveError as exc:
            raise ShardCorruptionError(entry.filename, str(exc)) from exc
        if table_sha is not None and table_sha != self.manifest.table_sha:
            raise ShardIntegrityError(
                entry.filename,
                f"table signature {table_sha[:12]}... does not match "
                f"manifest {self.manifest.table_sha[:12]}...",
            )
        if num_failing + num_successful != entry.n_runs:
            raise ShardIntegrityError(
                entry.filename,
                f"archive holds {num_failing + num_successful} runs, "
                f"manifest says {entry.n_runs}",
            )

    def audit(self) -> AuditReport:
        """Verify every committed shard, quarantining what fails.

        Runs :meth:`recover` first, then checks each manifest entry for
        existence, checksum, readability, table compatibility, run-count
        agreement, and seed-range overlap.  Failing entries are dropped
        from the manifest and their files moved to ``quarantine/``; the
        report says exactly how many runs were lost with them, which is
        also the exact seed budget a re-collection needs.  Scoring the
        surviving shards is bit-identical to a clean collection of just
        those seed ranges.
        """
        with _obs_span("store.audit", shards=self.n_shards):
            report = self._audit_impl()
        if _obs_enabled():
            _obs_inc("store.shards_quarantined", len(report.quarantined))
            _obs_inc("store.runs_lost", report.runs_lost)
        return report

    def _audit_impl(self) -> AuditReport:
        report = AuditReport()
        report.rolled_forward, report.rolled_back = self.recover()

        surviving: List[ShardEntry] = []
        kept_so_far: List[ShardEntry] = []
        for entry in self.manifest.shards:
            report.checked += 1
            reason: Optional[Tuple[str, str]] = None
            clash = next((e for e in kept_so_far if e.overlaps(entry)), None)
            if clash is not None:
                reason = (
                    "duplicate-seed-range",
                    f"seed range overlaps earlier shard {clash.filename}",
                )
            else:
                try:
                    self.verify_entry(entry)
                except StaleManifestError as exc:
                    reason = ("missing-file", str(exc))
                except ShardCorruptionError as exc:
                    reason = ("unreadable", exc.detail)
                except ShardIntegrityError as exc:
                    code = (
                        "checksum-mismatch"
                        if "checksum" in exc.detail
                        else "table-mismatch"
                        if "table signature" in exc.detail
                        else "count-mismatch"
                    )
                    reason = (code, exc.detail)
            if reason is None:
                surviving.append(entry)
                kept_so_far.append(entry)
            else:
                report.quarantined.append(
                    self.quarantine_file(
                        entry.filename,
                        reason[0],
                        reason[1],
                        n_runs=entry.n_runs,
                        num_failing=entry.num_failing,
                        seed_start=entry.seed_start,
                    )
                )

        if report.quarantined:
            self.manifest.shards = surviving
            self.manifest.save(self.manifest_path)

        registered = {e.filename for e in self.manifest.shards}
        for name in sorted(os.listdir(self.directory)):
            if (
                name.startswith("shard-")
                and name.endswith(".npz")
                and name not in registered
            ):
                report.orphans.append(name)
        if not report.clean:
            self.log_event(
                "audit",
                checked=report.checked,
                quarantined=[r.filename for r in report.quarantined],
                orphans=report.orphans,
                runs_lost=report.runs_lost,
            )
        return report

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def iter_reports(self) -> Iterator[Tuple[ReportSet, Optional[GroundTruth]]]:
        """Yield ``(reports, truth)`` per shard, in collection order.

        Peak memory is one shard at a time.

        Raises:
            StaleManifestError: A committed shard file is missing.
            ShardCorruptionError: A shard's bytes fail to parse; run
                :meth:`audit` to quarantine it and continue without.
        """
        for entry, path in zip(self.manifest.shards, self.shard_paths()):
            if not os.path.exists(path):
                raise StaleManifestError(
                    f"manifest lists {entry.filename} but the file is missing; "
                    "run audit() to quarantine it"
                )
            try:
                yield load_reports(path)
            except ArchiveError as exc:
                raise ShardCorruptionError(entry.filename, str(exc)) from exc

    def load_merged(self) -> Tuple[ReportSet, Optional[GroundTruth]]:
        """Materialise the whole population (all shards concatenated).

        Row order equals collection order, so the result is bit-identical
        to a monolithic collection with the same seeds.  Ground truth is
        merged when *every* shard carries it; otherwise ``None``.
        """
        with _obs_timer("store.load_merged"):
            parts: List[ReportSet] = []
            truths: List[Optional[GroundTruth]] = []
            for reports, truth in self.iter_reports():
                parts.append(reports)
                truths.append(truth)
            if not parts:
                raise ValueError("cannot merge an empty shard store")
            merged = ReportSet.merge(parts)
            truth_out: Optional[GroundTruth] = None
            if all(t is not None for t in truths):
                truth_out = GroundTruth.merge([t for t in truths if t is not None])
            return merged, truth_out

    def sufficient_stats(self, jobs: int = 1) -> SufficientStats:
        """Accumulate scoring statistics across shards, streaming.

        Format-v3 shards are memory-mapped and only the statistic
        columns' pages are touched (zero-copy); format-v2 shards read
        six small arrays out of their ``.npz``.  Either way the
        run-by-predicate matrices are never reconstructed, so parent
        memory is bounded by one predicate-length array set regardless
        of how many runs the store holds.

        Args:
            jobs: With ``jobs > 1``, disjoint shard subsets stream in
                that many forked workers and the partial sums tree-merge
                in the parent (:mod:`repro.core.engine`).  The counts are
                integers, so the result is bit-identical to the serial
                stream for every worker count.

        Raises:
            StaleManifestError: A committed shard file is missing.
            ShardCorruptionError: A shard's bytes fail to parse.
            ShardIntegrityError: A shard carries a different predicate
                table than the manifest.  In all three cases,
                :meth:`audit` quarantines the offender so a retry
                proceeds over the survivors.
        """
        if not self.manifest.shards:
            raise ValueError("cannot score an empty shard store")
        if jobs > 1:
            from repro.core.engine import AnalysisEngine

            return AnalysisEngine(jobs=jobs).store_stats(self)
        total: Optional[SufficientStats] = None
        with _obs_timer("store.stream_stats"):
            for entry in self.manifest.shards:
                part = load_entry_stats(
                    self.directory, entry, self.manifest.table_sha
                )
                # v3 parts are read-only file-mapping views; seed the
                # accumulator with a writable copy before += kicks in.
                total = part.materialized() if total is None else total.add(part)
        assert total is not None
        return total

    def compute_scores(
        self, confidence: float = DEFAULT_CONFIDENCE, jobs: int = 1
    ) -> PredicateScores:
        """Score the whole store incrementally (see :mod:`repro.store.incremental`).

        With ``jobs > 1`` both halves run through the parallel engine --
        shard streaming over run subsets, then scoring over predicate
        partitions -- with bit-identical results (the engine's contract).
        """
        if jobs > 1:
            from repro.core.engine import AnalysisEngine

            engine = AnalysisEngine(jobs=jobs, confidence=confidence)
            return engine.scores_from_stats(engine.store_stats(self))
        return self.sufficient_stats().to_scores(confidence=confidence)

    def __repr__(self) -> str:
        return (
            f"ShardStore({self.directory!r}, subject={self.manifest.subject!r}, "
            f"shards={self.n_shards}, runs={self.n_runs})"
        )
