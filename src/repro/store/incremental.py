"""Incremental (streaming) scoring from per-shard sufficient statistics.

All Section 3.1-3.2 quantities -- ``Failure``, ``Context``, ``Increase``
and its interval, ``pf``/``ps`` and the ``Z`` statistic -- are functions
of six sufficient statistics: the per-predicate integer counts ``F(P)``,
``S(P)``, ``F(P obs)``, ``S(P obs)`` and the population totals ``NumF``,
``NumS``.  Each is a sum of per-run indicator variables, so for any
partition of the runs into shards the statistic of the whole population
is the elementwise sum of the shard statistics.  Accumulating
:class:`SufficientStats` shard by shard and calling
:func:`repro.core.scores.scores_from_counts` (the exact code path
:func:`repro.core.scores.compute_scores` uses internally) therefore
yields *bit-identical* scores to materialising the merged population --
``tests/store/test_store.py`` pins the integer equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.reports import ReportSet
from repro.core.scores import (
    DEFAULT_CONFIDENCE,
    PredicateScores,
    scores_from_counts,
    sufficient_counts,
)
from repro.obs import timer as _obs_timer


@dataclass
class SufficientStats:
    """Additive per-predicate scoring statistics for one run population.

    Attributes:
        F: ``F(P)`` -- failing runs where ``P`` observed true.
        S: ``S(P)`` -- successful runs where ``P`` observed true.
        F_obs: ``F(P observed)`` per predicate.
        S_obs: ``S(P observed)`` per predicate.
        num_failing: ``NumF`` -- failing runs in the population.
        num_successful: Successful runs in the population.
    """

    F: np.ndarray
    S: np.ndarray
    F_obs: np.ndarray
    S_obs: np.ndarray
    num_failing: int = 0
    num_successful: int = 0

    @classmethod
    def zeros(cls, n_predicates: int) -> "SufficientStats":
        """An identity element covering zero runs."""
        return cls(
            F=np.zeros(n_predicates, dtype=np.int64),
            S=np.zeros(n_predicates, dtype=np.int64),
            F_obs=np.zeros(n_predicates, dtype=np.int64),
            S_obs=np.zeros(n_predicates, dtype=np.int64),
        )

    @classmethod
    def from_reports(
        cls, reports: ReportSet, run_mask: Optional[np.ndarray] = None
    ) -> "SufficientStats":
        """Extract the statistics of one (possibly masked) report set."""
        F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(
            reports, run_mask
        )
        return cls(
            F=F,
            S=S,
            F_obs=F_obs,
            S_obs=S_obs,
            num_failing=num_failing,
            num_successful=num_successful,
        )

    @property
    def n_predicates(self) -> int:
        """Number of predicate columns covered."""
        return int(self.F.shape[0])

    @property
    def n_runs(self) -> int:
        """Total runs accumulated."""
        return self.num_failing + self.num_successful

    def _check_compatible(self, other: "SufficientStats") -> None:
        if self.n_predicates != other.n_predicates:
            raise ValueError(
                f"cannot combine statistics over {self.n_predicates} and "
                f"{other.n_predicates} predicates -- different tables?"
            )

    def materialized(self) -> "SufficientStats":
        """A writable deep copy of these statistics.

        Statistics loaded from a format-v3 archive are zero-copy
        *read-only* views of the file mapping
        (:func:`repro.core.io.load_shard_stats`), so an accumulator
        seeded directly from one (``total = part; total.add(...)``)
        would crash on the in-place ``+=``.  Seed accumulators with a
        copy; the per-shard parts themselves are never written to.
        """
        return SufficientStats(
            F=np.array(self.F, dtype=np.int64),
            S=np.array(self.S, dtype=np.int64),
            F_obs=np.array(self.F_obs, dtype=np.int64),
            S_obs=np.array(self.S_obs, dtype=np.int64),
            num_failing=self.num_failing,
            num_successful=self.num_successful,
        )

    def add(self, other: "SufficientStats") -> "SufficientStats":
        """Accumulate another shard's statistics in place."""
        self._check_compatible(other)
        self.F += other.F
        self.S += other.S
        self.F_obs += other.F_obs
        self.S_obs += other.S_obs
        self.num_failing += other.num_failing
        self.num_successful += other.num_successful
        return self

    @classmethod
    def merge_tree(cls, parts: "list[SufficientStats]") -> "SufficientStats":
        """Combine per-worker statistics by pairwise tree reduction.

        Integer addition is associative and commutative, so *any* merge
        shape -- left fold, tree, random -- produces identical counts;
        the tree shape is what the parallel engine uses to combine its
        workers' partial sums, and keeping it as a named operation lets
        ``tests/instrument/test_sampling_properties.py`` pin the
        shape-independence property directly.

        Args:
            parts: One partial statistic per disjoint run subset.

        Raises:
            ValueError: On an empty sequence or mismatched predicate
                counts.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge an empty sequence of statistics")
        while len(parts) > 1:
            merged = [
                parts[i] + parts[i + 1] for i in range(0, len(parts) - 1, 2)
            ]
            if len(parts) % 2:
                merged.append(parts[-1])
            parts = merged
        return parts[0]

    def slice_predicates(self, lo: int, hi: int) -> "SufficientStats":
        """The statistics of predicate columns ``[lo, hi)`` alone.

        The population totals (``NumF``/``NumS``) are population-wide,
        not per-predicate, so they are carried unchanged: scoring a slice
        with :func:`repro.core.scores.scores_from_counts` gives exactly
        the rows ``[lo, hi)`` of scoring the whole table, which is the
        predicate-axis half of the parallel engine's bit-identity
        contract.
        """
        return SufficientStats(
            F=self.F[lo:hi],
            S=self.S[lo:hi],
            F_obs=self.F_obs[lo:hi],
            S_obs=self.S_obs[lo:hi],
            num_failing=self.num_failing,
            num_successful=self.num_successful,
        )

    def __add__(self, other: "SufficientStats") -> "SufficientStats":
        self._check_compatible(other)
        return SufficientStats(
            F=self.F + other.F,
            S=self.S + other.S,
            F_obs=self.F_obs + other.F_obs,
            S_obs=self.S_obs + other.S_obs,
            num_failing=self.num_failing + other.num_failing,
            num_successful=self.num_successful + other.num_successful,
        )

    def to_scores(self, confidence: float = DEFAULT_CONFIDENCE) -> PredicateScores:
        """Score the accumulated population.

        Delegates to :func:`repro.core.scores.scores_from_counts`, the
        same arithmetic ``compute_scores`` runs on in-memory populations,
        so the result is exactly what scoring the merged shards would
        produce.
        """
        with _obs_timer("scores.from_counts"):
            return scores_from_counts(
                self.F,
                self.S,
                self.F_obs,
                self.S_obs,
                self.num_failing,
                self.num_successful,
                confidence=confidence,
            )

    def __repr__(self) -> str:
        return (
            f"SufficientStats(runs={self.n_runs}, failing={self.num_failing}, "
            f"predicates={self.n_predicates})"
        )
