"""Real-world subject factory.

Turns any importable Python package -- a stdlib module, a pip-installed
library, or one of the vendored corpus packages -- into a first-class
:class:`~repro.subjects.base.Subject`:

* :mod:`repro.factory.loader` instruments every module of a package
  into one shared predicate table and executes the result behind a
  temporary import hook, so cross-module imports resolve to the
  instrumented code;
* :mod:`repro.factory.mutate` deterministically injects one of four
  classic bug classes (operator swap, off-by-one, negated condition,
  boundary relaxation), stamping the mutation with a ``record_bug``
  call so the existing ground-truth grading works unchanged;
* :mod:`repro.factory.subjects` packages the two into
  :class:`~repro.factory.subjects.FactorySubject` instances with
  auto-derived trial budgets, and seeds the registry with a corpus of
  mutation-injected bugs in vendored stdlib-scale packages.
"""

from repro.factory.loader import (
    PackageProgram,
    instrument_package,
    package_modules,
    pristine_namespace,
)
from repro.factory.mutate import (
    MUTATION_CLASSES,
    MutationSpec,
    apply_mutation,
    count_candidates,
)
from repro.factory.subjects import FactorySubject, corpus_subjects

__all__ = [
    "PackageProgram",
    "instrument_package",
    "package_modules",
    "pristine_namespace",
    "MUTATION_CLASSES",
    "MutationSpec",
    "apply_mutation",
    "count_candidates",
    "FactorySubject",
    "corpus_subjects",
]
