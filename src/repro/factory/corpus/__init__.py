"""The seeded factory corpus: vendored packages, generators, bug specs.

The corpus packages (``wrapx``, ``jsonscan``, ``csvlite``) live in this
directory as plain source files.  They are **subject material**: the
factory loader reads their text and executes it under the synthetic
module names the sources import each other by (``jsonscan.scanner``,
not ``repro.factory.corpus.jsonscan.scanner``); nothing in
:mod:`repro` imports them directly.

Each :class:`CorpusBug` pins one deterministic mutation.  The
occurrence indices were tuned empirically so every bug has a failure
rate strictly inside ``(0, 1)`` over its generator's input distribution
-- neither an equivalent mutant nor an always-failing one -- which is
what makes statistical isolation both possible and non-trivial.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.factory.mutate import MutationSpec

_HERE = os.path.dirname(os.path.abspath(__file__))

#: Relative source files per package, root module first.
_PACKAGE_FILES: Dict[str, Dict[str, str]] = {
    "wrapx": {"wrapx": "wrapx.py"},
    "jsonscan": {
        "jsonscan": os.path.join("jsonscan", "__init__.py"),
        "jsonscan.scanner": os.path.join("jsonscan", "scanner.py"),
    },
    "csvlite": {
        "csvlite": os.path.join("csvlite", "__init__.py"),
        "csvlite.reader": os.path.join("csvlite", "reader.py"),
        "csvlite.writer": os.path.join("csvlite", "writer.py"),
    },
}


def corpus_packages() -> Tuple[str, ...]:
    """Names of the vendored corpus packages."""
    return tuple(sorted(_PACKAGE_FILES))


def corpus_sources(package: str) -> Dict[str, str]:
    """Read ``{module name: source}`` for one vendored package."""
    try:
        files = _PACKAGE_FILES[package]
    except KeyError:
        raise KeyError(
            f"unknown corpus package {package!r}; have {corpus_packages()}"
        ) from None
    sources: Dict[str, str] = {}
    for module, rel in files.items():
        with open(os.path.join(_HERE, rel), encoding="utf-8") as fh:
            sources[module] = fh.read()
    return sources


# ----------------------------------------------------------------------
# Input generators (module-level functions: picklable across the
# multiprocessing collection paths)
# ----------------------------------------------------------------------

_ALPHA = "abcdefghijklmnopqrstuvwxyz"


def _word(rng: random.Random, lo: int = 1, hi: int = 12) -> str:
    return "".join(rng.choice(_ALPHA) for _ in range(rng.randint(lo, hi)))


def wrapx_job(rng: random.Random) -> Dict[str, object]:
    """A random formatting job for the ``wrapx`` package."""
    parts = []
    for _ in range(rng.randint(1, 30)):
        roll = rng.random()
        if roll < 0.05:
            parts.append(_word(rng, 20, 60))  # forces long-word breaking
        else:
            parts.append(_word(rng))
        if rng.random() < 0.12:
            parts.append("\n" + " " * rng.randint(0, 6))
        elif rng.random() < 0.06:
            parts.append("\t")
        else:
            parts.append(" ")
    text = "".join(parts)
    op = rng.choice(["wrap", "wrap", "fill", "dedent", "indent", "shorten"])
    return {
        "op": op,
        "text": text,
        "width": rng.randint(5, 40),
        "prefix": rng.choice(["  ", "> ", "\t", "* "]),
    }


def _json_value(rng: random.Random, depth: int):
    roll = rng.random()
    if depth <= 0 or roll < 0.45:
        leaf = rng.random()
        if leaf < 0.35:
            if rng.random() < 0.5:
                return rng.randint(-9999, 9999)
            return rng.randint(0, 9)
        if leaf < 0.6:
            return round(rng.uniform(-100, 100), rng.randint(1, 3))
        if leaf < 0.85:
            chars = []
            for _ in range(rng.randint(0, 10)):
                r = rng.random()
                if r < 0.08:
                    chars.append(rng.choice(['"', "\\", "\n", "\t", "\b"]))
                elif r < 0.12:
                    chars.append(chr(rng.randint(0x20, 0x2FF)))
                else:
                    chars.append(rng.choice(_ALPHA))
            return "".join(chars)
        return rng.choice([True, False, None])
    if roll < 0.75:
        return [_json_value(rng, depth - 1) for _ in range(rng.randint(0, 5))]
    return {
        _word(rng, 1, 8): _json_value(rng, depth - 1)
        for _ in range(rng.randint(0, 5))
    }


def jsonscan_job(rng: random.Random) -> Dict[str, object]:
    """A random parse/minify job for the ``jsonscan`` package."""
    import json as _json

    value = _json_value(rng, rng.randint(1, 4))
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["indent"] = rng.randint(1, 4)
    elif rng.random() < 0.3:
        kwargs["separators"] = (", ", ": ")
    text = _json.dumps(value, **kwargs)
    op = "parse" if rng.random() < 0.7 else "minify"
    return {"op": op, "text": text}


def _cell(rng: random.Random, delimiter: str) -> str:
    chars = []
    for _ in range(rng.randint(0, 8)):
        r = rng.random()
        if r < 0.08:
            chars.append(delimiter)
        elif r < 0.14:
            chars.append('"')
        elif r < 0.18:
            chars.append("\n")
        elif r < 0.24:
            chars.append(" ")
        else:
            chars.append(rng.choice(_ALPHA + "0123456789"))
    return "".join(chars)


def _render_for_parse(rows, delimiter: str) -> str:
    """A generator-local renderer matching csvlite.writer semantics."""
    lines = []
    for row in rows:
        cells = []
        for cell in row:
            structural = any(
                ch == delimiter or ch == '"' or ch in "\n\r" for ch in cell
            )
            padded = cell != "" and (cell[0] == " " or cell[-1] == " ")
            if structural or padded:
                cells.append('"' + cell.replace('"', '""') + '"')
            else:
                cells.append(cell)
        lines.append(delimiter.join(cells))
    return "\n".join(lines) + ("\n" if lines else "")


def csvlite_job(rng: random.Random) -> Dict[str, object]:
    """A random csv job for the ``csvlite`` package."""
    delimiter = rng.choice([",", ";", "|", "\t"])
    rows = [
        [_cell(rng, delimiter) for _ in range(rng.randint(1, 5))]
        for _ in range(rng.randint(1, 6))
    ]
    roll = rng.random()
    if roll < 0.4:
        op = "roundtrip"
    elif roll < 0.6:
        op = "render"
    elif roll < 0.7:
        op = "widths"
    else:
        op = "parse"
    job: Dict[str, object] = {"op": op, "delimiter": delimiter, "rows": rows}
    if op == "parse":
        job["text"] = _render_for_parse(rows, delimiter)
    return job


GENERATORS = {
    "wrapx": wrapx_job,
    "jsonscan": jsonscan_job,
    "csvlite": csvlite_job,
}


# ----------------------------------------------------------------------
# The seeded bug corpus
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusBug:
    """One seeded bug: a subject name, its package, and the mutation."""

    name: str
    package: str
    spec: MutationSpec


def _bug(name: str, package: str, module: str, operator: str, occ: int) -> CorpusBug:
    return CorpusBug(
        name=name,
        package=package,
        spec=MutationSpec(
            bug_id=name, module=module, operator=operator, occurrence=occ
        ),
    )


#: The ``>=10``-bug seeded corpus, covering all four mutation classes
#: across all three packages.  Occurrence indices are pinned (see module
#: docstring); tests/factory/test_corpus.py asserts every bug's failure
#: rate stays inside (0, 1) and that each is isolated at rank <= 5.
CORPUS_BUGS: Tuple[CorpusBug, ...] = (
    # Trailing comments give the measured failure rate over 150 trials
    # at full sampling (seeds 5_000_000..5_000_149).
    _bug("wrapx-swap1", "wrapx", "wrapx", "operator-swap", 2),  # 46/150
    _bug("wrapx-off1", "wrapx", "wrapx", "off-by-one", 3),  # 32/150
    _bug("wrapx-negc1", "wrapx", "wrapx", "negated-condition", 5),  # 32/150
    _bug("wrapx-brel1", "wrapx", "wrapx", "boundary-relaxation", 3),  # 36/150
    _bug("jsonscan-swap1", "jsonscan", "jsonscan.scanner", "operator-swap", 3),  # 37/150
    _bug("jsonscan-off1", "jsonscan", "jsonscan.scanner", "off-by-one", 28),  # 15/150
    _bug("jsonscan-negc1", "jsonscan", "jsonscan", "negated-condition", 4),  # 33/150
    _bug("jsonscan-brel1", "jsonscan", "jsonscan.scanner", "boundary-relaxation", 4),  # 24/150
    _bug("csvlite-swap1", "csvlite", "csvlite.writer", "operator-swap", 0),  # 92/150
    _bug("csvlite-off1", "csvlite", "csvlite.writer", "off-by-one", 0),  # 52/150
    _bug("csvlite-negc1", "csvlite", "csvlite.writer", "negated-condition", 2),  # 28/150
    _bug("csvlite-brel1", "csvlite", "csvlite", "boundary-relaxation", 0),  # 17/150
)
