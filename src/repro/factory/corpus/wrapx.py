"""wrapx: a vendored textwrap-scale paragraph formatting library.

Subject-corpus material for the factory: a self-contained,
zero-dependency re-implementation of greedy paragraph wrapping with
indent/dedent/shorten helpers.  Executed by the factory loader, never
imported as part of :mod:`repro` itself.
"""

TABSIZE = 8
DEFAULT_WIDTH = 70
PLACEHOLDER = " [...]"


def expand_tabs(text, tabsize=TABSIZE):
    """Replace tabs with spaces up to the next tab stop."""
    out = []
    col = 0
    for ch in text:
        if ch == "\t":
            pad = tabsize - col % tabsize
            out.append(" " * pad)
            col += pad
        elif ch == "\n":
            out.append(ch)
            col = 0
        else:
            out.append(ch)
            col += 1
    return "".join(out)


def split_words(text):
    """Split into words on runs of whitespace (no empty words)."""
    words = []
    current = []
    for ch in text:
        if ch in " \t\n\r":
            if current:
                words.append("".join(current))
                current = []
        else:
            current.append(ch)
    if current:
        words.append("".join(current))
    return words


def break_long_word(word, width):
    """Chop a too-long word into width-sized pieces."""
    pieces = []
    start = 0
    n = len(word)
    while n - start > width:
        pieces.append(word[start : start + width])
        start += width
    pieces.append(word[start:])
    return pieces


def wrap(text, width=DEFAULT_WIDTH, break_long_words=True):
    """Greedy-wrap ``text`` into lines at most ``width`` columns wide."""
    if width <= 0:
        raise ValueError("width must be positive")
    words = split_words(expand_tabs(text))
    if break_long_words:
        flat = []
        for word in words:
            if len(word) > width:
                flat.extend(break_long_word(word, width))
            else:
                flat.append(word)
        words = flat
    lines = []
    current = []
    used = 0
    for word in words:
        extra = len(word) if not current else len(word) + 1
        if used + extra <= width or not current:
            current.append(word)
            used += extra
        else:
            lines.append(" ".join(current))
            current = [word]
            used = len(word)
    if current:
        lines.append(" ".join(current))
    return lines


def fill(text, width=DEFAULT_WIDTH):
    """Wrap and join with newlines."""
    return "\n".join(wrap(text, width))


def dedent(text):
    """Strip the longest common leading whitespace from all lines."""
    lines = text.split("\n")
    margin = None
    for line in lines:
        stripped = line.lstrip(" ")
        if not stripped:
            continue
        indent_len = len(line) - len(stripped)
        if margin is None or indent_len < margin:
            margin = indent_len
    if margin is None or margin == 0:
        return text
    out = []
    for line in lines:
        if line.strip():
            out.append(line[margin:])
        else:
            out.append(line.lstrip(" "))
    return "\n".join(out)


def indent(text, prefix, skip_empty=True):
    """Prepend ``prefix`` to lines (optionally skipping empty ones)."""
    out = []
    for line in text.split("\n"):
        if skip_empty and not line.strip():
            out.append(line)
        else:
            out.append(prefix + line)
    return "\n".join(out)


def shorten(text, width, placeholder=PLACEHOLDER):
    """Collapse whitespace and truncate to ``width`` on a word boundary."""
    words = split_words(text)
    joined = " ".join(words)
    if len(joined) <= width:
        return joined
    budget = width - len(placeholder)
    if budget < 1:
        return placeholder.strip()
    kept = []
    used = 0
    for word in words:
        extra = len(word) if not kept else len(word) + 1
        if used + extra > budget:
            break
        kept.append(word)
        used += extra
    if not kept:
        return placeholder.strip()
    return " ".join(kept) + placeholder


def main(job):
    """Corpus entry point: dispatch one formatting job."""
    op = job["op"]
    if op == "wrap":
        return wrap(job["text"], job["width"])
    if op == "fill":
        return fill(job["text"], job["width"])
    if op == "dedent":
        return dedent(job["text"])
    if op == "indent":
        return indent(job["text"], job["prefix"])
    if op == "shorten":
        return shorten(job["text"], job["width"])
    raise ValueError(f"unknown op {op!r}")
