"""jsonscan: a vendored json.scanner-scale JSON parser.

Subject-corpus material for the factory: a recursive-descent parser
over the token stream produced by :mod:`jsonscan.scanner`.  The
cross-module import is the point -- factory programs must share one
site table across modules.  Executed by the factory loader, never
imported as part of :mod:`repro` itself.
"""

from jsonscan import scanner


class ParseError(ValueError):
    pass


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return ("eof", None)

    def advance(self):
        tok = self.peek()
        self.pos += 1
        return tok

    def expect(self, kind):
        tok = self.advance()
        if tok[0] != kind:
            raise ParseError(f"expected {kind}, got {tok[0]}")
        return tok

    def parse_value(self):
        kind, value = self.peek()
        if kind in ("number", "string", "literal"):
            self.advance()
            return value
        if kind == "lbracket":
            return self.parse_array()
        if kind == "lbrace":
            return self.parse_object()
        raise ParseError(f"unexpected token {kind}")

    def parse_array(self):
        self.expect("lbracket")
        items = []
        if self.peek()[0] == "rbracket":
            self.advance()
            return items
        while True:
            items.append(self.parse_value())
            kind, _ = self.advance()
            if kind == "rbracket":
                return items
            if kind != "comma":
                raise ParseError("expected , or ] in array")

    def parse_object(self):
        self.expect("lbrace")
        obj = {}
        if self.peek()[0] == "rbrace":
            self.advance()
            return obj
        while True:
            key_tok = self.expect("string")
            self.expect("colon")
            obj[key_tok[1]] = self.parse_value()
            kind, _ = self.advance()
            if kind == "rbrace":
                return obj
            if kind != "comma":
                raise ParseError("expected , or } in object")


def parse(text):
    """Parse a JSON document into Python values."""
    tokens = scanner.tokenize(text)
    parser = _Parser(tokens)
    value = parser.parse_value()
    if parser.peek()[0] != "eof":
        raise ParseError("trailing data after document")
    return value


def minify(text):
    """Re-serialise a document with no whitespace (token round-trip)."""
    out = []
    for kind, value in scanner.tokenize(text):
        if kind == "string":
            out.append(scanner.quote_string(value))
        elif kind == "number":
            out.append(scanner.format_number(value))
        elif kind == "literal":
            out.append({None: "null", True: "true", False: "false"}[value])
        else:
            out.append(scanner.PUNCT_TEXT[kind])
    return "".join(out)


def main(job):
    """Corpus entry point: parse or minify one document."""
    op = job["op"]
    if op == "parse":
        return parse(job["text"])
    if op == "minify":
        return minify(job["text"])
    raise ValueError(f"unknown op {op!r}")
