"""jsonscan.scanner: the tokenizer half of the vendored JSON parser."""

WHITESPACE = " \t\n\r"

PUNCT = {
    "{": "lbrace",
    "}": "rbrace",
    "[": "lbracket",
    "]": "rbracket",
    ":": "colon",
    ",": "comma",
}

PUNCT_TEXT = {kind: ch for ch, kind in PUNCT.items()}

ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}

_REVERSE_ESCAPES = {char: "\\" + key for key, char in ESCAPES.items() if key != "/"}


class ScanError(ValueError):
    pass


def scan_string(text, pos):
    """Scan a quoted string starting at ``pos`` (the opening quote)."""
    chars = []
    i = pos + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            return "".join(chars), i + 1
        if ch == "\\":
            if i + 1 >= n:
                raise ScanError("truncated escape")
            esc = text[i + 1]
            if esc == "u":
                if i + 6 > n:
                    raise ScanError("truncated unicode escape")
                code = int(text[i + 2 : i + 6], 16)
                chars.append(chr(code))
                i += 6
                continue
            if esc not in ESCAPES:
                raise ScanError(f"bad escape \\{esc}")
            chars.append(ESCAPES[esc])
            i += 2
            continue
        chars.append(ch)
        i += 1
    raise ScanError("unterminated string")


def scan_number(text, pos):
    """Scan an integer or decimal number starting at ``pos``."""
    i = pos
    n = len(text)
    sign = 1
    if text[i] == "-":
        sign = -1
        i += 1
    if i >= n or not text[i].isdigit():
        raise ScanError("bad number")
    value = 0
    while i < n and text[i].isdigit():
        value = value * 10 + (ord(text[i]) - 48)
        i += 1
    if i < n and text[i] == ".":
        i += 1
        frac = 0
        scale = 1
        if i >= n or not text[i].isdigit():
            raise ScanError("bad fraction")
        while i < n and text[i].isdigit():
            frac = frac * 10 + (ord(text[i]) - 48)
            scale *= 10
            i += 1
        return sign * (value + frac / scale), i
    return sign * value, i


def tokenize(text):
    """Tokenize a JSON document into ``(kind, value)`` pairs."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in WHITESPACE:
            i += 1
            continue
        if ch in PUNCT:
            tokens.append((PUNCT[ch], None))
            i += 1
            continue
        if ch == '"':
            value, i = scan_string(text, i)
            tokens.append(("string", value))
            continue
        if ch == "-" or ch.isdigit():
            value, i = scan_number(text, i)
            tokens.append(("number", value))
            continue
        if text.startswith("true", i):
            tokens.append(("literal", True))
            i += 4
            continue
        if text.startswith("false", i):
            tokens.append(("literal", False))
            i += 5
            continue
        if text.startswith("null", i):
            tokens.append(("literal", None))
            i += 4
            continue
        raise ScanError(f"unexpected character {ch!r} at {i}")
    return tokens


def quote_string(value):
    """Serialise a string with minimal escaping."""
    out = ['"']
    for ch in value:
        if ch in _REVERSE_ESCAPES:
            out.append(_REVERSE_ESCAPES[ch])
        elif ord(ch) < 32:
            out.append("\\u%04x" % ord(ch))
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)


def format_number(value):
    """Serialise a number the way :func:`tokenize` produced it."""
    if isinstance(value, int):
        return str(value)
    return repr(value)
