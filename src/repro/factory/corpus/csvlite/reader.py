"""csvlite.reader: the quote-aware parsing state machine."""

START = 0
IN_FIELD = 1
IN_QUOTED = 2
QUOTE_IN_QUOTED = 3


class CsvError(ValueError):
    pass


def read_rows(text, delimiter=",", quotechar='"'):
    """Parse delimited text into rows of string cells.

    Quoted cells may contain the delimiter, newlines, and doubled
    quote characters; a quote inside an unquoted cell is literal.
    """
    rows = []
    row = []
    cell = []
    state = START
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if state == START:
            if ch == quotechar:
                state = IN_QUOTED
            elif ch == delimiter:
                row.append("")
            elif ch == "\n":
                row.append("")
                rows.append(row)
                row = []
            else:
                cell.append(ch)
                state = IN_FIELD
        elif state == IN_FIELD:
            if ch == delimiter:
                row.append("".join(cell))
                cell = []
                state = START
            elif ch == "\n":
                row.append("".join(cell))
                cell = []
                rows.append(row)
                row = []
                state = START
            else:
                cell.append(ch)
        elif state == IN_QUOTED:
            if ch == quotechar:
                state = QUOTE_IN_QUOTED
            else:
                cell.append(ch)
        else:  # QUOTE_IN_QUOTED
            if ch == quotechar:
                cell.append(quotechar)
                state = IN_QUOTED
            elif ch == delimiter:
                row.append("".join(cell))
                cell = []
                state = START
            elif ch == "\n":
                row.append("".join(cell))
                cell = []
                rows.append(row)
                row = []
                state = START
            else:
                raise CsvError(f"unexpected {ch!r} after closing quote")
        i += 1
    if state == IN_QUOTED:
        raise CsvError("unterminated quoted cell")
    if state in (IN_FIELD, QUOTE_IN_QUOTED):
        row.append("".join(cell))
    elif state == START and row:
        row.append("")
    if row:
        rows.append(row)
    return rows


def sniff_delimiter(text, candidates=",;\t|"):
    """Guess the delimiter: the candidate splitting rows most evenly."""
    best = candidates[0]
    best_score = -1.0
    for cand in candidates:
        counts = [line.count(cand) for line in text.split("\n") if line]
        if not counts or min(counts) == 0:
            continue
        spread = max(counts) - min(counts)
        score = min(counts) - spread * 0.5
        if score > best_score:
            best_score = score
            best = cand
    return best
