"""csvlite: a vendored csv-scale delimited-text library.

Subject-corpus material for the factory: a quote-aware reader state
machine (:mod:`csvlite.reader`), a minimal-quoting writer
(:mod:`csvlite.writer`), and round-trip entry points here.  Executed by
the factory loader, never imported as part of :mod:`repro` itself.
"""

from csvlite import reader, writer


def parse(text, delimiter=",", quotechar='"'):
    """Parse delimited text into a list of rows."""
    return reader.read_rows(text, delimiter, quotechar)


def render(rows, delimiter=",", quotechar='"'):
    """Render rows back into delimited text."""
    return writer.write_rows(rows, delimiter, quotechar)


def roundtrip(rows, delimiter=",", quotechar='"'):
    """Render then re-parse (the classic writer/reader contract)."""
    return parse(render(rows, delimiter, quotechar), delimiter, quotechar)


def column_widths(rows):
    """Maximum cell width per column across ``rows``."""
    widths = []
    for row in rows:
        for idx, cell in enumerate(row):
            if idx >= len(widths):
                widths.append(0)
            if len(cell) > widths[idx]:
                widths[idx] = len(cell)
    return widths


def main(job):
    """Corpus entry point: dispatch one csv job."""
    op = job["op"]
    if op == "parse":
        return parse(job["text"], job["delimiter"])
    if op == "render":
        return render(job["rows"], job["delimiter"])
    if op == "roundtrip":
        return roundtrip(job["rows"], job["delimiter"])
    if op == "widths":
        return column_widths(job["rows"])
    raise ValueError(f"unknown op {op!r}")
