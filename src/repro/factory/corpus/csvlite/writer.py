"""csvlite.writer: minimal-quoting serialisation."""


def needs_quoting(cell, delimiter, quotechar):
    """A cell needs quotes when it contains structure characters."""
    if cell == "":
        return False
    for ch in cell:
        if ch == delimiter or ch == quotechar or ch == "\n" or ch == "\r":
            return True
    if cell[0] == " " or cell[-1] == " ":
        return True
    return False


def quote_cell(cell, quotechar):
    """Wrap in quotes, doubling embedded quote characters."""
    out = [quotechar]
    for ch in cell:
        if ch == quotechar:
            out.append(quotechar)
            out.append(quotechar)
        else:
            out.append(ch)
    out.append(quotechar)
    return "".join(out)


def write_cell(cell, delimiter, quotechar):
    if needs_quoting(cell, delimiter, quotechar):
        return quote_cell(cell, quotechar)
    return cell


def write_rows(rows, delimiter=",", quotechar='"'):
    """Render rows as delimited text (trailing newline included)."""
    lines = []
    for row in rows:
        rendered = [write_cell(cell, delimiter, quotechar) for cell in row]
        lines.append(delimiter.join(rendered))
    return "\n".join(lines) + ("\n" if lines else "")
