"""Whole-package instrumentation behind an import hook.

The hand-built subjects are single source files executed into one
namespace.  Real packages are many modules importing each other; this
loader generalises :func:`repro.instrument.tracer.instrument_source` to
that shape while keeping every downstream contract intact:

* **One shared table.**  Every module is transformed up front, in a
  deterministic module order, into a single
  :class:`~repro.core.predicates.PredicateTable`; site indices therefore
  never depend on runtime import laziness, and two builds of the same
  package produce bit-identical tables (and hence shard SHAs).
* **Qualified site names.**  Each module's sites carry a
  ``"<module>:"`` function prefix so same-named functions in different
  modules stay distinct, and ground-truth extraction
  (:func:`repro.core.truth.bug_sites_from_source` with the same prefix)
  aligns exactly.
* **A temporary meta-path finder** serves the precompiled instrumented
  code objects during package execution, injecting the shared runtime
  (``_cbi``) and the ``record_bug`` side channel into every module's
  globals.  ``sys.modules`` entries the package would shadow are saved
  and restored, and the finder is removed before the call returns --
  nothing leaks into the host interpreter.

The result duck-types :class:`~repro.instrument.tracer.InstrumentedProgram`
(it *is* one, plus the module map), so the runner, the store, the serve
daemon, and the analysis engine all work unchanged.
"""

from __future__ import annotations

import importlib
import importlib.abc
import importlib.machinery
import importlib.util
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.predicates import PredicateTable
from repro.instrument.runtime import Runtime
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import InstrumentedProgram
from repro.instrument.transform import InstrumentationConfig, Instrumenter
from repro.subjects.base import record_bug


def program_filename(package: str) -> str:
    """The pseudo-filename prefix tagging a factory program's frames."""
    return f"<factory:{package}>"


def module_filename(package: str, module: str) -> str:
    """The pseudo-filename one module compiles under (shares the prefix)."""
    return f"<factory:{package}:{module}>"


def function_prefix(module: str) -> str:
    """The site-function prefix qualifying one module's sites."""
    return f"{module}:"


@dataclass
class PackageProgram(InstrumentedProgram):
    """An instrumented multi-module package.

    ``namespace`` is the root module's globals, so ``func(name)`` finds
    the package's entry points exactly as for single-module programs.
    ``modules`` maps every instrumented module name to its executed
    module object.
    """

    modules: Dict[str, object] = field(default_factory=dict)


class _FactoryLoader(importlib.abc.Loader):
    """Serves one precompiled instrumented module."""

    def __init__(self, code, inject: Dict[str, object]) -> None:
        self._code = code
        self._inject = inject

    def create_module(self, spec):  # noqa: D102 - default semantics
        return None

    def exec_module(self, module) -> None:  # noqa: D102
        module.__dict__.update(self._inject)
        exec(self._code, module.__dict__)  # noqa: S102 - running the subject


class _FactoryFinder(importlib.abc.MetaPathFinder):
    """Resolves the package's module names to the instrumented loaders."""

    def __init__(self, loaders: Dict[str, _FactoryLoader], packages) -> None:
        self._loaders = loaders
        self._packages = packages

    def find_spec(self, fullname, path=None, target=None):  # noqa: D102
        loader = self._loaders.get(fullname)
        if loader is None:
            return None
        return importlib.util.spec_from_loader(
            fullname, loader, is_package=fullname in self._packages
        )


def package_modules(package: str) -> Dict[str, str]:
    """Collect ``{module name: source text}`` for an importable package.

    Walks an installed package's pure-python modules (the package root
    first, submodules in sorted name order -- a deterministic
    instrumentation order).  A plain module maps to itself.  Modules
    without python source (extension modules) are skipped.
    """
    spec = importlib.util.find_spec(package)
    if spec is None:
        raise ModuleNotFoundError(f"no importable package {package!r}")
    sources: Dict[str, str] = {}

    def read(origin: str) -> str:
        with open(origin, encoding="utf-8") as fh:
            return fh.read()

    if spec.origin is not None and spec.origin.endswith(".py"):
        sources[package] = read(spec.origin)
    if spec.submodule_search_locations:
        import pkgutil

        names = sorted(
            info.name
            for info in pkgutil.iter_modules(spec.submodule_search_locations)
        )
        for short in names:
            sub = importlib.util.find_spec(f"{package}.{short}")
            if sub is not None and sub.origin and sub.origin.endswith(".py"):
                sources[f"{package}.{short}"] = read(sub.origin)
    if not sources:
        raise ValueError(f"package {package!r} has no pure-python modules")
    return sources


def _exec_under_finder(
    package: str,
    loaders: Dict[str, _FactoryLoader],
    packages,
) -> Dict[str, object]:
    """Import every instrumented module behind a temporary finder."""
    shadowed = {
        name: sys.modules.pop(name) for name in list(loaders) if name in sys.modules
    }
    finder = _FactoryFinder(loaders, packages)
    sys.meta_path.insert(0, finder)
    try:
        modules: Dict[str, object] = {}
        # Root first (its own imports pull submodules in code order),
        # then every remaining module explicitly: all module bodies have
        # executed by the time the program is handed out, so lazily
        # imported modules cannot skew later runs.
        for name in [package] + [n for n in loaders if n != package]:
            modules[name] = importlib.import_module(name)
        return modules
    finally:
        sys.meta_path.remove(finder)
        for name in loaders:
            sys.modules.pop(name, None)
        sys.modules.update(shadowed)


def instrument_package(
    package: str,
    modules: Optional[Dict[str, str]] = None,
    config: Optional[InstrumentationConfig] = None,
    table: Optional[PredicateTable] = None,
) -> PackageProgram:
    """Instrument a whole package into one :class:`PackageProgram`.

    Args:
        package: Root module name; also the subject's frame-filename tag.
        modules: ``{module name: source}`` in instrumentation order.
            Defaults to :func:`package_modules` on the installed package.
            Callers injecting mutated sources pass this explicitly.
        config: Instrumentation configuration shared by every module.
        table: Optional existing predicate table to extend.

    Returns:
        A :class:`PackageProgram` whose namespace is the root module's
        globals and whose table spans every module.
    """
    if modules is None:
        modules = package_modules(package)
    if package not in modules:
        raise ValueError(f"module map must contain the root module {package!r}")
    config = config if config is not None else InstrumentationConfig()

    table = table if table is not None else PredicateTable()
    codes: Dict[str, object] = {}
    texts: Dict[str, str] = {}
    for name, source in modules.items():
        inst = Instrumenter(
            table=table, config=config, function_prefix=function_prefix(name)
        )
        filename = module_filename(package, name)
        tree = inst.instrument(source, filename=filename)
        codes[name] = compile(tree, filename, "exec")
        try:
            import ast as _ast

            texts[name] = _ast.unparse(tree)
        except Exception:  # pragma: no cover - unparse failure fallback
            texts[name] = source

    runtime = Runtime(table)
    runtime.refresh()
    # Arm a throwaway full-sampling run so module-level instrumented code
    # can execute during import (mirrors instrument_source).
    runtime.begin_run(SamplingPlan.full(), seed=0)

    packages = {
        name
        for name in codes
        if any(other.startswith(name + ".") for other in codes)
    }
    inject = {config.runtime_name: runtime, "record_bug": record_bug}
    loaders = {name: _FactoryLoader(codes[name], inject) for name in codes}
    module_objs = _exec_under_finder(package, loaders, packages)
    runtime.end_run()

    source_text = "\n".join(
        f"# === {name} ===\n{texts[name]}" for name in modules
    )
    return PackageProgram(
        namespace=module_objs[package].__dict__,
        runtime=runtime,
        table=table,
        filename=program_filename(package),
        source=source_text,
        modules=module_objs,
    )


#: Per-process cache of pristine (uninstrumented) package namespaces,
#: keyed by ``(package, source digest)`` -- reference executions for
#: differential oracles.
_PRISTINE_CACHE: Dict[object, Dict[str, object]] = {}


def pristine_namespace(
    package: str, modules: Optional[Dict[str, str]] = None
) -> Dict[str, object]:
    """Execute a package *without* instrumentation; return root globals.

    Used by factory subjects as the reference implementation for their
    differential oracle.  Cached per process: reference behaviour is
    deterministic, so one execution serves every trial.
    """
    if modules is None:
        modules = package_modules(package)
    key = (package, tuple(sorted(modules.items())))
    cached = _PRISTINE_CACHE.get(key)
    if cached is not None:
        return cached
    codes = {
        name: compile(source, module_filename(package, name) + " (pristine)", "exec")
        for name, source in modules.items()
    }
    packages = {
        name
        for name in codes
        if any(other.startswith(name + ".") for other in codes)
    }
    loaders = {
        name: _FactoryLoader(codes[name], {"record_bug": record_bug})
        for name in codes
    }
    module_objs = _exec_under_finder(package, loaders, packages)
    namespace = module_objs[package].__dict__
    _PRISTINE_CACHE[key] = namespace
    return namespace
