"""Deterministic mutation engine for manufactured bugs.

Four classic bug classes, each a small AST rewrite:

* ``operator-swap``: one arithmetic operator replaced by its dual
  (``+`` <-> ``-``, ``*`` -> ``+``, ``//``/``/``/``%`` -> their
  neighbours) -- the classic AOR mutation operator.
* ``off-by-one``: one integer literal incremented by one.
* ``negated-condition``: one ``if``/``while`` test wrapped in ``not``.
* ``boundary-relaxation``: one strict comparison made non-strict or
  vice versa (``<`` <-> ``<=``, ``>`` <-> ``>=``).

Candidates are enumerated in deterministic AST walk order (source
order), restricted to code inside functions so ground-truth grading at
function granularity attributes the bug correctly.  A
:class:`MutationSpec` therefore pins one bug exactly: (module, class,
occurrence index) -- no randomness anywhere.

Every applied mutation is stamped with a ``record_bug("<bug-id>")``
statement immediately before the mutated construct's enclosing
statement.  The call fires whenever control reaches the mutated code --
"the exact set of bugs that actually occurred in each run" -- and the
instrumenter's call-exclusion list keeps it invisible to the isolation
algorithm, so :mod:`repro.core.truth` grades factory subjects without
modification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Mutation classes in canonical (bakeoff reporting) order.
MUTATION_CLASSES: Tuple[str, ...] = (
    "operator-swap",
    "off-by-one",
    "negated-condition",
    "boundary-relaxation",
)

_SWAP_OPS: Dict[type, type] = {
    ast.Add: ast.Sub,
    ast.Sub: ast.Add,
    ast.Mult: ast.Add,
    ast.Div: ast.Mult,
    ast.FloorDiv: ast.Mult,
    ast.Mod: ast.FloorDiv,
}

_BOUNDARY_OPS: Dict[type, type] = {
    ast.Lt: ast.LtE,
    ast.LtE: ast.Lt,
    ast.Gt: ast.GtE,
    ast.GtE: ast.Gt,
}


@dataclass(frozen=True)
class MutationSpec:
    """One deterministic mutation: *which* bug, *where*, *what kind*.

    Attributes:
        bug_id: Ground-truth identifier stamped into the source.
        module: Dotted name of the module whose source is mutated.
        operator: One of :data:`MUTATION_CLASSES`.
        occurrence: 0-based index into the module's candidate list for
            that operator, in source order.
    """

    bug_id: str
    module: str
    operator: str
    occurrence: int


def _matches(node: ast.AST, operator: str) -> bool:
    if operator == "operator-swap":
        return isinstance(node, ast.BinOp) and type(node.op) in _SWAP_OPS
    if operator == "off-by-one":
        return isinstance(node, ast.Constant) and type(node.value) is int
    if operator == "negated-condition":
        return isinstance(node, (ast.If, ast.While))
    if operator == "boundary-relaxation":
        return (
            isinstance(node, ast.Compare)
            and len(node.ops) == 1
            and type(node.ops[0]) in _BOUNDARY_OPS
        )
    raise ValueError(f"unknown mutation operator {operator!r}")


def _candidates(tree: ast.Module, operator: str) -> List[ast.AST]:
    """All mutation points for ``operator``, in source order.

    Only code lying in a *function body* qualifies: default argument
    values, decorators, class-body statements and lambda bodies are
    excluded, so the ``record_bug`` stamp always lands in the same
    function whose sites ground-truth grading will mark as faulty.
    """
    if operator not in MUTATION_CLASSES:
        raise ValueError(f"unknown mutation operator {operator!r}")
    found: List[ast.AST] = []

    def visit(node: ast.AST, inside: bool) -> None:
        if inside and _matches(node, operator):
            found.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorators and defaults evaluate in the enclosing scope;
            # only the body belongs to the new function.
            for dec in node.decorator_list:
                visit(dec, inside)
            visit(node.args, inside)
            for stmt in node.body:
                visit(stmt, True)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                visit(stmt, False)
        elif isinstance(node, ast.Lambda):
            pass  # no statement anchor for the stamp; never mutate
        else:
            for child in ast.iter_child_nodes(node):
                visit(child, inside)

    visit(tree, False)
    return found


def count_candidates(source: str, operator: str) -> int:
    """Number of mutation points for ``operator`` in ``source``."""
    return len(_candidates(ast.parse(source), operator))


def _mutate_node(node: ast.AST, operator: str) -> None:
    if operator == "operator-swap":
        node.op = _SWAP_OPS[type(node.op)]()
    elif operator == "off-by-one":
        node.value = node.value + 1
    elif operator == "negated-condition":
        node.test = ast.copy_location(
            ast.UnaryOp(op=ast.Not(), operand=node.test), node.test
        )
    elif operator == "boundary-relaxation":
        node.ops = [_BOUNDARY_OPS[type(node.ops[0])]()]


def _stamp(tree: ast.Module, target: ast.AST, bug_id: str) -> None:
    """Insert ``record_bug(bug_id)`` before ``target``'s enclosing stmt."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    stmt: Optional[ast.AST] = target
    while stmt is not None and not isinstance(stmt, ast.stmt):
        stmt = parents.get(stmt)
    if stmt is None:  # pragma: no cover - candidates always sit in stmts
        raise ValueError("mutated node has no enclosing statement")

    holder = parents[stmt]
    stamp = ast.Expr(
        value=ast.Call(
            func=ast.Name(id="record_bug", ctx=ast.Load()),
            args=[ast.Constant(value=bug_id)],
            keywords=[],
        )
    )
    ast.copy_location(stamp, stmt)
    for fname, value in ast.iter_fields(holder):
        if isinstance(value, list) and stmt in value:
            value.insert(value.index(stmt), stamp)
            return
    raise ValueError("enclosing statement not found in any body")  # pragma: no cover


def apply_mutation(source: str, spec: MutationSpec) -> str:
    """Apply one mutation to ``source``; return the mutated source text.

    Deterministic: the same (source, spec) pair always yields the same
    text.  Raises ``IndexError`` when the occurrence index exceeds the
    candidate count (specs are validated against their module).
    """
    tree = ast.parse(source)
    cands = _candidates(tree, spec.operator)
    if spec.occurrence >= len(cands):
        raise IndexError(
            f"{spec.operator} has {len(cands)} candidates in {spec.module}; "
            f"occurrence {spec.occurrence} out of range"
        )
    node = cands[spec.occurrence]
    _mutate_node(node, spec.operator)
    _stamp(tree, node, spec.bug_id)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)
