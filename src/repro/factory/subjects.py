"""Factory-made subjects: any package + oracle as a first-class Subject.

:class:`FactorySubject` wraps a module map (read from an installed
package or the vendored corpus), an optional deterministic mutation, an
input generator, and a pass/fail oracle into the same
:class:`~repro.subjects.base.Subject` protocol the hand-built analogues
implement -- so every collection path (serial, parallel, sharded,
daemon, steered) and every analysis path (scoring, bakeoff, bench)
works on manufactured subjects unchanged.

The default oracle is *differential*: a non-crashing output is correct
iff it equals the output of the pristine (unmutated, uninstrumented)
package on the same input.  That is exactly the paper's MOSS setup ("we
also ran a correct version ... and compared the output of the two
versions"), generalised to arbitrary packages.

``trial_budget`` is auto-derived: a short fully-sampled probe measures
the observed failure rate and the budget is sized to an expected
:data:`TARGET_FAILURES` failing runs, clamped to sane bounds.  The
probe is seeded and cached per process, so the advertised budget -- and
therefore ``--runs`` defaults and shard layouts derived from it -- is
deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.factory import corpus
from repro.factory.loader import (
    instrument_package,
    package_modules,
    pristine_namespace,
)
from repro.factory.mutate import MutationSpec, apply_mutation
from repro.subjects.base import Subject

#: Budget derivation: probe length and the failing-run count the derived
#: budget aims for at full sampling.
PROBE_TRIALS = 64
TARGET_FAILURES = 60
MIN_BUDGET = 400
MAX_BUDGET = 20_000

#: Disjoint seed range for budget probes (clear of experiment seeds and
#: the training range used by ``collect_site_means``).
PROBE_SEED_BASE = 77_000_000

#: Per-process cache of derived budgets, keyed by subject name.  The
#: probe is deterministic, so caching only saves time, never changes the
#: answer.
_BUDGET_CACHE: Dict[str, int] = {}


class FactorySubject(Subject):
    """A subject manufactured from a package + oracle (+ mutation)."""

    kind = "factory"
    entry = "main"

    def __init__(
        self,
        name: str,
        package: str,
        modules: Dict[str, str],
        generator: Callable[[random.Random], object],
        mutation: Optional[MutationSpec] = None,
        oracle: Optional[Callable[[object, object], bool]] = None,
        trial_budget: Optional[int] = None,
    ) -> None:
        self.name = name
        self.package = package
        self._base_modules = dict(modules)
        self._generator = generator
        self.mutation = mutation
        self.bug_ids = (mutation.bug_id,) if mutation is not None else ()
        self._custom_oracle = oracle
        self._fixed_budget = trial_budget
        self._mutated_modules: Optional[Dict[str, str]] = None
        if mutation is not None and mutation.module not in self._base_modules:
            raise ValueError(
                f"mutation targets {mutation.module!r}, not a module of "
                f"{package!r} ({sorted(self._base_modules)})"
            )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_installed(
        cls,
        package: str,
        generator: Callable[[random.Random], object],
        mutation: Optional[MutationSpec] = None,
        oracle: Optional[Callable[[object, object], bool]] = None,
        name: Optional[str] = None,
    ) -> "FactorySubject":
        """Manufacture a subject from any importable package.

        ``generator`` produces one entry-point input per call from a
        seeded RNG; ``oracle`` defaults to the differential comparison
        against the pristine package.
        """
        return cls(
            name=name or (mutation.bug_id if mutation else package),
            package=package,
            modules=package_modules(package),
            generator=generator,
            mutation=mutation,
            oracle=oracle,
        )

    @classmethod
    def from_corpus_bug(cls, bug: "corpus.CorpusBug") -> "FactorySubject":
        """Manufacture one seeded corpus subject."""
        return cls(
            name=bug.name,
            package=bug.package,
            modules=corpus.corpus_sources(bug.package),
            generator=corpus.GENERATORS[bug.package],
            mutation=bug.spec,
        )

    # -- subject protocol -----------------------------------------------

    @property
    def mutation_class(self) -> Optional[str]:
        """The injected bug's mutation class (``None`` if unmutated)."""
        return self.mutation.operator if self.mutation is not None else None

    def modules(self) -> Dict[str, str]:
        """Module map with the mutation applied (cached)."""
        if self._mutated_modules is None:
            mods = dict(self._base_modules)
            if self.mutation is not None:
                mods[self.mutation.module] = apply_mutation(
                    mods[self.mutation.module], self.mutation
                )
            self._mutated_modules = mods
        return self._mutated_modules

    def source(self) -> str:
        """The (mutated) source text; concatenated for multi-module."""
        mods = self.modules()
        if len(mods) == 1:
            return next(iter(mods.values()))
        return "\n".join(f"# === {name} ===\n{src}" for name, src in mods.items())

    def build_program(self, config=None, table=None):
        """Instrument the whole (mutated) package behind the import hook."""
        return instrument_package(
            self.package, modules=self.modules(), config=config, table=table
        )

    def bug_sites(self):
        """Ground-truth sites across all modules, module-qualified."""
        from repro.core.truth import bug_sites_from_source
        from repro.factory.loader import function_prefix

        sites = []
        for name, src in self.modules().items():
            sites.extend(
                bug_sites_from_source(src, function_prefix=function_prefix(name))
            )
        return sites

    def generate_input(self, rng: random.Random):
        return self._generator(rng)

    def oracle(self, program_input, output) -> bool:
        if self._custom_oracle is not None:
            return self._custom_oracle(program_input, output)
        try:
            expected = self._pristine_entry()(program_input)
        except Exception:
            # The reference implementation must not crash on generated
            # inputs; if it somehow does, grade the run as failing so
            # the anomaly is visible rather than silently passing.
            return False
        return output == expected

    def _pristine_entry(self):
        namespace = pristine_namespace(self.package, self._base_modules)
        return namespace[self.entry]

    # -- auto-derived trial budget --------------------------------------

    @property
    def trial_budget(self) -> int:  # type: ignore[override]
        if self._fixed_budget is not None:
            return self._fixed_budget
        cached = _BUDGET_CACHE.get(self.name)
        if cached is None:
            cached = self.derive_trial_budget()
            _BUDGET_CACHE[self.name] = cached
        return cached

    def derive_trial_budget(
        self,
        probe_trials: int = PROBE_TRIALS,
        target_failures: int = TARGET_FAILURES,
    ) -> int:
        """Size the budget from the observed failure rate at full sampling.

        Runs a short, fully-observed, seeded probe; the Laplace-smoothed
        failure rate ``(fails+1)/(n+2)`` then sizes the budget so an
        experiment expects ~``target_failures`` failing runs, clamped to
        ``[MIN_BUDGET, MAX_BUDGET]``.  Deterministic by construction.
        """
        from repro.harness.runner import run_one_trial
        from repro.instrument.sampling import SamplingPlan

        program = self.build_program()
        entry = program.func(self.entry)
        plan = SamplingPlan.full()
        fails = 0
        for i in range(probe_trials):
            failed, _obs, _true, _stack, _bugs = run_one_trial(
                self, program, entry, plan, PROBE_SEED_BASE + i
            )
            fails += int(failed)
        rate = (fails + 1) / (probe_trials + 2)
        return max(MIN_BUDGET, min(MAX_BUDGET, int(target_failures / rate)))


def corpus_subjects() -> Dict[str, Callable[[], FactorySubject]]:
    """Zero-arg constructors for every seeded corpus bug, by name.

    The mapping merges into ``repro.cli.SUBJECTS``; entries are
    callables (like the builtin subject classes) so ``SUBJECTS[name]()``
    works uniformly.
    """
    out: Dict[str, Callable[[], FactorySubject]] = {}
    for bug in corpus.CORPUS_BUGS:
        out[bug.name] = _CorpusEntry(bug)
    return out


class _CorpusEntry:
    """Picklable zero-arg constructor for one corpus subject."""

    def __init__(self, bug: "corpus.CorpusBug") -> None:
        self.bug = bug
        self.__name__ = bug.name

    def __call__(self) -> FactorySubject:
        return FactorySubject.from_corpus_bug(self.bug)
