"""Comparison techniques the paper evaluates against.

* :mod:`repro.baselines.logistic` -- the L1-regularised logistic
  regression of the authors' earlier work, whose MOSS top-10 (Table 9)
  consists entirely of sub-bug and super-bug predictors;
* :mod:`repro.baselines.stacktrace` -- current industrial practice:
  bucketing failures by crash stack signature (Section 6's analysis of
  when stacks do and do not isolate a cause).
"""

from repro.baselines.logistic import LogisticResult, l1_logistic_regression
from repro.baselines.stacktrace import StackStudy, stack_study

__all__ = [
    "l1_logistic_regression",
    "LogisticResult",
    "stack_study",
    "StackStudy",
]
