"""L1-regularised logistic regression baseline (Section 4.4, Table 9).

The authors' earlier work [10, 16] ranked predicates with regularised
logistic regression: learn weights ``w`` minimising

    sum_i log(1 + exp(-y_i * (w . x_i + b)))  +  lambda * ||w||_1

over the feedback reports (``x_i`` = the run's ``R(P)`` bit vector,
``y_i`` = +1 for failure) and rank predicates by coefficient.  The paper
shows why this fails with multiple bugs: the penalty pushes the model
toward *super-bug* predictors (covering many failures badly) and
*sub-bug* predictors (covering few failures perfectly), rather than one
predictor per bug.

The solver is plain ISTA (proximal gradient descent with soft
thresholding) with an optional FISTA momentum term -- adequate for the
problem sizes here and dependency-free beyond NumPy/SciPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from repro.core.predicates import Predicate
from repro.core.reports import ReportSet


@dataclass
class LogisticResult:
    """Fitted baseline model.

    Attributes:
        weights: Per-predicate coefficients.
        intercept: The bias term.
        iterations: Proximal-gradient iterations performed.
        converged: Whether the stopping tolerance was met.
    """

    weights: np.ndarray
    intercept: float
    iterations: int
    converged: bool

    def top_predicates(
        self, reports: ReportSet, k: int = 10
    ) -> List[Tuple[Predicate, float]]:
        """The ``k`` predicates with the largest positive coefficients.

        This is Table 9's ranking: coefficient magnitude as
        failure-prediction strength.
        """
        order = np.argsort(-self.weights)
        out: List[Tuple[Predicate, float]] = []
        for idx in order[:k]:
            if self.weights[idx] <= 0:
                break
            out.append((reports.table.predicates[int(idx)], float(self.weights[idx])))
        return out


def _soft_threshold(values: np.ndarray, amount: float) -> np.ndarray:
    return np.sign(values) * np.maximum(np.abs(values) - amount, 0.0)


def l1_logistic_regression(
    reports: ReportSet,
    lam: float = 0.1,
    max_iter: int = 500,
    tol: float = 1e-5,
    candidates: Optional[np.ndarray] = None,
    use_momentum: bool = True,
) -> LogisticResult:
    """Fit the L1 logistic baseline on a report population.

    Args:
        reports: Feedback reports; the design matrix is the boolean
            ``R(P)`` matrix.
        lam: L1 penalty weight (per-sample normalised).
        max_iter: Iteration cap.
        tol: Stop when the max weight change falls below this.
        candidates: Optional boolean predicate mask; excluded columns are
            pinned to weight 0.
        use_momentum: Use FISTA acceleration.

    Returns:
        A :class:`LogisticResult`.
    """
    X = reports.true_counts.astype(bool).astype(np.float64).tocsr()
    n_runs, n_preds = X.shape
    y = np.where(reports.failed, 1.0, -1.0)

    if candidates is not None:
        mask = np.asarray(candidates, dtype=bool)
    else:
        mask = np.ones(n_preds, dtype=bool)

    w = np.zeros(n_preds)
    b = 0.0
    w_prev = w.copy()
    t_prev = 1.0
    z = w.copy()
    bz = b

    # Lipschitz bound for the logistic loss gradient: ||X||^2 / (4 n).
    col_norms = np.asarray(X.multiply(X).sum(axis=0)).ravel()
    lipschitz = max(col_norms.sum() / (4.0 * max(n_runs, 1)), 1e-9)
    step = 1.0 / lipschitz

    XT = X.T.tocsr()
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        margin = y * (X @ z + bz)
        sig = 1.0 / (1.0 + np.exp(np.clip(margin, -35.0, 35.0)))
        residual = -(y * sig) / max(n_runs, 1)
        grad_w = XT @ residual
        grad_b = residual.sum()

        w_new = _soft_threshold(z - step * grad_w, step * lam)
        w_new[~mask] = 0.0
        b_new = bz - step * grad_b

        if use_momentum:
            t_new = (1.0 + np.sqrt(1.0 + 4.0 * t_prev * t_prev)) / 2.0
            z = w_new + ((t_prev - 1.0) / t_new) * (w_new - w)
            bz = b_new + ((t_prev - 1.0) / t_new) * (b_new - b)
            t_prev = t_new
        else:
            z = w_new
            bz = b_new

        delta = np.max(np.abs(w_new - w)) if n_preds else 0.0
        w, b = w_new, b_new
        if delta < tol:
            converged = True
            break

    return LogisticResult(weights=w, intercept=float(b), iterations=it, converged=converged)
