"""Stack-trace bucketing: current industrial practice (Section 6).

"Two crash reports showing the same stack trace, or perhaps only the same
top-of-stack function, are presumed to be two reports of the same
failure."  The paper measures how often that heuristic actually isolates
a cause: a bug's stack signature is useful when it is *unique* -- present
if and only if that bug was triggered.  Across the paper's experiments
roughly half the bugs had useful stacks.

This module reproduces that study over a report population with ground
truth: for each bug, compute how concentrated its failures' signatures
are and whether any signature is unique to it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.reports import ReportSet
from repro.core.truth import GroundTruth


def signature_of(stack: Optional[Tuple[str, ...]], top_only: bool = False) -> Optional[Tuple[str, ...]]:
    """Normalise a crash stack into a bucketing signature.

    ``top_only`` keeps just the innermost program frame (the
    "same top-of-stack function" variant).
    """
    if stack is None or len(stack) == 0:
        return None
    if top_only:
        # Last entry is the exception type; the frame before it is the
        # innermost program function.
        frames = stack[:-1]
        top = frames[-1] if frames else stack[-1]
        return (top,)
    return tuple(stack)


@dataclass
class BugStackStats:
    """Stack statistics for one bug.

    Attributes:
        bug_id: The bug.
        failing_runs: Failures in which the bug occurred.
        signatures: Signature -> count over those failures.
        unique_signatures: Signatures that appear *only* in this bug's
            failures (and in every one of the paper's senses identify it).
        has_unique_signature: Whether some signature is present iff this
            bug was triggered -- the paper's criterion for a "truly
            unique signature stack".
        dominant_share: Fraction of the bug's failures carrying its most
            common signature (1.0 = perfectly consistent crashes).
    """

    bug_id: str
    failing_runs: int
    signatures: Dict[Tuple[str, ...], int]
    unique_signatures: List[Tuple[str, ...]]
    has_unique_signature: bool
    dominant_share: float


@dataclass
class StackStudy:
    """The full Section 6 stack study for one experiment."""

    per_bug: Dict[str, BugStackStats]
    n_signatures: int

    @property
    def useful_fraction(self) -> float:
        """Fraction of triggered bugs with a unique signature.

        The paper reports "in about half the cases the stack is useful".
        """
        bugs = [b for b in self.per_bug.values() if b.failing_runs > 0]
        if not bugs:
            return 0.0
        return sum(1 for b in bugs if b.has_unique_signature) / len(bugs)


def stack_study(
    reports: ReportSet, truth: GroundTruth, top_only: bool = False
) -> StackStudy:
    """Run the stack-signature uniqueness analysis.

    Args:
        reports: The run population (failing runs carry crash stacks).
        truth: Ground-truth bug occurrences.
        top_only: Bucket by top-of-stack function instead of full stack.

    Returns:
        A :class:`StackStudy`.
    """
    sig_bugs: Dict[Tuple[str, ...], set] = defaultdict(set)
    per_bug_sigs: Dict[str, Counter] = {b: Counter() for b in truth.bug_ids}
    per_bug_fail: Dict[str, int] = {b: 0 for b in truth.bug_ids}

    for i in range(reports.n_runs):
        if not reports.failed[i]:
            continue
        sig = signature_of(reports.stacks[i], top_only=top_only)
        bugs = truth.occurrences[i]
        for bug in bugs:
            per_bug_fail[bug] += 1
            if sig is not None:
                per_bug_sigs[bug][sig] += 1
        if sig is not None:
            if bugs:
                sig_bugs[sig].update(bugs)
            else:
                sig_bugs[sig].add("<unattributed>")

    per_bug: Dict[str, BugStackStats] = {}
    for bug in truth.bug_ids:
        sigs = per_bug_sigs[bug]
        unique = [s for s in sigs if sig_bugs[s] == {bug}]
        total = sum(sigs.values())
        dominant = max(sigs.values()) / total if total else 0.0
        # "Unique signature stack: a crash location present if and only
        # if the corresponding bug was actually triggered."
        has_unique = bool(unique)
        per_bug[bug] = BugStackStats(
            bug_id=bug,
            failing_runs=per_bug_fail[bug],
            signatures=dict(sigs),
            unique_signatures=unique,
            has_unique_signature=has_unique,
            dominant_share=dominant,
        )
    return StackStudy(per_bug=per_bug, n_signatures=len(sig_bugs))
