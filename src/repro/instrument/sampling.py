"""Bernoulli sampling of instrumentation sites (Sections 2 and 4).

Each time instrumentation code is reached, "a coin flip decides whether
the instrumentation is executed or not ... each potential sample is taken
or skipped randomly and independently as the program runs".  The standard
trick (from the original CBI transformation) is to draw the *gap* until
the next taken sample from a geometric distribution, so skipping costs a
single counter decrement.

Two regimes are provided via :class:`SamplingPlan`:

* **uniform**: one global rate (the paper's default is 1/100) with a
  single shared countdown across all sites;
* **per-site** (the "nonuniform sampling" of Section 4): each site has
  its own rate and countdown.  :func:`adaptive_rates` reproduces the
  paper's training procedure -- given mean per-run reach counts from a
  training set, choose rates so each site is expected to yield ~100
  samples per run, clamped to a minimum of 1/100, with rarely reached
  sites (< 100 expected reaches) sampled at 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import enabled as _obs_enabled, gauge as _obs_gauge, timer as _obs_timer

#: The paper's default sampling density.
DEFAULT_RATE = 1.0 / 100.0

#: The paper's target expected samples per site per run (Section 4).
DEFAULT_TARGET_SAMPLES = 100.0

#: The paper's floor on adaptive sampling rates.
MIN_ADAPTIVE_RATE = 1.0 / 100.0


def geometric_gap(rate: float, u: float) -> int:
    """Map a uniform variate ``u`` in (0,1) to a geometric inter-sample gap.

    The gap is the number of opportunities until (and including) the next
    taken sample under independent Bernoulli(``rate``) coin flips.  A rate
    of 1.0 always yields 1 (sample every opportunity).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if rate >= 1.0:
        return 1
    # Inverse-CDF sampling of Geometric(rate) supported on {1, 2, ...}.
    return int(math.floor(math.log(max(u, 1e-300)) / math.log(1.0 - rate))) + 1


def adaptive_rates(
    mean_reach_counts: Sequence[float],
    target_samples: float = DEFAULT_TARGET_SAMPLES,
    min_rate: float = MIN_ADAPTIVE_RATE,
) -> np.ndarray:
    """Compute per-site rates from training-run reach counts (Section 4).

    "Based on a training set of 1,000 executions, we set the sampling rate
    of each predicate so as to obtain an expected 100 samples of each
    predicate in subsequent program executions.  On the low end, the
    sampling rate is clamped to a minimum of 1/100; if the site is
    expected to be reached fewer than 100 times the sampling rate is set
    at 1.0."

    Args:
        mean_reach_counts: Mean times each site is reached per run, from a
            fully sampled training set.
        target_samples: Desired expected samples per site per run.
        min_rate: Rate floor for very hot sites.

    Returns:
        Array of per-site rates in ``[min_rate, 1.0]``.
    """
    counts = np.asarray(mean_reach_counts, dtype=np.float64)
    with _obs_timer("sampling.adaptive_rates"):
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = np.where(
                counts > 0, target_samples / np.maximum(counts, 1e-300), 1.0
            )
        rates = np.where(counts < target_samples, 1.0, rates)
        rates = np.clip(rates, min_rate, 1.0)
    if _obs_enabled() and rates.size:
        _obs_gauge("sampling.sites", float(rates.size))
        _obs_gauge("sampling.sites_at_full_rate", float((rates >= 1.0).sum()))
        _obs_gauge("sampling.min_rate", float(rates.min()))
    return rates


@dataclass
class SamplingPlan:
    """A complete sampling configuration for a run population.

    Attributes:
        mode: ``"full"`` (rate 1.0 everywhere -- the paper's validation
            configuration), ``"uniform"`` (one global rate), or
            ``"per-site"`` (adaptive rates).
        rate: Global rate for ``"uniform"`` mode.
        site_rates: Per-site rates for ``"per-site"`` mode.
    """

    mode: str = "uniform"
    rate: float = DEFAULT_RATE
    site_rates: Optional[np.ndarray] = None

    @classmethod
    def full(cls) -> "SamplingPlan":
        """No sampling: observe every opportunity (validation mode)."""
        return cls(mode="full")

    @classmethod
    def uniform(cls, rate: float = DEFAULT_RATE) -> "SamplingPlan":
        """A single global Bernoulli rate (the paper's 1/100 default)."""
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        return cls(mode="uniform", rate=rate)

    @classmethod
    def per_site(cls, site_rates: Sequence[float]) -> "SamplingPlan":
        """Nonuniform per-site rates (Section 4's adaptive sampling)."""
        rates = np.asarray(site_rates, dtype=np.float64)
        if rates.size and (rates.min() <= 0.0 or rates.max() > 1.0):
            raise ValueError("site rates must be in (0, 1]")
        return cls(mode="per-site", site_rates=rates)

    @classmethod
    def adaptive(
        cls,
        mean_reach_counts: Sequence[float],
        target_samples: float = DEFAULT_TARGET_SAMPLES,
        min_rate: float = MIN_ADAPTIVE_RATE,
    ) -> "SamplingPlan":
        """Build a per-site plan from training reach counts."""
        return cls.per_site(adaptive_rates(mean_reach_counts, target_samples, min_rate))

    @classmethod
    def from_steering(cls, document) -> "SamplingPlan":
        """Build a per-site plan from a daemon's steering document.

        ``document`` is a :class:`repro.serve.steering.SteeringDocument`
        or any object/dict carrying a ``rates`` sequence (duck-typed so
        this layer stays independent of the serving stack).  The rates
        feed the ordinary per-site machinery unchanged, which is what
        makes steered collection with a pinned table bit-identical to a
        local adaptive plan over the same seeds.
        """
        rates = document["rates"] if isinstance(document, dict) else document.rates
        return cls.per_site(rates)

    def initial_gaps(self, n_sites: int, rng: np.random.Generator) -> List[int]:
        """Draw the initial countdown for each site (or the global one).

        Returns a single-element list in ``uniform`` mode, a per-site list
        in ``per-site`` mode, and an empty list in ``full`` mode.
        """
        if self.mode == "full":
            return []
        if self.mode == "uniform":
            return [geometric_gap(self.rate, float(rng.random()))]
        if self.site_rates is None or self.site_rates.shape[0] < n_sites:
            raise ValueError("per-site plan lacks rates for every site")
        us = rng.random(n_sites)
        return [geometric_gap(float(r), float(u)) for r, u in zip(self.site_rates, us)]
