"""Run-time half of the instrumentation: observation recording.

The AST transformer (:mod:`repro.instrument.transform`) rewrites subject
code so every instrumented construct routes through a shared
:class:`Runtime` object named ``_cbi`` in the module's globals:

* ``_cbi.branch(site, test_value)`` wraps branch tests;
* ``_cbi.ret(site, call_value)`` wraps call expressions;
* ``_cbi.pairs(sites, x, ys)`` records scalar-pair relations after an
  assignment to ``x``.

Each helper first consults the sampler ("each potential sample is taken
or skipped randomly and independently"); taken observations increment the
site's observation counter and the counters of the predicates observed to
be true.  All helpers return their wrapped value unchanged, so the
transformation preserves program semantics.

One :class:`Runtime` is shared across all runs of an instrumented program;
:meth:`Runtime.begin_run` resets the counters and installs the sampling
plan for the next execution.

The hot-path layout (the fast sampler)
--------------------------------------

Every one of a deployment's millions of trials pays the helpers' cost at
every observation opportunity, so the common "not sampled" case is kept
as cheap as pure Python allows:

* the countdown is **inlined** into each helper -- a skipped opportunity
  costs one attribute load, an integer decrement and a store, with no
  ``self._take(site)`` method call (no frame push) on the way;
* the sampler's identity is an explicit :attr:`mode` attribute (mirrored
  by the integer ``_mode_id`` the helpers branch on), not a bound-method
  comparison;
* uniform-mode countdown refills are **batched**: geometric gaps are
  pre-drawn :data:`GAP_BATCH` at a time with the ``log(1-rate)``
  denominator computed once per run, amortising the ``math`` calls and
  attribute traffic of a per-refill draw.  Pre-drawing consumes the RNG
  in exactly the order a lazy draw would, so the take/skip decision
  stream -- and therefore every downstream count and score -- is
  bit-identical to the unbatched sampler; the pending gaps travel inside
  :meth:`sampler_state` snapshots so resumability is unaffected.

The pre-fast-path implementation survives as the **legacy sampler**
(``Runtime(table, sampler="legacy")`` or :meth:`select_sampler`): helpers
that dispatch through ``self._take`` and refill one gap at a time.  It
exists so the differential suite can pin, on real subjects, that the fast
path changes only the clock, never a counter
(``tests/core/test_differential_pr6.py``).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from repro.core.predicates import PredicateTable
from repro.instrument.sampling import SamplingPlan, geometric_gap
from repro.obs import enabled as _obs_enabled, inc as _obs_inc

#: Sentinel for "variable not bound yet" in scalar-pair old-value capture.
#: It fails the numeric type check, so unbound comparisons are skipped.
UNBOUND = object()

_NUMERIC = (int, float)

#: Uniform-mode gap draws per batched refill (fast sampler).  One draw
#: consumes exactly one RNG variate whatever the batch size, so the
#: decision stream is invariant under this constant.
GAP_BATCH = 64

#: Smallest positive normal double; values strictly inside (0, _TINY)
#: are subnormal.
_TINY = 2.2250738585072014e-308

_INF = float("inf")
_NINF = float("-inf")

#: Integer mode ids the hot helpers branch on (cheaper than string
#: comparison, and immune to bound-method identity games).
_MODE_FULL, _MODE_UNIFORM, _MODE_PER_SITE = 0, 1, 2

_MODE_IDS = {"full": _MODE_FULL, "uniform": _MODE_UNIFORM, "per-site": _MODE_PER_SITE}


def _is_scalar(value) -> bool:
    """True for the scalar values the paper's C schemes observe.

    ``bool`` is excluded explicitly: ``isinstance(True, int)`` holds in
    Python, but the C ``returns``/``scalar-pairs`` schemes only cover
    scalar-returning call sites, and Python truth values would otherwise
    flood those schemes with observations that have no C analogue
    (branch outcomes are already covered by the ``branches`` scheme).
    """
    return isinstance(value, _NUMERIC) and not isinstance(value, bool)


class Runtime:
    """Per-program instrumentation runtime shared across runs.

    Attributes:
        table: The :class:`PredicateTable` registered by the transformer.
        mode: The active sampling mode (``"full"``, ``"uniform"`` or
            ``"per-site"``) -- the explicit sampler identity that
            :meth:`sampler_state` snapshots.
    """

    #: Exposed so instrumented code can reference ``_cbi.UNBOUND``.
    UNBOUND = UNBOUND

    def __init__(self, table: PredicateTable, sampler: str = "fast") -> None:
        self.table = table
        self._base: List[int] = []
        self._site_obs: List[int] = []
        self._true: List[int] = []
        self.mode = "full"
        self._mode_id = _MODE_FULL
        self._take = self._take_full
        self._rate = 1.0
        self._gap = 1
        self._log_q = 0.0
        self._pending: List[int] = []
        self._gap_batch = GAP_BATCH
        self._gaps: List[int] = []
        self._rates: List[float] = []
        self._rng = random.Random(0)
        self._rng_random = self._rng.random
        self.select_sampler(sampler)
        self.refresh()

    def select_sampler(self, sampler: str) -> None:
        """Choose the helper implementations: ``"fast"`` or ``"legacy"``.

        The decision streams are identical (the differential suite pins
        it); only the per-opportunity cost differs.  Instrumented code
        looks the helpers up on the instance, so the legacy path is
        installed by shadowing the class methods with the ``_legacy_*``
        bound methods, and the fast path by removing the shadows.
        """
        if sampler == "fast":
            self._gap_batch = GAP_BATCH
            for name in ("branch", "ret", "pairs", "float_kind", "enter", "custom"):
                self.__dict__.pop(name, None)
        elif sampler == "legacy":
            # Legacy refills draw one gap at a time: the RNG state at any
            # instant matches the original implementation exactly.
            self._gap_batch = 1
            for name in ("branch", "ret", "pairs", "float_kind", "enter", "custom"):
                self.__dict__[name] = getattr(self, f"_legacy_{name}")
        else:
            raise ValueError(f"unknown sampler implementation {sampler!r}")
        self.sampler = sampler

    def refresh(self) -> None:
        """Re-derive per-site predicate base indices after registration.

        The transformer registers sites while rewriting; call this once
        afterwards (done automatically by
        :func:`repro.instrument.tracer.instrument_source`).
        """
        self._base = [
            self.table.predicate_indices_at(s)[0] if self.table.predicate_indices_at(s) else 0
            for s in range(self.table.n_sites)
        ]

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, plan: SamplingPlan, seed: int) -> None:
        """Reset counters and install the sampling plan for one run."""
        n_sites = self.table.n_sites
        n_preds = self.table.n_predicates
        if len(self._base) != n_sites:
            self.refresh()
        self._site_obs = [0] * n_sites
        self._true = [0] * n_preds
        self._rng = random.Random(seed)
        self._rng_random = self._rng.random
        self._pending = []

        if _obs_enabled():
            _obs_inc(f"runtime.begin_run.{plan.mode}")
        if plan.mode == "full":
            self._take = self._take_full
        elif plan.mode == "uniform":
            self._rate = plan.rate
            self._log_q = math.log(1.0 - plan.rate) if plan.rate < 1.0 else 0.0
            self._gap = geometric_gap(plan.rate, self._rng_random())
            self._take = self._take_uniform
        elif plan.mode == "per-site":
            if plan.site_rates is None or len(plan.site_rates) < n_sites:
                raise ValueError("per-site plan lacks rates for every site")
            self._rates = [float(r) for r in plan.site_rates[:n_sites]]
            self._gaps = [
                geometric_gap(r, self._rng_random()) for r in self._rates
            ]
            self._take = self._take_persite
        else:
            raise ValueError(f"unknown sampling mode {plan.mode!r}")
        self.mode = plan.mode
        self._mode_id = _MODE_IDS[plan.mode]

    def end_run(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Return ``(site_observed, pred_true)`` sparse count dicts.

        When observability is on, the run's aggregate sampling activity
        is folded into the metrics here -- once per run, never per
        observation, so the per-opportunity fast path stays untouched
        and instrumented executions remain bit-identical.
        """
        site_obs = {i: c for i, c in enumerate(self._site_obs) if c}
        pred_true = {i: c for i, c in enumerate(self._true) if c}
        if _obs_enabled():
            _obs_inc("runtime.runs")
            _obs_inc("runtime.samples_taken", sum(site_obs.values()))
            _obs_inc("runtime.predicates_true", sum(pred_true.values()))
        return site_obs, pred_true

    # ------------------------------------------------------------------
    # Sampler-state round-tripping
    # ------------------------------------------------------------------
    def sampler_state(self) -> Dict[str, object]:
        """Snapshot the sampler mid-run: countdowns, rates, RNG state.

        Together with :meth:`restore_sampler_state` this makes the
        take/skip decision stream *resumable*: a runtime restored from a
        snapshot continues with exactly the decisions the snapshotting
        runtime would have made.  This is the determinism contract the
        fault-tolerant collector leans on -- a run (or a retried shard
        range) is a pure function of its seed, and the property suite
        (`tests/instrument/test_sampling_properties.py`) pins that the
        countdown state survives an arbitrary split point, the in-process
        analogue of a shard boundary.

        The snapshot carries the explicit :attr:`mode` attribute (under
        both ``"mode"`` and the pre-fast-path key ``"kind"``) and the
        batched sampler's undealt pre-drawn gaps (``"pending"``, in
        consumption order), so snapshots splice across fast and legacy
        runtimes in either direction.
        """
        return {
            "kind": self.mode,
            "mode": self.mode,
            "rate": self._rate,
            "gap": self._gap,
            "rates": list(self._rates),
            "gaps": list(self._gaps),
            "pending": list(reversed(self._pending)),
            "rng": self._rng.getstate(),
        }

    def restore_sampler_state(self, state: Dict[str, object]) -> None:
        """Restore a sampler snapshot taken by :meth:`sampler_state`.

        Only the sampling side (countdowns and RNG) is restored; the
        observation counters are left alone, so a caller can both resume
        a run and splice decision streams across runtime instances.
        Snapshots written before the fast-path sampler (no ``"mode"`` or
        ``"pending"`` keys) restore too.
        """
        kind = state.get("kind", state.get("mode"))
        if kind not in _MODE_IDS:
            raise ValueError(f"unknown sampler kind {kind!r} in snapshot")
        self._rate = float(state["rate"])  # type: ignore[arg-type]
        self._gap = int(state["gap"])  # type: ignore[arg-type]
        self._rates = [float(r) for r in state["rates"]]  # type: ignore[union-attr]
        self._gaps = [int(g) for g in state["gaps"]]  # type: ignore[union-attr]
        self._pending = [int(g) for g in reversed(state.get("pending", ()))]  # type: ignore[arg-type]
        self._log_q = math.log(1.0 - self._rate) if 0.0 < self._rate < 1.0 else 0.0
        self._rng = random.Random()
        self._rng.setstate(state["rng"])  # type: ignore[arg-type]
        self._rng_random = self._rng.random
        self.mode = kind  # type: ignore[assignment]
        self._mode_id = _MODE_IDS[kind]
        if kind == "full":
            self._take = self._take_full
        elif kind == "uniform":
            self._take = self._take_uniform
        else:
            self._take = self._take_persite

    # ------------------------------------------------------------------
    # Samplers (bound to self._take per run).  These are the dispatching
    # reference implementations; the fast helpers inline the same
    # countdown over the same state, so mixing calls is always safe.
    # ------------------------------------------------------------------
    def _take_full(self, site: int) -> bool:
        return True

    def _take_uniform(self, site: int) -> bool:
        g = self._gap - 1
        if g > 0:
            self._gap = g
            return False
        self._gap = self._next_gap()
        return True

    def _take_persite(self, site: int) -> bool:
        gaps = self._gaps
        g = gaps[site] - 1
        if g > 0:
            gaps[site] = g
            return False
        gaps[site] = geometric_gap(self._rates[site], self._rng_random())
        return True

    def _next_gap(self) -> int:
        """Deal the next uniform-mode gap, refilling the batch when dry.

        Gaps are consumed in draw order (the batch is stored reversed so
        ``pop()`` is O(1)), and every gap costs exactly one RNG variate,
        so the decision stream is independent of ``_gap_batch``.
        """
        pending = self._pending
        if not pending:
            rnd = self._rng_random
            rate = self._rate
            if rate >= 1.0:
                pending[:] = [geometric_gap(rate, rnd()) for _ in range(self._gap_batch)]
            else:
                log_q = self._log_q
                floor = math.floor
                log = math.log
                pending[:] = [
                    int(floor(log(max(rnd(), 1e-300)) / log_q)) + 1
                    for _ in range(self._gap_batch)
                ]
            pending.reverse()
        return pending.pop()

    # ------------------------------------------------------------------
    # Observation helpers called from instrumented code (fast path).
    # The countdown is inlined: a skipped opportunity is one attribute
    # load, a decrement and a store -- no method dispatch.
    # ------------------------------------------------------------------
    def branch(self, site: int, value):
        """Record a branch test outcome; returns ``value`` unchanged."""
        m = self._mode_id
        if m == _MODE_UNIFORM:
            g = self._gap - 1
            if g > 0:
                self._gap = g
                return value
            self._gap = self._next_gap()
        elif m == _MODE_PER_SITE:
            gaps = self._gaps
            g = gaps[site] - 1
            if g > 0:
                gaps[site] = g
                return value
            gaps[site] = geometric_gap(self._rates[site], self._rng_random())
        self._site_obs[site] += 1
        b = self._base[site]
        if value:
            self._true[b] += 1
        else:
            self._true[b + 1] += 1
        return value

    def ret(self, site: int, value):
        """Record a call's scalar return sign; returns ``value`` unchanged.

        Non-scalar values -- including ``bool``, which is not a scalar in
        the paper's sense -- leave the site unobserved, mirroring the C
        scheme's restriction to scalar-returning call sites.
        """
        if isinstance(value, _NUMERIC) and not isinstance(value, bool):
            m = self._mode_id
            if m == _MODE_UNIFORM:
                g = self._gap - 1
                if g > 0:
                    self._gap = g
                    return value
                self._gap = self._next_gap()
            elif m == _MODE_PER_SITE:
                gaps = self._gaps
                g = gaps[site] - 1
                if g > 0:
                    gaps[site] = g
                    return value
                gaps[site] = geometric_gap(self._rates[site], self._rng_random())
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value < 0:
                t[b] += 1      # < 0
                t[b + 4] += 1  # != 0
                t[b + 5] += 1  # <= 0
            elif value == 0:
                t[b + 1] += 1  # == 0
                t[b + 3] += 1  # >= 0
                t[b + 5] += 1  # <= 0
            else:
                t[b + 2] += 1  # > 0
                t[b + 3] += 1  # >= 0
                t[b + 4] += 1  # != 0
        return value

    def pairs(self, sites: Sequence[int], x, ys: Sequence) -> None:
        """Record scalar-pair relations between ``x`` and each ``y``.

        Each ``(x, y)`` pair is its own instrumentation site, sampled
        independently.  Non-numeric operands (including ``bool`` and the
        :data:`UNBOUND` sentinel) leave their site unobserved.
        """
        if not (isinstance(x, _NUMERIC) and not isinstance(x, bool)):
            return
        m = self._mode_id
        t = self._true
        for site, y in zip(sites, ys):
            if not (isinstance(y, _NUMERIC) and not isinstance(y, bool)):
                continue
            if m == _MODE_UNIFORM:
                g = self._gap - 1
                if g > 0:
                    self._gap = g
                    continue
                self._gap = self._next_gap()
            elif m == _MODE_PER_SITE:
                gaps = self._gaps
                g = gaps[site] - 1
                if g > 0:
                    gaps[site] = g
                    continue
                gaps[site] = geometric_gap(self._rates[site], self._rng_random())
            self._site_obs[site] += 1
            b = self._base[site]
            if x < y:
                t[b] += 1      # <
                t[b + 4] += 1  # !=
                t[b + 5] += 1  # <=
            elif x == y:
                t[b + 1] += 1  # ==
                t[b + 3] += 1  # >=
                t[b + 5] += 1  # <=
            else:
                t[b + 2] += 1  # >
                t[b + 3] += 1  # >=
                t[b + 4] += 1  # !=

    def float_kind(self, site: int, value) -> None:
        """Classify a freshly assigned floating-point value.

        Family offsets: negative, zero, positive, NaN, infinite,
        subnormal.  The families are **mutually exclusive** (the paper's
        Section 5 "kinds": every sampled value belongs to exactly one),
        classified specific-first: NaN, then infinite, then zero, then
        subnormal, then the sign of an ordinary normal value -- see
        docs/ALGORITHM.md.  Non-float values leave the site unobserved.
        """
        if type(value) is float:
            m = self._mode_id
            if m == _MODE_UNIFORM:
                g = self._gap - 1
                if g > 0:
                    self._gap = g
                    return
                self._gap = self._next_gap()
            elif m == _MODE_PER_SITE:
                gaps = self._gaps
                g = gaps[site] - 1
                if g > 0:
                    gaps[site] = g
                    return
                gaps[site] = geometric_gap(self._rates[site], self._rng_random())
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value != value:  # NaN
                t[b + 3] += 1
            elif value == _INF or value == _NINF:
                t[b + 4] += 1
            elif value == 0.0:
                t[b + 1] += 1
            elif -_TINY < value < _TINY:
                t[b + 5] += 1  # subnormal (nonzero, below the normal floor)
            elif value < 0.0:
                t[b] += 1
            else:
                t[b + 2] += 1

    def enter(self, site: int) -> None:
        """Record a function entry (the ``function-entries`` scheme)."""
        m = self._mode_id
        if m == _MODE_UNIFORM:
            g = self._gap - 1
            if g > 0:
                self._gap = g
                return
            self._gap = self._next_gap()
        elif m == _MODE_PER_SITE:
            gaps = self._gaps
            g = gaps[site] - 1
            if g > 0:
                gaps[site] = g
                return
            gaps[site] = geometric_gap(self._rates[site], self._rng_random())
        self._site_obs[site] += 1
        self._true[self._base[site]] += 1

    def custom(self, site: int, flags: Sequence[bool]) -> None:
        """Record a hand-rolled predicate family (Section 5 extensions)."""
        m = self._mode_id
        if m == _MODE_UNIFORM:
            g = self._gap - 1
            if g > 0:
                self._gap = g
                return
            self._gap = self._next_gap()
        elif m == _MODE_PER_SITE:
            gaps = self._gaps
            g = gaps[site] - 1
            if g > 0:
                gaps[site] = g
                return
            gaps[site] = geometric_gap(self._rates[site], self._rng_random())
        self._site_obs[site] += 1
        base = self._base[site]
        t = self._true
        for offset, flag in enumerate(flags):
            if flag:
                t[base + offset] += 1

    # ------------------------------------------------------------------
    # Legacy helpers: the pre-fast-path implementations, dispatching
    # through ``self._take`` per opportunity.  Installed by
    # ``select_sampler("legacy")``; the differential suite pins that they
    # and the fast path produce identical counters run for run.
    # ------------------------------------------------------------------
    def _legacy_branch(self, site: int, value):
        if self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            if value:
                self._true[b] += 1
            else:
                self._true[b + 1] += 1
        return value

    def _legacy_ret(self, site: int, value):
        if _is_scalar(value) and self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value < 0:
                t[b] += 1
                t[b + 4] += 1
                t[b + 5] += 1
            elif value == 0:
                t[b + 1] += 1
                t[b + 3] += 1
                t[b + 5] += 1
            else:
                t[b + 2] += 1
                t[b + 3] += 1
                t[b + 4] += 1
        return value

    def _legacy_pairs(self, sites: Sequence[int], x, ys: Sequence) -> None:
        if not _is_scalar(x):
            return
        take = self._take
        t = self._true
        for site, y in zip(sites, ys):
            if _is_scalar(y) and take(site):
                self._site_obs[site] += 1
                b = self._base[site]
                if x < y:
                    t[b] += 1
                    t[b + 4] += 1
                    t[b + 5] += 1
                elif x == y:
                    t[b + 1] += 1
                    t[b + 3] += 1
                    t[b + 5] += 1
                else:
                    t[b + 2] += 1
                    t[b + 3] += 1
                    t[b + 4] += 1

    def _legacy_float_kind(self, site: int, value) -> None:
        if type(value) is float and self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value != value:
                t[b + 3] += 1
            elif value == _INF or value == _NINF:
                t[b + 4] += 1
            elif value == 0.0:
                t[b + 1] += 1
            elif -_TINY < value < _TINY:
                t[b + 5] += 1
            elif value < 0.0:
                t[b] += 1
            else:
                t[b + 2] += 1

    def _legacy_enter(self, site: int) -> None:
        if self._take(site):
            self._site_obs[site] += 1
            self._true[self._base[site]] += 1

    def _legacy_custom(self, site: int, flags: Sequence[bool]) -> None:
        if self._take(site):
            self._site_obs[site] += 1
            base = self._base[site]
            for offset, flag in enumerate(flags):
                if flag:
                    self._true[base + offset] += 1
