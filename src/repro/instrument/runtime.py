"""Run-time half of the instrumentation: observation recording.

The AST transformer (:mod:`repro.instrument.transform`) rewrites subject
code so every instrumented construct routes through a shared
:class:`Runtime` object named ``_cbi`` in the module's globals:

* ``_cbi.branch(site, test_value)`` wraps branch tests;
* ``_cbi.ret(site, call_value)`` wraps call expressions;
* ``_cbi.pairs(sites, x, ys)`` records scalar-pair relations after an
  assignment to ``x``.

Each helper first consults the sampler ("each potential sample is taken
or skipped randomly and independently"); taken observations increment the
site's observation counter and the counters of the predicates observed to
be true.  All helpers return their wrapped value unchanged, so the
transformation preserves program semantics.

One :class:`Runtime` is shared across all runs of an instrumented program;
:meth:`Runtime.begin_run` resets the counters and installs the sampling
plan for the next execution.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.predicates import PredicateTable
from repro.instrument.sampling import SamplingPlan, geometric_gap
from repro.obs import enabled as _obs_enabled, inc as _obs_inc

#: Sentinel for "variable not bound yet" in scalar-pair old-value capture.
#: It fails the numeric type check, so unbound comparisons are skipped.
UNBOUND = object()

_NUMERIC = (int, float)


def _is_scalar(value) -> bool:
    """True for the scalar values the paper's C schemes observe.

    ``bool`` is excluded explicitly: ``isinstance(True, int)`` holds in
    Python, but the C ``returns``/``scalar-pairs`` schemes only cover
    scalar-returning call sites, and Python truth values would otherwise
    flood those schemes with observations that have no C analogue
    (branch outcomes are already covered by the ``branches`` scheme).
    """
    return isinstance(value, _NUMERIC) and not isinstance(value, bool)


class Runtime:
    """Per-program instrumentation runtime shared across runs.

    Attributes:
        table: The :class:`PredicateTable` registered by the transformer.
    """

    #: Exposed so instrumented code can reference ``_cbi.UNBOUND``.
    UNBOUND = UNBOUND

    def __init__(self, table: PredicateTable) -> None:
        self.table = table
        self._base: List[int] = []
        self._site_obs: List[int] = []
        self._true: List[int] = []
        self._take = self._take_full
        self._rate = 1.0
        self._gap = 1
        self._gaps: List[int] = []
        self._rates: List[float] = []
        self._rng = random.Random(0)
        self._rng_random = self._rng.random
        self.refresh()

    def refresh(self) -> None:
        """Re-derive per-site predicate base indices after registration.

        The transformer registers sites while rewriting; call this once
        afterwards (done automatically by
        :func:`repro.instrument.tracer.instrument_source`).
        """
        self._base = [
            self.table.predicate_indices_at(s)[0] if self.table.predicate_indices_at(s) else 0
            for s in range(self.table.n_sites)
        ]

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, plan: SamplingPlan, seed: int) -> None:
        """Reset counters and install the sampling plan for one run."""
        n_sites = self.table.n_sites
        n_preds = self.table.n_predicates
        if len(self._base) != n_sites:
            self.refresh()
        self._site_obs = [0] * n_sites
        self._true = [0] * n_preds
        self._rng = random.Random(seed)
        self._rng_random = self._rng.random

        if _obs_enabled():
            _obs_inc(f"runtime.begin_run.{plan.mode}")
        if plan.mode == "full":
            self._take = self._take_full
        elif plan.mode == "uniform":
            self._rate = plan.rate
            self._gap = geometric_gap(plan.rate, self._rng_random())
            self._take = self._take_uniform
        elif plan.mode == "per-site":
            if plan.site_rates is None or len(plan.site_rates) < n_sites:
                raise ValueError("per-site plan lacks rates for every site")
            self._rates = [float(r) for r in plan.site_rates[:n_sites]]
            self._gaps = [
                geometric_gap(r, self._rng_random()) for r in self._rates
            ]
            self._take = self._take_persite
        else:
            raise ValueError(f"unknown sampling mode {plan.mode!r}")

    def end_run(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Return ``(site_observed, pred_true)`` sparse count dicts.

        When observability is on, the run's aggregate sampling activity
        is folded into the metrics here -- once per run, never per
        observation, so the per-opportunity fast path stays untouched
        and instrumented executions remain bit-identical.
        """
        site_obs = {i: c for i, c in enumerate(self._site_obs) if c}
        pred_true = {i: c for i, c in enumerate(self._true) if c}
        if _obs_enabled():
            _obs_inc("runtime.runs")
            _obs_inc("runtime.samples_taken", sum(site_obs.values()))
            _obs_inc("runtime.predicates_true", sum(pred_true.values()))
        return site_obs, pred_true

    # ------------------------------------------------------------------
    # Sampler-state round-tripping
    # ------------------------------------------------------------------
    def sampler_state(self) -> Dict[str, object]:
        """Snapshot the sampler mid-run: countdowns, rates, RNG state.

        Together with :meth:`restore_sampler_state` this makes the
        take/skip decision stream *resumable*: a runtime restored from a
        snapshot continues with exactly the decisions the snapshotting
        runtime would have made.  This is the determinism contract the
        fault-tolerant collector leans on -- a run (or a retried shard
        range) is a pure function of its seed, and the property suite
        (`tests/instrument/test_sampling_properties.py`) pins that the
        countdown state survives an arbitrary split point, the in-process
        analogue of a shard boundary.
        """
        kind = (
            "full"
            if self._take == self._take_full
            else "uniform"
            if self._take == self._take_uniform
            else "per-site"
        )
        return {
            "kind": kind,
            "rate": self._rate,
            "gap": self._gap,
            "rates": list(self._rates),
            "gaps": list(self._gaps),
            "rng": self._rng.getstate(),
        }

    def restore_sampler_state(self, state: Dict[str, object]) -> None:
        """Restore a sampler snapshot taken by :meth:`sampler_state`.

        Only the sampling side (countdowns and RNG) is restored; the
        observation counters are left alone, so a caller can both resume
        a run and splice decision streams across runtime instances.
        """
        kind = state["kind"]
        self._rate = float(state["rate"])  # type: ignore[arg-type]
        self._gap = int(state["gap"])  # type: ignore[arg-type]
        self._rates = [float(r) for r in state["rates"]]  # type: ignore[union-attr]
        self._gaps = [int(g) for g in state["gaps"]]  # type: ignore[union-attr]
        self._rng = random.Random()
        self._rng.setstate(state["rng"])  # type: ignore[arg-type]
        self._rng_random = self._rng.random
        if kind == "full":
            self._take = self._take_full
        elif kind == "uniform":
            self._take = self._take_uniform
        elif kind == "per-site":
            self._take = self._take_persite
        else:
            raise ValueError(f"unknown sampler kind {kind!r} in snapshot")

    # ------------------------------------------------------------------
    # Samplers (bound to self._take per run)
    # ------------------------------------------------------------------
    def _take_full(self, site: int) -> bool:
        return True

    def _take_uniform(self, site: int) -> bool:
        g = self._gap - 1
        if g > 0:
            self._gap = g
            return False
        self._gap = geometric_gap(self._rate, self._rng_random())
        return True

    def _take_persite(self, site: int) -> bool:
        gaps = self._gaps
        g = gaps[site] - 1
        if g > 0:
            gaps[site] = g
            return False
        gaps[site] = geometric_gap(self._rates[site], self._rng_random())
        return True

    # ------------------------------------------------------------------
    # Observation helpers called from instrumented code
    # ------------------------------------------------------------------
    def branch(self, site: int, value):
        """Record a branch test outcome; returns ``value`` unchanged."""
        if self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            if value:
                self._true[b] += 1
            else:
                self._true[b + 1] += 1
        return value

    def ret(self, site: int, value):
        """Record a call's scalar return sign; returns ``value`` unchanged.

        Non-scalar values -- including ``bool``, which is not a scalar in
        the paper's sense -- leave the site unobserved, mirroring the C
        scheme's restriction to scalar-returning call sites.
        """
        if _is_scalar(value) and self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value < 0:
                t[b] += 1      # < 0
                t[b + 4] += 1  # != 0
                t[b + 5] += 1  # <= 0
            elif value == 0:
                t[b + 1] += 1  # == 0
                t[b + 3] += 1  # >= 0
                t[b + 5] += 1  # <= 0
            else:
                t[b + 2] += 1  # > 0
                t[b + 3] += 1  # >= 0
                t[b + 4] += 1  # != 0
        return value

    def pairs(self, sites: Sequence[int], x, ys: Sequence) -> None:
        """Record scalar-pair relations between ``x`` and each ``y``.

        Each ``(x, y)`` pair is its own instrumentation site, sampled
        independently.  Non-numeric operands (including ``bool`` and the
        :data:`UNBOUND` sentinel) leave their site unobserved.
        """
        if not _is_scalar(x):
            return
        take = self._take
        t = self._true
        for site, y in zip(sites, ys):
            if _is_scalar(y) and take(site):
                self._site_obs[site] += 1
                b = self._base[site]
                if x < y:
                    t[b] += 1      # <
                    t[b + 4] += 1  # !=
                    t[b + 5] += 1  # <=
                elif x == y:
                    t[b + 1] += 1  # ==
                    t[b + 3] += 1  # >=
                    t[b + 5] += 1  # <=
                else:
                    t[b + 2] += 1  # >
                    t[b + 3] += 1  # >=
                    t[b + 4] += 1  # !=

    def float_kind(self, site: int, value) -> None:
        """Classify a freshly assigned floating-point value.

        Family offsets: negative, zero, positive, NaN, infinite,
        subnormal.  Non-float values leave the site unobserved.
        """
        if type(value) is float and self._take(site):
            self._site_obs[site] += 1
            b = self._base[site]
            t = self._true
            if value != value:  # NaN
                t[b + 3] += 1
                return
            if value == float("inf") or value == float("-inf"):
                t[b + 4] += 1
            if value < 0.0:
                t[b] += 1
            elif value == 0.0:
                t[b + 1] += 1
            else:
                t[b + 2] += 1
            if 0.0 < abs(value) < 2.2250738585072014e-308:
                t[b + 5] += 1

    def enter(self, site: int) -> None:
        """Record a function entry (the ``function-entries`` scheme)."""
        if self._take(site):
            self._site_obs[site] += 1
            self._true[self._base[site]] += 1

    def custom(self, site: int, flags: Sequence[bool]) -> None:
        """Record a hand-rolled predicate family (Section 5 extensions)."""
        if self._take(site):
            self._site_obs[site] += 1
            base = self.table.predicate_indices_at(site)[0]
            for offset, flag in enumerate(flags):
                if flag:
                    self._true[base + offset] += 1
