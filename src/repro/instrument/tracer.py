"""Compile and execute instrumented programs.

:func:`instrument_source` runs the AST transform on a subject program's
source, compiles it, and executes the module body with the shared
:class:`~repro.instrument.runtime.Runtime` bound to ``_cbi``.  The
resulting :class:`InstrumentedProgram` exposes the module's functions and
the per-run lifecycle (``begin_run`` / call entry point / ``end_run``).

Crash stacks are captured per failing run with :func:`crash_stack`, which
keeps only frames inside the instrumented module -- the Python analogue of
the stack signatures that "current industrial practice" clusters failure
reports by (Section 6).
"""

from __future__ import annotations

import ast
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.predicates import PredicateTable
from repro.instrument.runtime import Runtime
from repro.instrument.sampling import SamplingPlan
from repro.instrument.transform import InstrumentationConfig, Instrumenter


@dataclass
class InstrumentedProgram:
    """A compiled, instrumented subject program.

    Attributes:
        namespace: The executed module globals (contains ``_cbi``).
        runtime: The shared instrumentation runtime.
        table: Registered sites and predicates.
        filename: The pseudo-filename used when compiling, which tags the
            program's own frames in crash stacks.
        source: The instrumented source text (for inspection/debugging).
    """

    namespace: Dict[str, object]
    runtime: Runtime
    table: PredicateTable
    filename: str
    source: str

    def func(self, name: str) -> Callable:
        """Look up a function defined by the instrumented module."""
        fn = self.namespace.get(name)
        if not callable(fn):
            raise KeyError(f"no callable {name!r} in instrumented module")
        return fn

    def begin_run(self, plan: SamplingPlan, seed: int) -> None:
        """Reset counters and arm the sampler for the next execution."""
        self.runtime.begin_run(plan, seed)

    def end_run(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Collect ``(site_observed, pred_true)`` for the finished run."""
        return self.runtime.end_run()


def instrument_source(
    source: str,
    name: str = "subject",
    config: Optional[InstrumentationConfig] = None,
    table: Optional[PredicateTable] = None,
    extra_globals: Optional[Dict[str, object]] = None,
) -> InstrumentedProgram:
    """Instrument, compile, and execute a subject program's source.

    Args:
        source: The subject's Python source text.
        name: Module name; also used to derive the pseudo-filename.
        config: Instrumentation configuration (defaults: all schemes on).
        table: Optional existing predicate table to extend.
        extra_globals: Additional names injected into the module globals
            before execution (e.g. test doubles).

    Returns:
        An :class:`InstrumentedProgram` ready to run.
    """
    config = config if config is not None else InstrumentationConfig()
    inst = Instrumenter(table=table, config=config)
    filename = f"<instrumented:{name}>"
    tree = inst.instrument(source, filename=filename)
    code = compile(tree, filename, "exec")

    runtime = Runtime(inst.table)
    runtime.refresh()
    # Arm a throwaway full-sampling run so module-level instrumented code
    # (constant definitions and the like) can execute during import.
    runtime.begin_run(SamplingPlan.full(), seed=0)

    namespace: Dict[str, object] = {
        "__name__": name,
        "__file__": filename,
        config.runtime_name: runtime,
    }
    if extra_globals:
        namespace.update(extra_globals)
    exec(code, namespace)  # noqa: S102 - deliberate: running the subject
    runtime.end_run()

    try:
        text = ast.unparse(tree)
    except Exception:  # pragma: no cover - unparse failure fallback
        text = source
    return InstrumentedProgram(
        namespace=namespace,
        runtime=runtime,
        table=inst.table,
        filename=filename,
        source=text,
    )


def crash_stack(exc: BaseException, filename: str) -> Tuple[str, ...]:
    """Extract a crash-stack signature from an exception.

    Returns the function names of the traceback frames that lie inside the
    instrumented module (outermost first), ending with the exception type
    name -- a deliberately coarse signature, like the "same stack trace /
    same top-of-stack function" heuristic of Section 6.
    """
    frames = traceback.extract_tb(exc.__traceback__)
    # Prefix match: a multi-module factory program compiles each module
    # with a filename sharing the package's "<factory:pkg" prefix, and
    # all of those frames belong to the subject.  Single-module programs
    # are unaffected (the prefix is the whole filename).
    prefix = filename.rstrip(">")
    names = [f.name for f in frames if f.filename.startswith(prefix)]
    return tuple(names) + (type(exc).__name__,)
