"""Source-to-source instrumentation transform (Section 2).

"Random sampling is added to a program via a source-to-source
transformation."  This module is the Python analogue of the paper's C
transformation: an :mod:`ast` rewrite that threads every instrumented
construct through the shared :class:`~repro.instrument.runtime.Runtime`
object, bound to the name ``_cbi`` in the instrumented module's globals.

Rewrites performed (all semantics-preserving -- every helper returns its
wrapped value):

* **branches**: ``if``/``while`` tests, ternary tests, comprehension
  guards, and each operand of short-circuiting ``and``/``or`` become
  ``_cbi.branch(site, test)``.
* **returns**: every call expression ``f(...)`` becomes
  ``_cbi.ret(site, f(...))``; the runtime records the six sign predicates
  when the value is scalar.
* **scalar-pairs**: after each assignment ``x = ...`` (including
  augmented assignments and ``for`` targets) the transform emits
  ``_cbi.pairs((s1, ..., sk), x, (prev, y1, ..., c1, ...))`` comparing the
  new value of ``x`` with its previous value ("new value of x < old value
  of x" in the paper's tables), with other in-scope scalar variables, and
  with the numeric constants appearing in the function.  Each pair is a
  distinct instrumentation site, as in the paper.

Calls whose (dotted) name starts with an excluded prefix -- by default the
runtime itself and the ground-truth side channel ``record_bug`` -- are
never instrumented.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.predicates import PredicateTable, Scheme

#: Maximum characters kept of an unparsed source snippet in descriptions.
_DESC_LIMIT = 60

#: ``try``-shaped statements; ``except*`` groups exist on 3.11+ only.
_TRY_NODES: Tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # pragma: no branch - version gate
    _TRY_NODES = (ast.Try, ast.TryStar)


@dataclass(frozen=True)
class InstrumentationConfig:
    """Which schemes to apply and how aggressively.

    Attributes:
        branches / returns / scalar_pairs: Scheme on/off switches.
        function_entries: One coverage predicate per function entry
            (off by default; the paper's C system did not have it, but
            Section 6 notes the counters double as coverage data).
        float_kinds: Classify floating-point assignment values
            (negative/zero/positive/NaN/infinite/subnormal); a scheme
            the CBI system shipped beyond the three in the paper.  Off
            by default.
        max_pair_vars: Cap on in-scope variables compared per assignment
            (the most recently assigned are kept); ``None`` = no cap.
        max_pair_consts: Cap on function constants compared per
            assignment; ``None`` = no cap.
        include_old_value: Whether to emit the "new value of x vs old
            value of x" pair site.
        exclude_functions: Function names to leave uninstrumented (the
            paper's escape hatch for performance-critical kernels).
        exclude_call_prefixes: Dotted-name prefixes never treated as
            instrumentable calls.
        runtime_name: Global name the runtime object is bound to.
    """

    branches: bool = True
    returns: bool = True
    scalar_pairs: bool = True
    function_entries: bool = False
    float_kinds: bool = False
    max_pair_vars: Optional[int] = 8
    max_pair_consts: Optional[int] = 6
    include_old_value: bool = True
    exclude_functions: frozenset = frozenset()
    exclude_call_prefixes: Tuple[str, ...] = ("_cbi", "record_bug")
    runtime_name: str = "_cbi"


@dataclass
class _FunctionContext:
    """Per-function state while rewriting."""

    name: str
    assigned: List[str] = field(default_factory=list)
    constants: List[object] = field(default_factory=list)
    instrument: bool = True
    is_class_body: bool = False

    def note_assigned(self, name: str) -> None:
        if name.startswith("_cbi"):
            return
        if name not in self.assigned:
            self.assigned.append(name)


def _collect_constants(node: ast.AST) -> List[object]:
    """Distinct numeric constants in source order (bools excluded)."""
    seen: List[object] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant):
            v = sub.value
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                if v not in seen:
                    seen.append(v)
    return seen


def _snippet(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure fallback
        text = f"<{type(node).__name__}>"
    text = " ".join(text.split())
    if len(text) > _DESC_LIMIT:
        text = text[: _DESC_LIMIT - 3] + "..."
    return text


def _dotted_name(func: ast.expr) -> Optional[str]:
    """Dotted name of a call target, or ``None`` for computed targets."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Instrumenter:
    """Rewrites Python source, registering sites in a predicate table."""

    def __init__(
        self,
        table: Optional[PredicateTable] = None,
        config: Optional[InstrumentationConfig] = None,
        function_prefix: str = "",
    ) -> None:
        self.table = table if table is not None else PredicateTable()
        self.config = config if config is not None else InstrumentationConfig()
        #: Prepended to every site's function name.  The factory sets this
        #: to ``"<module>:"`` so sites from different modules of one
        #: package never collide in the shared table; ``exclude_functions``
        #: still matches on the bare function name.
        self.function_prefix = function_prefix

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def instrument(self, source: str, filename: str = "<subject>") -> ast.Module:
        """Parse ``source``, instrument it, and return the new module AST.

        Sites are registered in :attr:`table` as they are encountered, in
        deterministic source order.
        """
        tree = ast.parse(source, filename=filename)
        ctx = _FunctionContext(
            name=self.function_prefix + "<module>", constants=[]
        )
        tree.body = self._process_stmts(tree.body, ctx)
        ast.fix_missing_locations(tree)
        return tree

    # ------------------------------------------------------------------
    # Node factories
    # ------------------------------------------------------------------
    def _runtime_attr(self, method: str) -> ast.Attribute:
        return ast.Attribute(
            value=ast.Name(id=self.config.runtime_name, ctx=ast.Load()),
            attr=method,
            ctx=ast.Load(),
        )

    def _wrap_branch(
        self, ctx: _FunctionContext, test: ast.expr, desc: Optional[str] = None
    ) -> ast.expr:
        line = getattr(test, "lineno", 0)
        if desc is None:
            desc = _snippet(test)
        site = self.table.add_site(Scheme.BRANCHES, ctx.name, line, desc)
        call = ast.Call(
            func=self._runtime_attr("branch"),
            args=[ast.Constant(value=site.index), test],
            keywords=[],
        )
        return ast.copy_location(call, test)

    def _wrap_call(self, ctx: _FunctionContext, call: ast.Call) -> ast.expr:
        name = _dotted_name(call.func)
        desc = name if name is not None else _snippet(call.func)
        site = self.table.add_site(
            Scheme.RETURNS, ctx.name, getattr(call, "lineno", 0), desc
        )
        wrapped = ast.Call(
            func=self._runtime_attr("ret"),
            args=[ast.Constant(value=site.index), call],
            keywords=[],
        )
        return ast.copy_location(wrapped, call)

    def _excluded_call(self, func: ast.expr) -> bool:
        name = _dotted_name(func)
        if name is None:
            return False
        parts = name.split(".")
        for prefix in self.config.exclude_call_prefixes:
            if any(p.startswith(prefix) for p in parts):
                return True
        return False

    # ------------------------------------------------------------------
    # Expression instrumentation
    # ------------------------------------------------------------------
    def _transform_expr(self, node: ast.AST, ctx: _FunctionContext) -> ast.AST:
        """Instrument calls / boolean operators inside one expression tree."""
        if not ctx.instrument:
            return node
        return _ExprInstrumenter(self, ctx).visit(node)

    # ------------------------------------------------------------------
    # Scalar-pair emission
    # ------------------------------------------------------------------
    def _pair_candidates(
        self, ctx: _FunctionContext, target: str
    ) -> Tuple[List[Tuple[str, ast.expr]], bool]:
        """Return ``(candidates, include_old)`` for an assignment to target.

        Each candidate is ``(description, value expression)``; description
        uses the paper's ``x __ y`` placeholder, expanded per relation by
        the predicate table's default names.
        """
        cfg = self.config
        cands: List[Tuple[str, ast.expr]] = []
        names = [n for n in ctx.assigned if n != target]
        if cfg.max_pair_vars is not None:
            names = names[-cfg.max_pair_vars :]
        for name in names:
            cands.append((f"{target} __ {name}", ast.Name(id=name, ctx=ast.Load())))
        consts = ctx.constants
        if cfg.max_pair_consts is not None:
            consts = consts[: cfg.max_pair_consts]
        for value in consts:
            cands.append((f"{target} __ {value}", ast.Constant(value=value)))
        return cands, cfg.include_old_value

    def _emit_pairs(
        self,
        ctx: _FunctionContext,
        target: str,
        line: int,
        capture_old: bool,
    ) -> Tuple[List[ast.stmt], List[ast.stmt]]:
        """Build (pre-statements, post-statements) around an assignment."""
        cands, include_old = self._pair_candidates(ctx, target)
        site_ids: List[int] = []
        value_exprs: List[ast.expr] = []

        pre: List[ast.stmt] = []
        if include_old and capture_old:
            site = self.table.add_site(
                Scheme.SCALAR_PAIRS,
                ctx.name,
                line,
                f"new value of {target} __ old value of {target}",
            )
            site_ids.append(site.index)
            value_exprs.append(ast.Name(id="_cbi_prev", ctx=ast.Load()))
            # try: _cbi_prev = x
            # except (NameError, UnboundLocalError): _cbi_prev = _cbi.UNBOUND
            pre.append(
                ast.Try(
                    body=[
                        ast.Assign(
                            targets=[ast.Name(id="_cbi_prev", ctx=ast.Store())],
                            value=ast.Name(id=target, ctx=ast.Load()),
                        )
                    ],
                    handlers=[
                        ast.ExceptHandler(
                            type=ast.Tuple(
                                elts=[
                                    ast.Name(id="NameError", ctx=ast.Load()),
                                    ast.Name(id="UnboundLocalError", ctx=ast.Load()),
                                ],
                                ctx=ast.Load(),
                            ),
                            name=None,
                            body=[
                                ast.Assign(
                                    targets=[ast.Name(id="_cbi_prev", ctx=ast.Store())],
                                    value=self._runtime_attr("UNBOUND"),
                                )
                            ],
                        )
                    ],
                    orelse=[],
                    finalbody=[],
                )
            )

        for desc, expr in cands:
            site = self.table.add_site(Scheme.SCALAR_PAIRS, ctx.name, line, desc)
            site_ids.append(site.index)
            value_exprs.append(expr)

        if not site_ids:
            return pre, []

        pairs_call = ast.Expr(
            value=ast.Call(
                func=self._runtime_attr("pairs"),
                args=[
                    ast.Tuple(
                        elts=[ast.Constant(value=s) for s in site_ids], ctx=ast.Load()
                    ),
                    ast.Name(id=target, ctx=ast.Load()),
                    ast.Tuple(elts=value_exprs, ctx=ast.Load()),
                ],
                keywords=[],
            )
        )
        post = [
            ast.Try(
                body=[pairs_call],
                handlers=[
                    ast.ExceptHandler(
                        type=ast.Tuple(
                            elts=[
                                ast.Name(id="NameError", ctx=ast.Load()),
                                ast.Name(id="UnboundLocalError", ctx=ast.Load()),
                            ],
                            ctx=ast.Load(),
                        ),
                        name=None,
                        body=[ast.Pass()],
                    )
                ],
                orelse=[],
                finalbody=[],
            )
        ]
        if ctx.is_class_body and pre:
            # The old-value capture would otherwise survive as a class
            # attribute named ``_cbi_prev`` on every instrumented class.
            post = post + [
                ast.Delete(targets=[ast.Name(id="_cbi_prev", ctx=ast.Del())])
            ]
        return pre, post

    def _emit_float_kind(
        self, ctx: _FunctionContext, target: str, line: int
    ) -> List[ast.stmt]:
        """Statement recording the float classification of ``target``."""
        site = self.table.add_site(Scheme.FLOAT_KINDS, ctx.name, line, target)
        return [
            ast.Expr(
                value=ast.Call(
                    func=self._runtime_attr("float_kind"),
                    args=[
                        ast.Constant(value=site.index),
                        ast.Name(id=target, ctx=ast.Load()),
                    ],
                    keywords=[],
                )
            )
        ]

    # ------------------------------------------------------------------
    # Statement walking
    # ------------------------------------------------------------------
    def _note_target_names(self, target: ast.expr, ctx: _FunctionContext) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                ctx.note_assigned(node.id)

    def _note_pattern_names(self, pattern: ast.AST, ctx: _FunctionContext) -> None:
        """Record names captured by a ``match`` pattern as assigned."""
        for node in ast.walk(pattern):
            if isinstance(node, (ast.MatchAs, ast.MatchStar)):
                if node.name:
                    ctx.note_assigned(node.name)
            elif isinstance(node, ast.MatchMapping) and node.rest:
                ctx.note_assigned(node.rest)

    def _process_stmts(
        self, stmts: Sequence[ast.stmt], ctx: _FunctionContext
    ) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for stmt in stmts:
            out.extend(self._process_stmt(stmt, ctx))
        return out

    def _process_stmt(self, stmt: ast.stmt, ctx: _FunctionContext) -> List[ast.stmt]:
        cfg = self.config

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _FunctionContext(
                name=self.function_prefix + stmt.name,
                constants=_collect_constants(stmt),
                instrument=ctx.instrument and stmt.name not in cfg.exclude_functions,
            )
            args = stmt.args
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                inner.note_assigned(a.arg)
            entry_prefix: List[ast.stmt] = []
            if cfg.function_entries and inner.instrument:
                site = self.table.add_site(
                    Scheme.FUNCTION_ENTRIES, inner.name, stmt.lineno, stmt.name
                )
                entry_prefix = [
                    ast.Expr(
                        value=ast.Call(
                            func=self._runtime_attr("enter"),
                            args=[ast.Constant(value=site.index)],
                            keywords=[],
                        )
                    )
                ]
            stmt.body = entry_prefix + self._process_stmts(stmt.body, inner)
            ctx.note_assigned(stmt.name)
            return [stmt]

        if isinstance(stmt, ast.ClassDef):
            inner = _FunctionContext(
                name=self.function_prefix + stmt.name,
                constants=_collect_constants(stmt),
                instrument=ctx.instrument and stmt.name not in cfg.exclude_functions,
                is_class_body=True,
            )
            stmt.body = self._process_stmts(stmt.body, inner)
            return [stmt]

        if not ctx.instrument:
            return [stmt]

        if isinstance(stmt, ast.If):
            desc = _snippet(stmt.test)
            stmt.test = self._transform_expr(stmt.test, ctx)
            if cfg.branches:
                stmt.test = self._wrap_branch(ctx, stmt.test, desc)
            stmt.body = self._process_stmts(stmt.body, ctx)
            stmt.orelse = self._process_stmts(stmt.orelse, ctx)
            return [stmt]

        if isinstance(stmt, ast.While):
            desc = _snippet(stmt.test)
            stmt.test = self._transform_expr(stmt.test, ctx)
            if cfg.branches:
                stmt.test = self._wrap_branch(ctx, stmt.test, desc)
            stmt.body = self._process_stmts(stmt.body, ctx)
            stmt.orelse = self._process_stmts(stmt.orelse, ctx)
            return [stmt]

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            stmt.iter = self._transform_expr(stmt.iter, ctx)
            self._note_target_names(stmt.target, ctx)
            body_prefix: List[ast.stmt] = []
            if cfg.scalar_pairs and isinstance(stmt.target, ast.Name):
                _, post = self._emit_pairs(
                    ctx, stmt.target.id, stmt.lineno, capture_old=False
                )
                body_prefix = post
            stmt.body = body_prefix + self._process_stmts(stmt.body, ctx)
            stmt.orelse = self._process_stmts(stmt.orelse, ctx)
            return [stmt]

        if isinstance(stmt, _TRY_NODES):
            stmt.body = self._process_stmts(stmt.body, ctx)
            for handler in stmt.handlers:
                if handler.name:
                    ctx.note_assigned(handler.name)
                handler.body = self._process_stmts(handler.body, ctx)
            stmt.orelse = self._process_stmts(stmt.orelse, ctx)
            stmt.finalbody = self._process_stmts(stmt.finalbody, ctx)
            return [stmt]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                item.context_expr = self._transform_expr(item.context_expr, ctx)
                if item.optional_vars is not None:
                    self._note_target_names(item.optional_vars, ctx)
            stmt.body = self._process_stmts(stmt.body, ctx)
            return [stmt]

        if isinstance(stmt, ast.Match):
            # Patterns themselves must stay untouched (they are not
            # expressions), but the subject, the guards, and every case
            # body are ordinary code and get full instrumentation.  Each
            # guard is a branch site, like an ``if`` test.
            stmt.subject = self._transform_expr(stmt.subject, ctx)
            for case in stmt.cases:
                self._note_pattern_names(case.pattern, ctx)
                if case.guard is not None:
                    desc = _snippet(case.guard)
                    case.guard = self._transform_expr(case.guard, ctx)
                    if cfg.branches:
                        case.guard = self._wrap_branch(ctx, case.guard, desc)
                case.body = self._process_stmts(case.body, ctx)
            return [stmt]

        if isinstance(stmt, ast.Assign):
            stmt.value = self._transform_expr(stmt.value, ctx)
            result: List[ast.stmt] = [stmt]
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and not stmt.targets[0].id.startswith("_cbi")
            ):
                target = stmt.targets[0].id
                pre: List[ast.stmt] = []
                post: List[ast.stmt] = []
                if cfg.scalar_pairs:
                    pre, post = self._emit_pairs(
                        ctx, target, stmt.lineno, capture_old=True
                    )
                if cfg.float_kinds:
                    post = post + self._emit_float_kind(ctx, target, stmt.lineno)
                result = pre + [stmt] + post
                ctx.note_assigned(target)
            else:
                for t in stmt.targets:
                    self._note_target_names(t, ctx)
            return result

        if isinstance(stmt, ast.AugAssign):
            stmt.value = self._transform_expr(stmt.value, ctx)
            result = [stmt]
            if isinstance(stmt.target, ast.Name):
                target = stmt.target.id
                pre = []
                post = []
                if cfg.scalar_pairs:
                    pre, post = self._emit_pairs(
                        ctx, target, stmt.lineno, capture_old=True
                    )
                if cfg.float_kinds:
                    post = post + self._emit_float_kind(ctx, target, stmt.lineno)
                result = pre + [stmt] + post
                ctx.note_assigned(target)
            return result

        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                stmt.value = self._transform_expr(stmt.value, ctx)
                if cfg.scalar_pairs and isinstance(stmt.target, ast.Name):
                    target = stmt.target.id
                    pre, post = self._emit_pairs(
                        ctx, target, stmt.lineno, capture_old=True
                    )
                    ctx.note_assigned(target)
                    return pre + [stmt] + post
            if isinstance(stmt.target, ast.Name):
                ctx.note_assigned(stmt.target.id)
            return [stmt]

        if isinstance(stmt, (ast.Expr, ast.Return, ast.Raise, ast.Assert, ast.Delete)):
            return [self._transform_expr(stmt, ctx)]

        # Imports, global/nonlocal, pass/break/continue, etc.
        return [stmt]


class _ExprInstrumenter(ast.NodeTransformer):
    """Wraps calls and short-circuit/ternary tests within one expression."""

    def __init__(self, owner: Instrumenter, ctx: _FunctionContext) -> None:
        self.owner = owner
        self.ctx = ctx

    # Do not descend into nested scopes; they are handled at statement
    # level (functions/classes) or intentionally skipped (lambdas).
    def visit_FunctionDef(self, node):  # pragma: no cover - defensive
        return node

    def visit_AsyncFunctionDef(self, node):  # pragma: no cover - defensive
        return node

    def visit_ClassDef(self, node):  # pragma: no cover - defensive
        return node

    def visit_Lambda(self, node):
        return node

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if not self.owner.config.returns:
            return node
        if self.owner._excluded_call(node.func):
            return node
        return self.owner._wrap_call(self.ctx, node)

    def visit_BoolOp(self, node: ast.BoolOp):
        descs = [_snippet(v) for v in node.values]
        self.generic_visit(node)
        if self.owner.config.branches:
            node.values = [
                self.owner._wrap_branch(self.ctx, v, d)
                for v, d in zip(node.values, descs)
            ]
        return node

    def visit_IfExp(self, node: ast.IfExp):
        desc = _snippet(node.test)
        self.generic_visit(node)
        if self.owner.config.branches:
            node.test = self.owner._wrap_branch(self.ctx, node.test, desc)
        return node

    def visit_comprehension(self, node: ast.comprehension):
        descs = [_snippet(i) for i in node.ifs]
        self.generic_visit(node)
        if self.owner.config.branches:
            node.ifs = [
                self.owner._wrap_branch(self.ctx, i, d)
                for i, d in zip(node.ifs, descs)
            ]
        return node
