"""Sampled predicate instrumentation (Section 2 of the paper).

The paper adds instrumentation to C programs with a source-to-source
transformation; we do the same for Python with an :mod:`ast` transformer.
Three schemes are implemented:

* ``branches`` -- two predicates per conditional (``if``/``while`` tests,
  ternary conditions, and the operands of short-circuiting ``and``/``or``);
* ``returns`` -- six sign predicates per scalar-returning call site;
* ``scalar-pairs`` -- six order predicates per (assigned variable,
  other in-scope variable or constant) pair, including the variable's own
  previous value ("new value of x < old value of x").

Observation sites are *sampled*: each dynamic opportunity to observe a
site is taken or skipped by a statistically fair Bernoulli process,
implemented with the geometric "countdown" technique so the common case
costs one decrement.  Uniform (1/100 by default) and per-site adaptive
rates (Section 4) are both supported.
"""

from repro.instrument.sampling import (
    SamplingPlan,
    adaptive_rates,
    geometric_gap,
)
from repro.instrument.runtime import Runtime
from repro.instrument.transform import InstrumentationConfig, Instrumenter
from repro.instrument.tracer import InstrumentedProgram, instrument_source

__all__ = [
    "SamplingPlan",
    "adaptive_rates",
    "geometric_gap",
    "Runtime",
    "InstrumentationConfig",
    "Instrumenter",
    "InstrumentedProgram",
    "instrument_source",
]
