"""The harmonic-mean ``Importance`` metric (Section 3.3).

``Increase(P)`` measures *specificity* (precision): a high score means
``P`` being true rarely mis-predicts failure.  *Sensitivity* (recall) is
measured on a logarithmic scale as ``log F(P) / log NumF``, which
"moderates the impact of very large numbers of failures".  The paper
combines them with a harmonic mean:

    Importance(P) = 2 / (1/Increase(P) + 1/(log F(P) / log NumF))

and defines the score to be 0 whenever the formula is undefined (any
division by zero).  In particular predicates with non-positive
``Increase``, with ``F(P) = 0``, or with ``F(P) = 1`` (zero log) score 0.

Exact confidence intervals for the harmonic mean do not exist; following
the paper we use the delta method: the harmonic mean is differentiated
with respect to ``Increase`` (the dominant noise term -- the sensitivity
term is a deterministic function of the integer count ``F(P)``), giving

    Var(Importance) ~= (dH/dIncrease)^2 * Var(Increase)
    dH/dIncrease    =  2 * L^2 / (Increase + L)^2,   L = log F / log NumF
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.scores import PredicateScores, _z_for_confidence


@dataclass
class ImportanceScores:
    """Per-predicate ``Importance`` values with delta-method intervals.

    Attributes:
        importance: The harmonic-mean score (0 where undefined).
        sensitivity: ``log F(P) / log NumF`` (0 where undefined).
        lo / hi: Delta-method confidence bounds, clipped to ``[0, 1]``.
        se: Delta-method standard error.
    """

    importance: np.ndarray
    sensitivity: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    se: np.ndarray

    @property
    def n_predicates(self) -> int:
        """Number of predicates scored."""
        return int(self.importance.shape[0])


def log_sensitivity(F: np.ndarray, num_failing: int) -> np.ndarray:
    """Return the normalised log-transformed sensitivity term.

    ``log F(P) / log NumF`` with 0 where the ratio is undefined
    (``F(P) == 0``, or ``NumF <= 1`` making the denominator zero).
    """
    F = np.asarray(F, dtype=np.float64)
    if num_failing <= 1:
        return np.zeros_like(F)
    denom = np.log(float(num_failing))
    with np.errstate(divide="ignore"):
        sens = np.where(F > 0, np.log(np.maximum(F, 1e-300)) / denom, 0.0)
    return sens


def harmonic_importance(increase: np.ndarray, sensitivity: np.ndarray) -> np.ndarray:
    """Harmonic mean of specificity and sensitivity, 0 where undefined.

    The formula divides by both terms, so either term being non-positive
    makes the score undefined; the paper defines such scores to be 0.
    """
    increase = np.asarray(increase, dtype=np.float64)
    sensitivity = np.asarray(sensitivity, dtype=np.float64)
    ok = (increase > 0) & (sensitivity > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        h = np.where(ok, 2.0 / (1.0 / np.maximum(increase, 1e-300) + 1.0 / np.maximum(sensitivity, 1e-300)), 0.0)
    return h


def importance_scores(
    scores: PredicateScores,
    num_failing: Optional[int] = None,
    confidence: Optional[float] = None,
) -> ImportanceScores:
    """Compute ``Importance(P)`` for every predicate.

    Args:
        scores: Output of :func:`repro.core.scores.compute_scores`.
        num_failing: ``NumF``; defaults to the population's failing count.
        confidence: Confidence level for the delta-method interval;
            defaults to the level used for the ``Increase`` interval.

    Returns:
        An :class:`ImportanceScores`.
    """
    if num_failing is None:
        num_failing = scores.num_failing
    if confidence is None:
        confidence = scores.confidence

    sens = log_sensitivity(scores.F, num_failing)
    imp = harmonic_importance(scores.increase, sens)

    # Delta method: propagate Var(Increase) through the harmonic mean.
    ok = imp > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = np.maximum(scores.increase + sens, 1e-300)
        grad = np.where(ok, 2.0 * sens * sens / (denom * denom), 0.0)
    se = grad * scores.increase_se
    crit = _z_for_confidence(confidence)
    lo = np.clip(imp - crit * se, 0.0, 1.0)
    hi = np.clip(imp + crit * se, 0.0, 1.0)
    return ImportanceScores(importance=imp, sensitivity=sens, lo=lo, hi=hi, se=se)
