"""On-line use of failure predictors (Section 5 / Section 6).

"It is interesting to consider applications in which the predictors are
used on-line by the running program; for example, knowing that a strong
predictor of program failure has become true may enable preemptive
action."  (Section 5; Section 6 relates this to proactive-maintenance
systems like the SDF.)

:class:`OnlineMonitor` watches a set of selected predictors during a
single instrumented run and fires a callback the first time any of them
is observed true -- typically long before the eventual crash, since the
Increase-based predictors capture the *cause* condition, not the crash
site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.predicates import Predicate
from repro.instrument.runtime import Runtime


@dataclass
class Alert:
    """One predictor firing during a monitored run.

    Attributes:
        predicate: The predictor that turned true.
        importance: Its importance score from the offline analysis.
        observation_index: How many observations (of watched sites) had
            been made when it fired -- a proxy for "how early".
    """

    predicate: Predicate
    importance: float
    observation_index: int


class OnlineMonitor:
    """Watches selected predictors during a run of an instrumented program.

    The monitor wraps the runtime's observation helpers; the program
    itself is untouched.  Usage::

        monitor = OnlineMonitor(program.runtime,
                                {pred_index: importance, ...},
                                on_alert=take_preemptive_action)
        monitor.install()
        program.begin_run(plan, seed)
        entry(job)               # on_alert fires as soon as a predictor
        monitor.uninstall()      # is observed true

    Alerts fire at most once per predictor per run.
    """

    def __init__(
        self,
        runtime: Runtime,
        watched: Dict[int, float],
        on_alert: Optional[Callable[[Alert], None]] = None,
    ) -> None:
        self.runtime = runtime
        self.watched = dict(watched)
        self.on_alert = on_alert
        self.alerts: List[Alert] = []
        self._fired: set = set()
        self._observations = 0
        self._installed = False
        self._orig_branch = None
        self._orig_ret = None
        self._orig_pairs = None
        # predicate index -> (site, offset) for quick checks
        table = runtime.table
        self._by_site: Dict[int, List[int]] = {}
        for pred_index in self.watched:
            pred = table.predicates[pred_index]
            self._by_site.setdefault(pred.site_index, []).append(pred_index)

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wrap the runtime's observation helpers."""
        if self._installed:
            return
        self._installed = True
        self._orig_branch = self.runtime.branch
        self._orig_ret = self.runtime.ret
        self._orig_pairs = self.runtime.pairs

        def branch(site, value):
            result = self._orig_branch(site, value)
            if site in self._by_site:
                self._observations += 1
                self._check(site)
            return result

        def ret(site, value):
            result = self._orig_ret(site, value)
            if site in self._by_site:
                self._observations += 1
                self._check(site)
            return result

        def pairs(sites, x, ys):
            self._orig_pairs(sites, x, ys)
            for site in sites:
                if site in self._by_site:
                    self._observations += 1
                    self._check(site)

        self.runtime.branch = branch  # type: ignore[method-assign]
        self.runtime.ret = ret  # type: ignore[method-assign]
        self.runtime.pairs = pairs  # type: ignore[method-assign]

    def uninstall(self) -> None:
        """Restore the runtime's original helpers.

        The wrappers live as instance attributes shadowing the class
        methods, so removal restores the originals exactly.
        """
        if not self._installed:
            return
        for name in ("branch", "ret", "pairs"):
            try:
                delattr(self.runtime, name)
            except AttributeError:
                pass
        self._installed = False

    def reset(self) -> None:
        """Clear per-run state (call between runs)."""
        self.alerts = []
        self._fired = set()
        self._observations = 0

    @property
    def fired(self) -> bool:
        """Whether any watched predictor has fired this run."""
        return bool(self.alerts)

    # ------------------------------------------------------------------
    def _check(self, site: int) -> None:
        true_counts = self.runtime._true
        for pred_index in self._by_site[site]:
            if pred_index in self._fired:
                continue
            if true_counts[pred_index] > 0:
                self._fired.add(pred_index)
                alert = Alert(
                    predicate=self.runtime.table.predicates[pred_index],
                    importance=self.watched[pred_index],
                    observation_index=self._observations,
                )
                self.alerts.append(alert)
                if self.on_alert is not None:
                    self.on_alert(alert)


def monitor_from_elimination(runtime: Runtime, elimination, top: int = 5) -> OnlineMonitor:
    """Build a monitor watching an elimination result's top predictors."""
    watched = {
        sel.predicate.index: sel.effective.importance
        for sel in elimination.selected[:top]
    }
    return OnlineMonitor(runtime, watched)
