"""The ``Increase(P) > 0`` pruning filter (Section 3.1).

"Nearly all predicates (often 98% or 99%) are not predictive of anything.
These non-predictors are best identified and discarded as quickly as
possible."  The paper retains a predicate only if the 95% confidence
interval of its ``Increase`` score lies strictly above zero, which both
discards irrelevant predicates (unreachable ones, program invariants,
predicates control-dependent on a true cause) and removes high-``Increase``
predicates supported by too few observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores, compute_scores
from repro.obs import enabled as _obs_enabled, gauge as _obs_gauge, timer as _obs_timer


@dataclass
class PruningResult:
    """Outcome of the pruning pass.

    Attributes:
        kept: Boolean mask over predicates that survive.
        scores: The :class:`PredicateScores` the decision was based on.
        n_initial: Number of predicates before pruning.
        n_kept: Number of survivors.
    """

    kept: np.ndarray
    scores: PredicateScores

    @property
    def n_initial(self) -> int:
        """Number of predicates considered."""
        return int(self.kept.shape[0])

    @property
    def n_kept(self) -> int:
        """Number of predicates retained."""
        return int(self.kept.sum())

    @property
    def kept_indices(self) -> np.ndarray:
        """Dense indices of the surviving predicates."""
        return np.flatnonzero(self.kept)

    @property
    def reduction(self) -> float:
        """Fraction of predicates discarded (the paper reports ~0.99)."""
        if self.n_initial == 0:
            return 0.0
        return 1.0 - self.n_kept / self.n_initial


def prune_mask(
    scores: PredicateScores,
    confidence: float = DEFAULT_CONFIDENCE,
    min_true_runs: int = 1,
    method: str = "interval",
) -> np.ndarray:
    """The pruning decision as a pure, elementwise function of scores.

    Every term -- the interval bound, the z-test p-value, the ``defined``
    and support masks -- is computed per predicate with no cross-predicate
    interaction, so applying this to any predicate-axis slice of the
    scores and concatenating gives bit-identical results to applying it
    to the whole table.  That property is what lets the parallel engine
    (:mod:`repro.core.engine`) prune partitions independently;
    :func:`prune_predicates` wraps the same mask with bookkeeping.
    """
    if method == "interval":
        positive = scores.increase_lo > 0.0
    elif method == "ztest":
        from repro.core.scores import z_test_pvalues

        # p < alpha <=> z > critical for defined rows; undefined rows
        # carry p = 1.0, so they can never pass the filter even without
        # the explicit `defined` mask below.
        pvalues = z_test_pvalues(scores)
        positive = (pvalues < 1.0 - confidence) & (scores.increase > 0.0)
    else:
        raise ValueError(f"unknown pruning method {method!r}")
    kept = scores.defined & positive & (scores.F + scores.S >= min_true_runs)
    return np.asarray(kept, dtype=bool)


def prune_predicates(
    reports: Optional[ReportSet] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    scores: Optional[PredicateScores] = None,
    min_true_runs: int = 1,
    method: str = "interval",
) -> PruningResult:
    """Keep predicates whose ``Increase`` is credibly positive.

    Two equivalent-in-spirit filters are provided:

    * ``"interval"`` (the paper's): keep ``P`` when the two-sided
      ``confidence`` interval of ``Increase(P)`` lies strictly above 0;
    * ``"ztest"`` (the Section 3.2 reading): keep ``P`` when the
      one-sided two-proportion test rejects ``H0: pf = ps`` in favour of
      ``H1: pf > ps`` at level ``alpha = 1 - confidence``.

    Section 3.2 shows ``Increase(P) > 0  <=>  pf(P) > ps(P)``, so the two
    filters agree on direction and differ only in how they weigh sample
    size.

    Args:
        reports: The feedback-report population.  May be ``None`` when
            ``scores`` is supplied -- the filter is a pure function of the
            scores, which lets shard stores prune from incrementally
            accumulated statistics without materialising any matrix.
        confidence: Confidence level (paper: 0.95).
        scores: Optional precomputed scores for the same population.
        min_true_runs: Additionally require at least this many runs with
            ``R(P) = 1`` (1 keeps the paper's behaviour; higher values are
            an extension for extremely noisy data).
        method: ``"interval"`` or ``"ztest"``.

    Returns:
        A :class:`PruningResult`.
    """
    if scores is None:
        if reports is None:
            raise ValueError("prune_predicates needs reports or precomputed scores")
        scores = compute_scores(reports, confidence=confidence)
    with _obs_timer("analysis.prune"):
        kept = prune_mask(
            scores,
            confidence=confidence,
            min_true_runs=min_true_runs,
            method=method,
        )
    result = PruningResult(kept=kept, scores=scores)
    if _obs_enabled():
        _obs_gauge("analysis.pruning_initial", float(result.n_initial))
        _obs_gauge("analysis.pruning_kept", float(result.n_kept))
    return result
