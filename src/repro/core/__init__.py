"""The cause isolation algorithm (Sections 3 and 5 of the paper).

Submodules are intentionally small and composable:

``predicates``
    Static model of instrumentation sites and the predicates they carry.
``reports``
    Feedback reports (``R(P)`` bit vectors plus observation counts).
``scores``
    ``Failure`` / ``Context`` / ``Increase`` and their statistics.
``importance``
    The harmonic-mean ranking metric with delta-method intervals.
``pruning``
    The ``Increase(P) > 0`` confidence-interval filter.
``elimination``
    Iterative redundancy elimination with the three discard strategies.
``affinity``
    Affinity lists relating selected predictors to their shadows.
``ranking``
    The three ranking strategies compared in Table 1.
``thermometer``
    Bug-thermometer visualisation.
``runs_needed``
    The Table 8 "how many runs are needed" estimator.
``truth``
    Ground-truth bug profiles for controlled experiments.
"""
