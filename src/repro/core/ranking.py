"""The three ranking strategies compared in Table 1 (Section 3.3).

Table 1 contrasts, for MOSS without redundancy elimination:

(a) sort descending by ``F(P)`` -- favours super-bug-style predicates that
    appear in many failing *and* many successful runs (big white band);
(b) sort descending by ``Increase(P)`` -- favours deterministic sub-bug
    predictors with tiny failure counts (all-red thermometers, small F);
(c) sort descending by the harmonic-mean ``Importance`` -- balances both.

Each strategy operates on predicates that survive the ``Increase(P) > 0``
discard, as in the paper ("after predicates where Increase(P) = 0 are
discarded" for strategy (a)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.importance import ImportanceScores, importance_scores
from repro.core.measures import DEFAULT_MEASURE, Measure, get as get_measure
from repro.core.predicates import Predicate
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores, ScoreRow, compute_scores


class RankingStrategy(enum.Enum):
    """Which score orders the predicate list."""

    BY_FAILURE_COUNT = "F(P)"
    BY_INCREASE = "Increase(P)"
    BY_IMPORTANCE = "harmonic mean"


@dataclass(frozen=True)
class RankedPredicate:
    """One row of a ranked predicate table (mirrors Table 1's columns)."""

    rank: int
    predicate: Predicate
    row: ScoreRow
    importance: float
    sort_key: float


@dataclass
class RankingResult:
    """A full ranking under one strategy."""

    strategy: RankingStrategy
    entries: List[RankedPredicate]
    scores: PredicateScores
    importance: ImportanceScores

    def __len__(self) -> int:
        return len(self.entries)


def rank_predicates(
    reports: ReportSet,
    strategy: RankingStrategy,
    candidates: Optional[np.ndarray] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    top: Optional[int] = None,
    scores: Optional[PredicateScores] = None,
) -> RankingResult:
    """Rank candidate predicates under one of the Table 1 strategies.

    Args:
        reports: Feedback-report population.
        strategy: Which sort key to use.
        candidates: Boolean candidate mask (default: predicates whose
            ``Increase`` is positive and defined, matching the paper's
            "after predicates where Increase(P)=0 are discarded").
        confidence: Confidence level for intervals.
        top: Optional truncation of the returned list.
        scores: Optional precomputed scores for this population.

    Returns:
        A :class:`RankingResult` with rows in decreasing key order.
    """
    if scores is None:
        scores = compute_scores(reports, confidence=confidence)
    return rank_from_scores(
        reports.table, scores, strategy, candidates=candidates, top=top
    )


def rank_from_scores(
    table,
    scores: PredicateScores,
    strategy: RankingStrategy,
    candidates: Optional[np.ndarray] = None,
    top: Optional[int] = None,
) -> RankingResult:
    """Rank precomputed scores without any run-level data.

    The scores may come from anywhere that produces a
    :class:`~repro.core.scores.PredicateScores` -- a materialised
    population, incrementally accumulated shard statistics
    (``SufficientStats.to_scores``), or the parallel engine's
    predicate-partitioned scoring -- which is what lets ``analyze
    --stats-only`` rank a store without reconstructing a single run.

    Ties in the sort key resolve in predicate-index order: the stable
    descending argsort keeps equal-key predicates in their original
    (ascending-index) positions.

    Args:
        table: The :class:`~repro.core.predicates.PredicateTable` the
            score rows refer to.
        scores: Scores for every predicate in ``table``.
        strategy: Which sort key to use.
        candidates: Boolean candidate mask (default: ``Increase`` positive
            and defined, as in :func:`rank_predicates`).
        top: Optional truncation of the returned list.
    """
    imp = importance_scores(scores)

    if candidates is None:
        candidates = scores.defined & (scores.increase > 0.0)
    else:
        candidates = np.asarray(candidates, dtype=bool)

    if strategy is RankingStrategy.BY_FAILURE_COUNT:
        key = scores.F.astype(np.float64)
    elif strategy is RankingStrategy.BY_INCREASE:
        key = scores.increase
    else:
        key = imp.importance

    masked = np.where(candidates, key, -np.inf)
    order = np.argsort(-masked, kind="stable")
    entries: List[RankedPredicate] = []
    for rank, idx in enumerate(order, start=1):
        if not np.isfinite(masked[idx]) or not candidates[idx]:
            break
        entries.append(
            RankedPredicate(
                rank=rank,
                predicate=table.predicates[int(idx)],
                row=scores.row(int(idx)),
                importance=float(imp.importance[idx]),
                sort_key=float(key[idx]),
            )
        )
        if top is not None and len(entries) >= top:
            break
    return RankingResult(strategy=strategy, entries=entries, scores=scores, importance=imp)


@dataclass
class MeasureRanking:
    """A full-table ranking under one registered suspiciousness measure.

    Unlike the Table 1 strategies, the default candidate set is *every*
    predicate: the bake-off harness grades measures on how early they
    surface a faulty site in the complete list, and gating candidates on
    ``Increase > 0`` would bias the comparison toward the paper's own
    measures.  Pass ``candidates`` to restrict (the CLI passes the
    pruning survivors).
    """

    measure: Measure
    entries: List[RankedPredicate]
    scores: PredicateScores
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.entries)


def rank_by_measure(
    table,
    scores: PredicateScores,
    measure: str = DEFAULT_MEASURE,
    candidates: Optional[np.ndarray] = None,
    top: Optional[int] = None,
    values: Optional[np.ndarray] = None,
) -> MeasureRanking:
    """Rank predicates by any registered suspiciousness measure.

    Same deterministic order as :func:`rank_from_scores`: stable
    descending argsort on the measure values, ties resolving in
    predicate-index order.  For ``measure="importance"`` with the
    paper's candidate mask this reproduces the historical
    ``BY_IMPORTANCE`` ranking bit-identically, because the registry
    entry delegates to :func:`repro.core.importance.importance_scores`.

    Args:
        table: The :class:`~repro.core.predicates.PredicateTable`.
        scores: Scores for every predicate in ``table``.
        measure: Registered measure name (:mod:`repro.core.measures`).
        candidates: Optional boolean mask restricting the ranking;
            default ranks the whole table.
        top: Optional truncation of the returned list.
        values: Optional precomputed values of ``measure`` over
            ``scores`` (e.g. ``EngineScoring.measure_values``); computed
            here when omitted.
    """
    m = get_measure(measure)
    if values is None:
        values = m.values(scores)
    else:
        values = np.asarray(values, dtype=np.float64)
    imp = importance_scores(scores)
    if candidates is None:
        candidates = np.ones(scores.n_predicates, dtype=bool)
    else:
        candidates = np.asarray(candidates, dtype=bool)

    masked = np.where(candidates, values, -np.inf)
    order = np.argsort(-masked, kind="stable")
    entries: List[RankedPredicate] = []
    for rank, idx in enumerate(order, start=1):
        if not candidates[idx]:
            break
        entries.append(
            RankedPredicate(
                rank=rank,
                predicate=table.predicates[int(idx)],
                row=scores.row(int(idx)),
                importance=float(imp.importance[idx]),
                sort_key=float(values[idx]),
            )
        )
        if top is not None and len(entries) >= top:
            break
    return MeasureRanking(measure=m, entries=entries, scores=scores, values=values)
