"""Feedback reports: the input to the cause isolation algorithm.

A feedback report ``R`` (Section 1) consists of one bit recording whether
the run succeeded or failed, plus, for each predicate ``P``, whether ``P``
was *observed* (its site was reached and sampled) and whether it was
*observed to be true* at least once.  Following the paper we also retain
the raw counts ("in reality, we count the number of times P is observed to
be true, but the analysis ... only uses whether P is observed to be true at
least once"); the counts additionally give relative site coverage.

:class:`ReportSet` stores a whole population of runs as sparse matrices so
the scoring passes are vectorised NumPy/SciPy operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.core.predicates import PredicateTable


@dataclass
class FeedbackReport:
    """A single run's feedback report.

    Attributes:
        failed: ``True`` for a failing run (the ``Crash`` label; any
            success/failure labelling works, e.g. an output oracle).
        site_observed: Map from site index to the number of times the site
            was sampled during the run.
        pred_true: Map from predicate index to the number of times the
            predicate was observed to be true.
        stack: Optional crash stack signature (innermost frame last); used
            only by the stack-trace baseline, never by the algorithm.
        meta: Free-form per-run metadata (e.g. the generator seed).
    """

    failed: bool
    site_observed: Dict[int, int] = field(default_factory=dict)
    pred_true: Dict[int, int] = field(default_factory=dict)
    stack: Optional[Tuple[str, ...]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def observed_true(self, predicate_index: int) -> bool:
        """Return ``R(P)``: was the predicate observed true at least once?"""
        return self.pred_true.get(predicate_index, 0) > 0


class ReportBuilder:
    """Accumulates :class:`FeedbackReport` objects into a :class:`ReportSet`."""

    def __init__(self, table: PredicateTable) -> None:
        self.table = table
        self._reports: List[FeedbackReport] = []

    def add(self, report: FeedbackReport) -> None:
        """Append one run's report."""
        self._reports.append(report)

    def add_run(
        self,
        failed: bool,
        site_observed: Mapping[int, int],
        pred_true: Mapping[int, int],
        stack: Optional[Sequence[str]] = None,
        **meta: object,
    ) -> None:
        """Convenience wrapper building and appending a report."""
        self.add(
            FeedbackReport(
                failed=failed,
                site_observed=dict(site_observed),
                pred_true=dict(pred_true),
                stack=tuple(stack) if stack is not None else None,
                meta=dict(meta),
            )
        )

    def __len__(self) -> int:
        return len(self._reports)

    def build(self) -> "ReportSet":
        """Assemble the accumulated reports into a :class:`ReportSet`."""
        n_runs = len(self._reports)
        n_sites = self.table.n_sites
        n_preds = self.table.n_predicates

        outcomes = np.zeros(n_runs, dtype=bool)
        stacks: List[Optional[Tuple[str, ...]]] = []
        metas: List[Dict[str, object]] = []

        srow: List[int] = []
        scol: List[int] = []
        sval: List[int] = []
        prow: List[int] = []
        pcol: List[int] = []
        pval: List[int] = []

        for i, rep in enumerate(self._reports):
            outcomes[i] = rep.failed
            stacks.append(rep.stack)
            metas.append(rep.meta)
            for site, count in rep.site_observed.items():
                if count > 0:
                    srow.append(i)
                    scol.append(site)
                    sval.append(count)
            for pred, count in rep.pred_true.items():
                if count > 0:
                    prow.append(i)
                    pcol.append(pred)
                    pval.append(count)

        site_counts = sparse.csr_matrix(
            (np.asarray(sval, dtype=np.int64), (srow, scol)), shape=(n_runs, n_sites)
        )
        true_counts = sparse.csr_matrix(
            (np.asarray(pval, dtype=np.int64), (prow, pcol)), shape=(n_runs, n_preds)
        )
        return ReportSet(self.table, outcomes, site_counts, true_counts, stacks, metas)


class ReportSet:
    """A population of feedback reports in matrix form.

    Attributes:
        table: The :class:`PredicateTable` the column indices refer to.
        failed: Boolean array of shape ``(n_runs,)``; ``True`` = failure.
        site_counts: ``(n_runs, n_sites)`` sparse matrix of observation
            counts per site.
        true_counts: ``(n_runs, n_preds)`` sparse matrix of
            observed-to-be-true counts per predicate.
        stacks: Per-run crash stack signatures (``None`` for successes or
            for failures with no captured stack).
        metas: Per-run metadata dictionaries.
    """

    def __init__(
        self,
        table: PredicateTable,
        failed: np.ndarray,
        site_counts: sparse.csr_matrix,
        true_counts: sparse.csr_matrix,
        stacks: Optional[List[Optional[Tuple[str, ...]]]] = None,
        metas: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        self.table = table
        self.failed = np.asarray(failed, dtype=bool)
        self.site_counts = site_counts.tocsr()
        self.true_counts = true_counts.tocsr()
        self.stacks = stacks if stacks is not None else [None] * len(self.failed)
        self.metas = metas if metas is not None else [{} for _ in range(len(self.failed))]
        #: Site index of each predicate column, for mapping site-level
        #: observation counts to predicate-level "P observed" statistics.
        self.pred_site = np.asarray(
            [p.site_index for p in table.predicates], dtype=np.int64
        )
        self._true_csc: Optional[sparse.csc_matrix] = None
        self._true_ind: Optional[sparse.csc_matrix] = None
        self._site_ind: Optional[sparse.csc_matrix] = None

    # ------------------------------------------------------------------
    # Shape and basic statistics
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        """Total number of runs in the set."""
        return int(self.failed.shape[0])

    @property
    def n_predicates(self) -> int:
        """Number of predicate columns."""
        return int(self.true_counts.shape[1])

    @property
    def n_sites(self) -> int:
        """Number of site columns."""
        return int(self.site_counts.shape[1])

    @property
    def num_failing(self) -> int:
        """``NumF``: total number of failing runs."""
        return int(self.failed.sum())

    @property
    def num_successful(self) -> int:
        """Total number of successful runs."""
        return self.n_runs - self.num_failing

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def _csc(self) -> sparse.csc_matrix:
        if self._true_csc is None:
            self._true_csc = self.true_counts.tocsc()
        return self._true_csc

    @staticmethod
    def _indicator(counts: sparse.csr_matrix) -> sparse.csc_matrix:
        """0/1 int64 copy of a count matrix, in CSC for fast column sums.

        Stored entries that happen to be zero (none are written by
        :class:`ReportBuilder`, but archives are not trusted) map to 0,
        matching ``counts.astype(bool)``.
        """
        return sparse.csc_matrix(
            sparse.csr_matrix(
                ((counts.data != 0).astype(np.int64), counts.indices, counts.indptr),
                shape=counts.shape,
            )
        )

    def true_indicator(self) -> sparse.csc_matrix:
        """Cached ``R(P) = 1`` indicator matrix (``(n_runs, n_preds)``, int64).

        Masked column sums over this matrix -- one sparse matvec per
        outcome class -- are what :func:`repro.core.scores.sufficient_counts`
        reduces to, so the cache is built once per population instead of
        ``astype(bool)`` allocating a fresh copy on every scoring round.
        """
        if self._true_ind is None:
            self._true_ind = self._indicator(self.true_counts)
        return self._true_ind

    def site_indicator(self) -> sparse.csc_matrix:
        """Cached site-observed indicator matrix (``(n_runs, n_sites)``, int64)."""
        if self._site_ind is None:
            self._site_ind = self._indicator(self.site_counts)
        return self._site_ind

    def runs_where_true(self, predicate_index: int) -> np.ndarray:
        """Return the run indices where ``R(P) = 1`` for the predicate."""
        col = self._csc()
        start, end = col.indptr[predicate_index], col.indptr[predicate_index + 1]
        return col.indices[start:end].copy()

    def true_mask(self, predicate_index: int) -> np.ndarray:
        """Return a boolean run mask where ``R(P) = 1``."""
        mask = np.zeros(self.n_runs, dtype=bool)
        mask[self.runs_where_true(predicate_index)] = True
        return mask

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    def subset(self, run_mask: np.ndarray) -> "ReportSet":
        """Return a new :class:`ReportSet` restricted to ``run_mask`` rows."""
        run_mask = np.asarray(run_mask, dtype=bool)
        idx = np.flatnonzero(run_mask)
        return ReportSet(
            self.table,
            self.failed[idx],
            self.site_counts[idx],
            self.true_counts[idx],
            [self.stacks[i] for i in idx],
            [self.metas[i] for i in idx],
        )

    def relabelled(self, to_success_mask: np.ndarray) -> "ReportSet":
        """Return a copy with the masked runs relabelled as successful.

        Implements discard strategy (3) of Section 5: "relabel all failing
        runs where R(P)=1 as successful runs".
        """
        failed = self.failed.copy()
        failed[np.asarray(to_success_mask, dtype=bool)] = False
        return ReportSet(
            self.table, failed, self.site_counts, self.true_counts, self.stacks, self.metas
        )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Sequence["ReportSet"]) -> "ReportSet":
        """Concatenate report sets collected against the same table.

        Runs keep their relative order (all of ``parts[0]`` first, then
        ``parts[1]``, ...), so merging the shards of a population in
        collection order reproduces the monolithic population exactly:
        every per-run row is preserved, and all scoring statistics --
        which are sums over runs -- are bit-identical to scoring one big
        set (``tests/store/test_store.py`` asserts exact integer equality
        of ``F``/``S``/``F_obs``/``S_obs``).

        Args:
            parts: One or more report sets whose tables have the same
                :meth:`~repro.core.predicates.PredicateTable.signature`.

        Raises:
            ValueError: On an empty sequence or mismatched tables.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge an empty sequence of report sets")
        if len(parts) == 1:
            first = parts[0]
            return cls(
                first.table,
                first.failed,
                first.site_counts,
                first.true_counts,
                list(first.stacks),
                list(first.metas),
            )
        sig = parts[0].table.signature()
        for i, part in enumerate(parts[1:], start=1):
            if part.table.signature() != sig:
                raise ValueError(
                    f"report set {i} was collected against a different "
                    "predicate table; refusing to merge mismatched "
                    "instrumentations"
                )
        stacks: List[Optional[Tuple[str, ...]]] = []
        metas: List[Dict[str, object]] = []
        for part in parts:
            stacks.extend(part.stacks)
            metas.extend(part.metas)
        return cls(
            parts[0].table,
            np.concatenate([p.failed for p in parts]),
            sparse.vstack([p.site_counts for p in parts], format="csr"),
            sparse.vstack([p.true_counts for p in parts], format="csr"),
            stacks,
            metas,
        )

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def site_coverage(self) -> np.ndarray:
        """Total observation count per site across all runs.

        The paper notes the sum of a site's predicate counters reveals the
        site's relative coverage; this is the per-site analogue.
        """
        return np.asarray(self.site_counts.sum(axis=0)).ravel()

    def __repr__(self) -> str:
        return (
            f"ReportSet(runs={self.n_runs}, failing={self.num_failing}, "
            f"sites={self.n_sites}, predicates={self.n_predicates})"
        )
