"""Feedback-report persistence.

The real CBI system collected feedback reports from deployed user
populations and analysed them offline, so report sets need a durable
on-disk form.  This module stores a :class:`~repro.core.reports.ReportSet`
(plus optional :class:`~repro.core.truth.GroundTruth`) as a single
NumPy ``.npz`` archive:

* sparse counter matrices in CSR component form;
* outcome labels, crash-stack signatures, and per-run metadata as JSON;
* the predicate table (sites and predicate names) so an archive is
  self-describing and can be analysed without re-instrumenting.

Round-tripping is exact: ``load_reports(save_reports(r)) == r`` in all
analysed quantities (a property test asserts score equality).
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.predicates import PredicateTable, Scheme
from repro.core.reports import ReportSet
from repro.core.truth import GroundTruth

#: Archive format version, bumped on incompatible layout changes.
FORMAT_VERSION = 1


def _table_to_json(table: PredicateTable) -> str:
    sites = [
        {
            "scheme": s.scheme.value,
            "function": s.function,
            "line": s.line,
            "description": s.description,
            "predicates": [
                table.predicates[i].name for i in table.predicate_indices_at(s.index)
            ],
        }
        for s in table.sites
    ]
    return json.dumps(sites)


def _table_from_json(text: str) -> PredicateTable:
    table = PredicateTable()
    for spec in json.loads(text):
        scheme = Scheme(spec["scheme"])
        if scheme is Scheme.CUSTOM:
            table.add_custom_site(
                spec["function"], spec["line"], spec["description"], spec["predicates"]
            )
        else:
            table.add_site(
                scheme,
                spec["function"],
                spec["line"],
                spec["description"],
                predicate_names=spec["predicates"],
            )
    return table


def _csr_parts(matrix: sparse.csr_matrix, prefix: str) -> Dict[str, np.ndarray]:
    m = matrix.tocsr()
    return {
        f"{prefix}_data": m.data,
        f"{prefix}_indices": m.indices,
        f"{prefix}_indptr": m.indptr,
        f"{prefix}_shape": np.asarray(m.shape, dtype=np.int64),
    }


def _csr_from_parts(archive, prefix: str) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (
            archive[f"{prefix}_data"],
            archive[f"{prefix}_indices"],
            archive[f"{prefix}_indptr"],
        ),
        shape=tuple(archive[f"{prefix}_shape"]),
    )


def save_reports(
    path: str,
    reports: ReportSet,
    truth: Optional[GroundTruth] = None,
) -> None:
    """Write a report set (and optional ground truth) to ``path``.

    Args:
        path: Destination filename (conventionally ``.npz``).
        reports: The report population.
        truth: Optional run-aligned ground truth.
    """
    payload: Dict[str, np.ndarray] = {
        "format_version": np.asarray([FORMAT_VERSION]),
        "failed": reports.failed,
    }
    payload.update(_csr_parts(reports.site_counts, "sites"))
    payload.update(_csr_parts(reports.true_counts, "preds"))
    payload["table_json"] = np.asarray(_table_to_json(reports.table))
    payload["stacks_json"] = np.asarray(
        json.dumps([list(s) if s is not None else None for s in reports.stacks])
    )
    payload["metas_json"] = np.asarray(json.dumps(reports.metas, default=str))
    if truth is not None:
        truth._check_aligned(reports)
        payload["truth_bugs_json"] = np.asarray(json.dumps(list(truth.bug_ids)))
        payload["truth_runs_json"] = np.asarray(
            json.dumps([sorted(occ) for occ in truth.occurrences])
        )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)


def load_reports(path: str) -> Tuple[ReportSet, Optional[GroundTruth]]:
    """Read a report set written by :func:`save_reports`.

    Returns:
        ``(reports, truth)``; ``truth`` is ``None`` when the archive was
        written without ground truth.
    """
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported report archive version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        table = _table_from_json(str(archive["table_json"]))
        stacks_raw = json.loads(str(archive["stacks_json"]))
        stacks = [tuple(s) if s is not None else None for s in stacks_raw]
        metas = json.loads(str(archive["metas_json"]))
        reports = ReportSet(
            table,
            archive["failed"],
            _csr_from_parts(archive, "sites"),
            _csr_from_parts(archive, "preds"),
            stacks,
            metas,
        )
        truth: Optional[GroundTruth] = None
        if "truth_bugs_json" in archive:
            truth = GroundTruth(bug_ids=json.loads(str(archive["truth_bugs_json"])))
            for bugs in json.loads(str(archive["truth_runs_json"])):
                truth.add_run(bugs)
    return reports, truth
