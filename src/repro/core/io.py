"""Feedback-report persistence.

The real CBI system collected feedback reports from deployed user
populations and analysed them offline, so report sets need a durable
on-disk form.  This module stores a :class:`~repro.core.reports.ReportSet`
(plus optional :class:`~repro.core.truth.GroundTruth`) as a single
NumPy ``.npz`` archive:

* sparse counter matrices in CSR component form;
* outcome labels, crash-stack signatures, and per-run metadata as JSON;
* the predicate table (sites and predicate names) so an archive is
  self-describing and can be analysed without re-instrumenting.

Round-tripping is exact: ``load_reports(save_reports(r)) == r`` in all
analysed quantities (a property test asserts score equality), and per-run
metadata must be JSON-clean -- :func:`save_reports` raises on values that
would come back as a different type (see :func:`validate_metas`).

Format version 2 (the shard format of :mod:`repro.store`) extends the
version 1 layout with:

* ``table_sha`` -- the predicate table's content signature, so shards of
  one population can be checked for instrumentation compatibility before
  merging;
* ``stats_*`` -- the per-predicate sufficient statistics (``F``, ``S``,
  ``F_obs``, ``S_obs``) and population totals (``NumF``, ``NumS``), so a
  shard can be *scored* by reading six small arrays without rebuilding
  its run-by-predicate matrices;
* strict (validated) per-run metadata, where version 1 silently
  stringified non-JSON values via ``json.dumps(default=str)``.

Format version 3 (this module's current writer) abandons the ``.npz``
zip container for a **memory-mappable columnar layout**: a magic tag, a
JSON header carrying every non-array field plus an array table of
contents, then the raw little-endian array bytes, each 64-byte aligned
and uncompressed.  Readers ``mmap`` the file once and hand back zero-copy
views -- :func:`load_shard_stats` touches only the four statistic
columns' pages, never decompressing or copying the run matrices, which
is what lets ``analyze --jobs`` and the serve daemon's incremental
scorer stream shards at page-cache speed.  The byte stream is a pure
function of the report population (sorted-key JSON, no timestamps), so
shard SHAs stay reproducible.  See DESIGN.md ("Archive format v3") for
the on-disk spec.

Version 1 and 2 archives remain loadable: the loaders sniff the leading
magic bytes and dispatch, and ``tests/core/test_io.py`` pins the
compatibility.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import zipfile
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.predicates import PredicateTable, Scheme
from repro.core.reports import ReportSet
from repro.core.truth import GroundTruth

#: Archive format version, bumped on incompatible layout changes.
FORMAT_VERSION = 3

#: All versions :func:`load_reports` can read.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Versions :func:`save_reports` can write (v2 keeps append sessions to
#: pre-v3 stores homogeneous; see ``repro.store.shards``).
WRITABLE_VERSIONS = (2, 3)

#: Leading magic of a version-3 archive (v1/v2 ``.npz`` files start with
#: the zip signature ``PK``, so the two container families are sniffable
#: from the first 8 bytes).
V3_MAGIC = b"RPROSHD3"

#: Alignment of every array section in a v3 archive.
_V3_ALIGN = 64

#: Fixed-size v3 preamble: magic + little-endian uint64 header length.
_V3_PREAMBLE = len(V3_MAGIC) + 8

#: JSON-representable scalar types that survive a round trip unchanged.
_JSON_SCALARS = (str, int, float, bool, type(None))


class ArchiveError(ValueError):
    """Base class for report-archive read failures.

    Subclasses ``ValueError`` so pre-existing callers that caught the
    loader's old untyped errors keep working.
    """


class ArchiveCorruptError(ArchiveError):
    """The archive's bytes cannot be parsed (truncated, flipped, ...)."""


class ArchiveVersionError(ArchiveError):
    """The archive declares a format version this build cannot read."""


#: Exceptions :func:`load_reports` translates into :class:`ArchiveCorruptError`.
#: ``KeyError`` covers missing archive members, ``zlib.error`` a flipped
#: byte inside a compressed member, ``BadZipFile``/``EOFError``/``OSError``
#: truncation, and ``ValueError`` both damaged embedded JSON
#: (``JSONDecodeError``) and ``np.load`` rejecting bytes that are not an
#: archive at all.  ``struct.error`` and ``NotImplementedError`` are
#: ``zipfile`` leaks on flipped bytes in member headers (a corrupted
#: length field, or a compression-method byte flipped to an unsupported
#: codec -- found by the archive fuzz tests).  :class:`ArchiveError`
#: itself is re-raised unchanged by the loaders despite being a
#: ``ValueError``.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    KeyError,
    EOFError,
    OSError,
    ValueError,
    struct.error,
    NotImplementedError,
)


def file_sha256(path: str) -> str:
    """SHA-256 of a file's bytes, streamed in 1 MiB blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def atomic_write_bytes_via(path: str, write) -> None:
    """Write a file crash-safely: temp file + flush + fsync + rename.

    ``write`` is called with the open binary handle.  Either the complete
    new file appears at ``path`` or nothing does; a crash mid-write
    leaves at most an orphaned ``.tmp.<pid>`` file, never a truncated
    archive under the final name.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def _table_to_json(table: PredicateTable) -> str:
    sites = [
        {
            "scheme": s.scheme.value,
            "function": s.function,
            "line": s.line,
            "description": s.description,
            "predicates": [
                table.predicates[i].name for i in table.predicate_indices_at(s.index)
            ],
        }
        for s in table.sites
    ]
    return json.dumps(sites)


def _table_from_json(text: str) -> PredicateTable:
    table = PredicateTable()
    for spec in json.loads(text):
        scheme = Scheme(spec["scheme"])
        if scheme is Scheme.CUSTOM:
            table.add_custom_site(
                spec["function"], spec["line"], spec["description"], spec["predicates"]
            )
        else:
            table.add_site(
                scheme,
                spec["function"],
                spec["line"],
                spec["description"],
                predicate_names=spec["predicates"],
            )
    return table


def _csr_parts(matrix: sparse.csr_matrix, prefix: str) -> Dict[str, np.ndarray]:
    m = matrix.tocsr()
    return {
        f"{prefix}_data": m.data,
        f"{prefix}_indices": m.indices,
        f"{prefix}_indptr": m.indptr,
        f"{prefix}_shape": np.asarray(m.shape, dtype=np.int64),
    }


def _csr_from_parts(archive, prefix: str) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (
            archive[f"{prefix}_data"],
            archive[f"{prefix}_indices"],
            archive[f"{prefix}_indptr"],
        ),
        shape=tuple(archive[f"{prefix}_shape"]),
    )


def _check_json_clean(value: object, where: str) -> None:
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, list):
        for i, item in enumerate(value):
            _check_json_clean(item, f"{where}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"report meta {where} has non-string key {key!r} "
                    f"({type(key).__name__}); JSON would turn it into a "
                    "string and break exact round-tripping"
                )
            _check_json_clean(item, f"{where}[{key!r}]")
        return
    raise ValueError(
        f"report meta {where} has non-JSON value {value!r} "
        f"({type(value).__name__}); convert it to str/int/float/bool/None/"
        "list/dict before saving so load_reports returns exactly what was "
        "saved"
    )


def validate_metas(metas: List[Dict[str, object]]) -> None:
    """Check per-run metadata survives a JSON round trip *exactly*.

    ``json.dumps(..., default=str)`` would silently stringify anything,
    so a run tagged ``seed=np.int64(7)`` or ``path=Path(...)`` would load
    back as a different type, violating this module's round-tripping
    contract.  Only ``str``/``int``/``float``/``bool``/``None`` scalars,
    lists of them, and string-keyed dicts are accepted; tuples are
    rejected too (JSON would return lists).

    Raises:
        ValueError: Naming the run index and key of the first offender.
    """
    for run, meta in enumerate(metas):
        _check_json_clean(meta, f"run {run}")


def save_reports(
    path: str,
    reports: ReportSet,
    truth: Optional[GroundTruth] = None,
    version: Optional[int] = None,
) -> None:
    """Write a report set (and optional ground truth) to ``path``.

    Writes the current (version 3, memory-mappable) layout by default;
    see the module docstring for the format history.

    Args:
        path: Destination filename.
        reports: The report population.
        truth: Optional run-aligned ground truth.
        version: Archive format to write; ``None`` means the current
            :data:`FORMAT_VERSION`.  Passing ``2`` writes the legacy
            ``.npz`` layout so appends to a pre-v3 shard store keep the
            store homogeneous.

    The archive is written crash-safely (temp file + fsync + atomic
    rename), so an interrupted save never leaves a truncated archive at
    ``path``.

    Raises:
        ValueError: When a per-run meta is not JSON-clean (see
            :func:`validate_metas`) or ``version`` is not writable.
    """
    if version is None:
        version = FORMAT_VERSION
    if version not in WRITABLE_VERSIONS:
        raise ValueError(
            f"cannot write report archive version {version} "
            f"(writable: {', '.join(map(str, WRITABLE_VERSIONS))})"
        )
    validate_metas(reports.metas)
    if truth is not None:
        truth._check_aligned(reports)
    if version == 2:
        atomic_write_bytes_via(
            path, lambda handle: _write_reports_v2(handle, reports, truth)
        )
    else:
        atomic_write_bytes_via(
            path, lambda handle: _write_reports_v3(handle, reports, truth)
        )


def _write_reports_v2(handle, reports: ReportSet, truth: Optional[GroundTruth]) -> None:
    """Write the legacy version-2 ``.npz`` layout to an open handle."""
    from repro.core.scores import sufficient_counts

    F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
    payload: Dict[str, np.ndarray] = {
        "format_version": np.asarray([2]),
        "failed": reports.failed,
        "table_sha": np.asarray(reports.table.signature()),
        "stats_F": F,
        "stats_S": S,
        "stats_F_obs": F_obs,
        "stats_S_obs": S_obs,
        "stats_num_failing": np.asarray([num_failing], dtype=np.int64),
        "stats_num_successful": np.asarray([num_successful], dtype=np.int64),
    }
    payload.update(_csr_parts(reports.site_counts, "sites"))
    payload.update(_csr_parts(reports.true_counts, "preds"))
    payload["table_json"] = np.asarray(_table_to_json(reports.table))
    payload["stacks_json"] = np.asarray(
        json.dumps([list(s) if s is not None else None for s in reports.stacks])
    )
    payload["metas_json"] = np.asarray(json.dumps(reports.metas))
    if truth is not None:
        payload["truth_bugs_json"] = np.asarray(json.dumps(list(truth.bug_ids)))
        payload["truth_runs_json"] = np.asarray(
            json.dumps([sorted(occ) for occ in truth.occurrences])
        )
    np.savez_compressed(handle, **payload)


def _v3_aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`_V3_ALIGN` boundary."""
    return (offset + _V3_ALIGN - 1) // _V3_ALIGN * _V3_ALIGN


def _write_reports_v3(handle, reports: ReportSet, truth: Optional[GroundTruth]) -> None:
    """Write the version-3 memory-mappable layout to an open handle.

    Layout: :data:`V3_MAGIC`, a little-endian ``uint64`` header length,
    the sorted-key JSON header, zero padding to a 64-byte boundary, then
    each array's raw bytes at the 64-byte-aligned offsets recorded in the
    header's ``arrays`` table of contents (offsets are relative to the
    start of the data section).  Everything is deterministic given the
    report population, so shard checksums stay reproducible.
    """
    from repro.core.scores import sufficient_counts

    F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
    sites = reports.site_counts.tocsr()
    preds = reports.true_counts.tocsr()
    # Statistics columns first: a stats-only reader touches only the
    # file's leading pages.
    columns = [
        ("stats_F", F),
        ("stats_S", S),
        ("stats_F_obs", F_obs),
        ("stats_S_obs", S_obs),
        ("failed", reports.failed),
        ("sites_data", sites.data),
        ("sites_indices", sites.indices),
        ("sites_indptr", sites.indptr),
        ("preds_data", preds.data),
        ("preds_indices", preds.indices),
        ("preds_indptr", preds.indptr),
    ]
    toc: Dict[str, Dict[str, object]] = {}
    sections = []
    offset = 0
    for name, raw in columns:
        arr = np.ascontiguousarray(raw)
        if arr.dtype.byteorder == ">":  # pragma: no cover - big-endian host
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        offset = _v3_aligned(offset)
        toc[name] = {
            "dtype": arr.dtype.str,
            "shape": [int(d) for d in arr.shape],
            "offset": offset,
            "nbytes": int(arr.nbytes),
        }
        sections.append((offset, arr))
        offset += arr.nbytes
    header: Dict[str, object] = {
        "format_version": 3,
        "table_sha": reports.table.signature(),
        "num_failing": int(num_failing),
        "num_successful": int(num_successful),
        "sites_shape": [int(d) for d in sites.shape],
        "preds_shape": [int(d) for d in preds.shape],
        "table_json": _table_to_json(reports.table),
        "stacks_json": json.dumps(
            [list(s) if s is not None else None for s in reports.stacks]
        ),
        "metas_json": json.dumps(reports.metas),
        "arrays": toc,
    }
    if truth is not None:
        header["truth_bugs_json"] = json.dumps(list(truth.bug_ids))
        header["truth_runs_json"] = json.dumps(
            [sorted(occ) for occ in truth.occurrences]
        )
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    handle.write(V3_MAGIC)
    handle.write(struct.pack("<Q", len(header_bytes)))
    handle.write(header_bytes)
    data_start = _v3_aligned(_V3_PREAMBLE + len(header_bytes))
    handle.write(b"\x00" * (data_start - _V3_PREAMBLE - len(header_bytes)))
    pos = 0
    for section_offset, arr in sections:
        if section_offset > pos:
            handle.write(b"\x00" * (section_offset - pos))
            pos = section_offset
        handle.write(arr.data)
        pos += arr.nbytes


def _v3_read_header(path: str) -> Tuple[Dict[str, object], int]:
    """Parse a v3 archive's JSON header.

    Returns ``(header, data_start)`` where ``data_start`` is the absolute
    file offset of the aligned data section.  Raises plain ``ValueError``
    (or ``KeyError``) on damage -- the public loaders translate those
    into :class:`ArchiveCorruptError` -- and
    :class:`ArchiveVersionError` directly on an unreadable version.
    """
    with open(path, "rb") as fh:
        preamble = fh.read(_V3_PREAMBLE)
        if len(preamble) < _V3_PREAMBLE or not preamble.startswith(V3_MAGIC):
            raise ValueError("truncated v3 archive preamble")
        (header_len,) = struct.unpack("<Q", preamble[len(V3_MAGIC) :])
        if header_len > (1 << 31):
            raise ValueError(f"implausible v3 header length {header_len}")
        header_bytes = fh.read(header_len)
    if len(header_bytes) != header_len:
        raise ValueError("truncated v3 archive header")
    header = json.loads(header_bytes.decode("utf-8"))
    if not isinstance(header, dict):
        raise ValueError("v3 archive header is not a JSON object")
    version = int(header["format_version"])
    if version not in SUPPORTED_VERSIONS:
        raise ArchiveVersionError(
            f"unsupported report archive version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return header, _v3_aligned(_V3_PREAMBLE + header_len)


def _v3_map(path: str) -> mmap.mmap:
    """Memory-map an archive read-only (the fd may close immediately;
    the mapping keeps the pages alive until the arrays viewing it die)."""
    with open(path, "rb") as fh:
        return mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)


def _v3_array(buf, data_start: int, toc: Dict[str, object], name: str) -> np.ndarray:
    """Zero-copy view of one array section; bounds-checked, read-only."""
    try:
        spec = toc[name]
    except (KeyError, TypeError):
        raise ValueError(f"v3 archive missing array section {name!r}") from None
    dtype = np.dtype(str(spec["dtype"]))
    shape = tuple(int(d) for d in spec["shape"])
    nbytes = int(spec["nbytes"])
    count = 1
    for dim in shape:
        count *= dim
    if count * dtype.itemsize != nbytes:
        raise ValueError(f"array section {name!r} has inconsistent shape/nbytes")
    offset = data_start + int(spec["offset"])
    if offset < data_start or offset + nbytes > len(buf):
        raise ValueError(f"array section {name!r} overruns the archive")
    return np.frombuffer(buf, dtype=dtype, count=count, offset=offset).reshape(shape)


def _v3_check_extent(buf, data_start: int, toc: Dict[str, object]) -> None:
    """Check the mapped file covers every section the TOC declares.

    A stats-only reader touches just the leading pages, so without this
    a shard truncated in its trailing matrix sections would still yield
    statistics; the commit protocol treats any byte loss as corruption.
    """
    if not isinstance(toc, dict) or not toc:
        raise ValueError("v3 archive has no array table of contents")
    end = max(int(s["offset"]) + int(s["nbytes"]) for s in toc.values())
    if data_start + end > len(buf):
        raise ValueError(
            f"v3 archive truncated: declares {data_start + end} bytes, "
            f"file has {len(buf)}"
        )


def _is_v3(path: str) -> bool:
    """True when the file at ``path`` starts with the v3 magic bytes."""
    with open(path, "rb") as fh:
        return fh.read(len(V3_MAGIC)) == V3_MAGIC


def _load_reports_v3(path: str) -> Tuple[ReportSet, Optional[GroundTruth]]:
    header, data_start = _v3_read_header(path)
    buf = _v3_map(path)
    toc = header["arrays"]
    _v3_check_extent(buf, data_start, toc)

    def arr(name: str) -> np.ndarray:
        return _v3_array(buf, data_start, toc, name)

    table = _table_from_json(str(header["table_json"]))
    stacks_raw = json.loads(str(header["stacks_json"]))
    stacks = [tuple(s) if s is not None else None for s in stacks_raw]
    metas = json.loads(str(header["metas_json"]))
    site_counts = sparse.csr_matrix(
        (arr("sites_data"), arr("sites_indices"), arr("sites_indptr")),
        shape=tuple(int(d) for d in header["sites_shape"]),
    )
    true_counts = sparse.csr_matrix(
        (arr("preds_data"), arr("preds_indices"), arr("preds_indptr")),
        shape=tuple(int(d) for d in header["preds_shape"]),
    )
    reports = ReportSet(table, arr("failed"), site_counts, true_counts, stacks, metas)
    truth: Optional[GroundTruth] = None
    if "truth_bugs_json" in header:
        truth = GroundTruth(bug_ids=json.loads(str(header["truth_bugs_json"])))
        for bugs in json.loads(str(header["truth_runs_json"])):
            truth.add_run(bugs)
    return reports, truth


def _check_version(archive) -> int:
    version = int(archive["format_version"][0])
    if version not in SUPPORTED_VERSIONS:
        raise ArchiveVersionError(
            f"unsupported report archive version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return version


def load_reports(path: str) -> Tuple[ReportSet, Optional[GroundTruth]]:
    """Read a report set written by :func:`save_reports`.

    Dispatches on the leading magic bytes: version 3 archives are
    memory-mapped (count matrices come back as zero-copy read-only
    views), while version 1/2 ``.npz`` archives load through ``np.load``
    as before (version 1 metas may contain stringified values -- that
    layout wrote them with ``default=str``).

    Returns:
        ``(reports, truth)``; ``truth`` is ``None`` when the archive was
        written without ground truth.

    Raises:
        ArchiveCorruptError: When the file cannot be parsed -- truncated
            zip or v3 header, flipped bytes inside a compressed member,
            missing members or array sections, out-of-bounds section
            offsets, or damaged embedded JSON.
        ArchiveVersionError: When the declared format version is not one
            of :data:`SUPPORTED_VERSIONS`.
        FileNotFoundError: When ``path`` does not exist.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        if _is_v3(path):
            return _load_reports_v3(path)
        with np.load(path, allow_pickle=False) as archive:
            _check_version(archive)
            table = _table_from_json(str(archive["table_json"]))
            stacks_raw = json.loads(str(archive["stacks_json"]))
            stacks = [tuple(s) if s is not None else None for s in stacks_raw]
            metas = json.loads(str(archive["metas_json"]))
            reports = ReportSet(
                table,
                archive["failed"],
                _csr_from_parts(archive, "sites"),
                _csr_from_parts(archive, "preds"),
                stacks,
                metas,
            )
            truth: Optional[GroundTruth] = None
            if "truth_bugs_json" in archive:
                truth = GroundTruth(bug_ids=json.loads(str(archive["truth_bugs_json"])))
                for bugs in json.loads(str(archive["truth_runs_json"])):
                    truth.add_run(bugs)
    except ArchiveError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArchiveCorruptError(
            f"cannot read report archive {path}: {exc!r}"
        ) from exc
    return reports, truth


def load_shard_stats(
    path: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int, Optional[str]]:
    """Read only the sufficient statistics from an archive.

    For version 3 archives this memory-maps the file and returns
    zero-copy (read-only) views of the four statistic columns, which sit
    on the file's leading pages -- no decompression, no copy, no matrix
    reconstruction.  Version 2 archives read six small dense arrays out
    of the ``.npz``.  Version 1 archives lack the embedded statistics,
    so they are derived by loading the shard's matrices (one shard at a
    time -- still bounded by the largest single shard).

    Returns:
        ``(F, S, F_obs, S_obs, num_failing, num_successful, table_sha)``;
        ``table_sha`` is ``None`` for version 1 archives (the signature
        is instead derived from the materialised table).  The arrays may
        be read-only views backed by the file mapping; copy before
        mutating (see ``SufficientStats.materialized``).

    Raises:
        ArchiveCorruptError: When the statistics cannot be read (see
            :func:`load_reports` for the failure classes covered).  The
            version 1 derivation path is covered too: a truncated or
            garbage legacy archive surfaces as a typed error here, never
            as a raw numpy/zip/JSON exception.
        ArchiveVersionError: On an unsupported format version.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        if _is_v3(path):
            header, data_start = _v3_read_header(path)
            buf = _v3_map(path)
            toc = header["arrays"]
            _v3_check_extent(buf, data_start, toc)
            return (
                _v3_array(buf, data_start, toc, "stats_F"),
                _v3_array(buf, data_start, toc, "stats_S"),
                _v3_array(buf, data_start, toc, "stats_F_obs"),
                _v3_array(buf, data_start, toc, "stats_S_obs"),
                int(header["num_failing"]),
                int(header["num_successful"]),
                str(header["table_sha"]),
            )
        with np.load(path, allow_pickle=False) as archive:
            version = _check_version(archive)
            if version >= 2:
                return (
                    np.asarray(archive["stats_F"], dtype=np.int64),
                    np.asarray(archive["stats_S"], dtype=np.int64),
                    np.asarray(archive["stats_F_obs"], dtype=np.int64),
                    np.asarray(archive["stats_S_obs"], dtype=np.int64),
                    int(archive["stats_num_failing"][0]),
                    int(archive["stats_num_successful"][0]),
                    str(archive["table_sha"]),
                )
        from repro.core.scores import sufficient_counts

        # Version 1 fallback: derive the statistics from the full archive
        # and report the loaded table's signature so integrity checks
        # still apply.  This runs inside the corruption-translating try:
        # a v1 archive damaged past the version stamp used to escape as a
        # raw numpy/JSON error from load_reports' re-read of the file.
        reports, _ = load_reports(path)
        F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
        return (
            F,
            S,
            F_obs,
            S_obs,
            num_failing,
            num_successful,
            reports.table.signature(),
        )
    except ArchiveError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArchiveCorruptError(
            f"cannot read shard statistics from {path}: {exc!r}"
        ) from exc
