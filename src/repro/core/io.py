"""Feedback-report persistence.

The real CBI system collected feedback reports from deployed user
populations and analysed them offline, so report sets need a durable
on-disk form.  This module stores a :class:`~repro.core.reports.ReportSet`
(plus optional :class:`~repro.core.truth.GroundTruth`) as a single
NumPy ``.npz`` archive:

* sparse counter matrices in CSR component form;
* outcome labels, crash-stack signatures, and per-run metadata as JSON;
* the predicate table (sites and predicate names) so an archive is
  self-describing and can be analysed without re-instrumenting.

Round-tripping is exact: ``load_reports(save_reports(r)) == r`` in all
analysed quantities (a property test asserts score equality), and per-run
metadata must be JSON-clean -- :func:`save_reports` raises on values that
would come back as a different type (see :func:`validate_metas`).

Format version 2 (the shard format of :mod:`repro.store`) extends the
version 1 layout with:

* ``table_sha`` -- the predicate table's content signature, so shards of
  one population can be checked for instrumentation compatibility before
  merging;
* ``stats_*`` -- the per-predicate sufficient statistics (``F``, ``S``,
  ``F_obs``, ``S_obs``) and population totals (``NumF``, ``NumS``), so a
  shard can be *scored* by reading six small arrays without rebuilding
  its run-by-predicate matrices;
* strict (validated) per-run metadata, where version 1 silently
  stringified non-JSON values via ``json.dumps(default=str)``.

Version 1 archives remain loadable: :func:`load_reports` accepts both
layouts and ``tests/core/test_io.py`` pins the compatibility.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.core.predicates import PredicateTable, Scheme
from repro.core.reports import ReportSet
from repro.core.truth import GroundTruth

#: Archive format version, bumped on incompatible layout changes.
FORMAT_VERSION = 2

#: All versions :func:`load_reports` can read.
SUPPORTED_VERSIONS = (1, 2)

#: JSON-representable scalar types that survive a round trip unchanged.
_JSON_SCALARS = (str, int, float, bool, type(None))


class ArchiveError(ValueError):
    """Base class for report-archive read failures.

    Subclasses ``ValueError`` so pre-existing callers that caught the
    loader's old untyped errors keep working.
    """


class ArchiveCorruptError(ArchiveError):
    """The archive's bytes cannot be parsed (truncated, flipped, ...)."""


class ArchiveVersionError(ArchiveError):
    """The archive declares a format version this build cannot read."""


#: Exceptions :func:`load_reports` translates into :class:`ArchiveCorruptError`.
#: ``KeyError`` covers missing archive members, ``zlib.error`` a flipped
#: byte inside a compressed member, ``BadZipFile``/``EOFError``/``OSError``
#: truncation, and ``ValueError`` both damaged embedded JSON
#: (``JSONDecodeError``) and ``np.load`` rejecting bytes that are not an
#: archive at all.  :class:`ArchiveError` itself is re-raised unchanged
#: by the loaders despite being a ``ValueError``.
_CORRUPTION_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    KeyError,
    EOFError,
    OSError,
    ValueError,
)


def file_sha256(path: str) -> str:
    """SHA-256 of a file's bytes, streamed in 1 MiB blocks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def atomic_write_bytes_via(path: str, write) -> None:
    """Write a file crash-safely: temp file + flush + fsync + rename.

    ``write`` is called with the open binary handle.  Either the complete
    new file appears at ``path`` or nothing does; a crash mid-write
    leaves at most an orphaned ``.tmp.<pid>`` file, never a truncated
    archive under the final name.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def _table_to_json(table: PredicateTable) -> str:
    sites = [
        {
            "scheme": s.scheme.value,
            "function": s.function,
            "line": s.line,
            "description": s.description,
            "predicates": [
                table.predicates[i].name for i in table.predicate_indices_at(s.index)
            ],
        }
        for s in table.sites
    ]
    return json.dumps(sites)


def _table_from_json(text: str) -> PredicateTable:
    table = PredicateTable()
    for spec in json.loads(text):
        scheme = Scheme(spec["scheme"])
        if scheme is Scheme.CUSTOM:
            table.add_custom_site(
                spec["function"], spec["line"], spec["description"], spec["predicates"]
            )
        else:
            table.add_site(
                scheme,
                spec["function"],
                spec["line"],
                spec["description"],
                predicate_names=spec["predicates"],
            )
    return table


def _csr_parts(matrix: sparse.csr_matrix, prefix: str) -> Dict[str, np.ndarray]:
    m = matrix.tocsr()
    return {
        f"{prefix}_data": m.data,
        f"{prefix}_indices": m.indices,
        f"{prefix}_indptr": m.indptr,
        f"{prefix}_shape": np.asarray(m.shape, dtype=np.int64),
    }


def _csr_from_parts(archive, prefix: str) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (
            archive[f"{prefix}_data"],
            archive[f"{prefix}_indices"],
            archive[f"{prefix}_indptr"],
        ),
        shape=tuple(archive[f"{prefix}_shape"]),
    )


def _check_json_clean(value: object, where: str) -> None:
    if isinstance(value, _JSON_SCALARS):
        return
    if isinstance(value, list):
        for i, item in enumerate(value):
            _check_json_clean(item, f"{where}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValueError(
                    f"report meta {where} has non-string key {key!r} "
                    f"({type(key).__name__}); JSON would turn it into a "
                    "string and break exact round-tripping"
                )
            _check_json_clean(item, f"{where}[{key!r}]")
        return
    raise ValueError(
        f"report meta {where} has non-JSON value {value!r} "
        f"({type(value).__name__}); convert it to str/int/float/bool/None/"
        "list/dict before saving so load_reports returns exactly what was "
        "saved"
    )


def validate_metas(metas: List[Dict[str, object]]) -> None:
    """Check per-run metadata survives a JSON round trip *exactly*.

    ``json.dumps(..., default=str)`` would silently stringify anything,
    so a run tagged ``seed=np.int64(7)`` or ``path=Path(...)`` would load
    back as a different type, violating this module's round-tripping
    contract.  Only ``str``/``int``/``float``/``bool``/``None`` scalars,
    lists of them, and string-keyed dicts are accepted; tuples are
    rejected too (JSON would return lists).

    Raises:
        ValueError: Naming the run index and key of the first offender.
    """
    for run, meta in enumerate(metas):
        _check_json_clean(meta, f"run {run}")


def save_reports(
    path: str,
    reports: ReportSet,
    truth: Optional[GroundTruth] = None,
) -> None:
    """Write a report set (and optional ground truth) to ``path``.

    Writes the current (version 2) layout; see the module docstring for
    what it adds over version 1.

    Args:
        path: Destination filename (conventionally ``.npz``).
        reports: The report population.
        truth: Optional run-aligned ground truth.

    The archive is written crash-safely (temp file + fsync + atomic
    rename), so an interrupted save never leaves a truncated archive at
    ``path``.

    Raises:
        ValueError: When a per-run meta is not JSON-clean
            (see :func:`validate_metas`).
    """
    from repro.core.scores import sufficient_counts

    validate_metas(reports.metas)
    F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
    payload: Dict[str, np.ndarray] = {
        "format_version": np.asarray([FORMAT_VERSION]),
        "failed": reports.failed,
        "table_sha": np.asarray(reports.table.signature()),
        "stats_F": F,
        "stats_S": S,
        "stats_F_obs": F_obs,
        "stats_S_obs": S_obs,
        "stats_num_failing": np.asarray([num_failing], dtype=np.int64),
        "stats_num_successful": np.asarray([num_successful], dtype=np.int64),
    }
    payload.update(_csr_parts(reports.site_counts, "sites"))
    payload.update(_csr_parts(reports.true_counts, "preds"))
    payload["table_json"] = np.asarray(_table_to_json(reports.table))
    payload["stacks_json"] = np.asarray(
        json.dumps([list(s) if s is not None else None for s in reports.stacks])
    )
    payload["metas_json"] = np.asarray(json.dumps(reports.metas))
    if truth is not None:
        truth._check_aligned(reports)
        payload["truth_bugs_json"] = np.asarray(json.dumps(list(truth.bug_ids)))
        payload["truth_runs_json"] = np.asarray(
            json.dumps([sorted(occ) for occ in truth.occurrences])
        )
    atomic_write_bytes_via(path, lambda handle: np.savez_compressed(handle, **payload))


def _check_version(archive) -> int:
    version = int(archive["format_version"][0])
    if version not in SUPPORTED_VERSIONS:
        raise ArchiveVersionError(
            f"unsupported report archive version {version} "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return version


def load_reports(path: str) -> Tuple[ReportSet, Optional[GroundTruth]]:
    """Read a report set written by :func:`save_reports`.

    Accepts both the current version 2 layout and legacy version 1
    archives (whose metas may contain stringified values -- version 1
    wrote them with ``default=str``).

    Returns:
        ``(reports, truth)``; ``truth`` is ``None`` when the archive was
        written without ground truth.

    Raises:
        ArchiveCorruptError: When the file cannot be parsed -- truncated
            zip, flipped bytes inside a compressed member, missing
            members, or damaged embedded JSON.
        ArchiveVersionError: When the declared format version is not one
            of :data:`SUPPORTED_VERSIONS`.
        FileNotFoundError: When ``path`` does not exist.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            _check_version(archive)
            table = _table_from_json(str(archive["table_json"]))
            stacks_raw = json.loads(str(archive["stacks_json"]))
            stacks = [tuple(s) if s is not None else None for s in stacks_raw]
            metas = json.loads(str(archive["metas_json"]))
            reports = ReportSet(
                table,
                archive["failed"],
                _csr_from_parts(archive, "sites"),
                _csr_from_parts(archive, "preds"),
                stacks,
                metas,
            )
            truth: Optional[GroundTruth] = None
            if "truth_bugs_json" in archive:
                truth = GroundTruth(bug_ids=json.loads(str(archive["truth_bugs_json"])))
                for bugs in json.loads(str(archive["truth_runs_json"])):
                    truth.add_run(bugs)
    except ArchiveError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArchiveCorruptError(
            f"cannot read report archive {path}: {exc!r}"
        ) from exc
    return reports, truth


def load_shard_stats(
    path: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int, Optional[str]]:
    """Read only the sufficient statistics from an archive.

    For version 2 archives this touches six small dense arrays and never
    reconstructs the run-by-predicate matrices, which is what keeps
    incremental scoring over a shard directory memory-bounded.  Version 1
    archives lack the embedded statistics, so they are derived by loading
    the shard's matrices (one shard at a time -- still bounded by the
    largest single shard).

    Returns:
        ``(F, S, F_obs, S_obs, num_failing, num_successful, table_sha)``;
        ``table_sha`` is ``None`` for version 1 archives (the signature
        is instead derived from the materialised table).

    Raises:
        ArchiveCorruptError: When the statistics cannot be read (see
            :func:`load_reports` for the failure classes covered).
        ArchiveVersionError: On an unsupported format version.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = _check_version(archive)
            if version >= 2:
                return (
                    np.asarray(archive["stats_F"], dtype=np.int64),
                    np.asarray(archive["stats_S"], dtype=np.int64),
                    np.asarray(archive["stats_F_obs"], dtype=np.int64),
                    np.asarray(archive["stats_S_obs"], dtype=np.int64),
                    int(archive["stats_num_failing"][0]),
                    int(archive["stats_num_successful"][0]),
                    str(archive["table_sha"]),
                )
    except ArchiveError:
        raise
    except _CORRUPTION_ERRORS as exc:
        raise ArchiveCorruptError(
            f"cannot read shard statistics from {path}: {exc!r}"
        ) from exc
    from repro.core.scores import sufficient_counts

    # Version 1 fallback: derive the statistics from the full archive and
    # report the loaded table's signature so integrity checks still apply.
    reports, _ = load_reports(path)
    F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
    return F, S, F_obs, S_obs, num_failing, num_successful, reports.table.signature()
