"""Intra-site logical redundancy elimination (the Section 3.4 ablation).

"Finally, we studied an optimization in which we eliminated logically
redundant predicates within instrumentation sites prior to running the
iterative algorithm.  However, the elimination algorithm proved to be
sufficiently powerful that we obtained nearly identical experimental
results with and without this optimization, indicating it is
unnecessary."

Two predicates are *logically redundant* here when they were observed
true in exactly the same set of runs.  Within a site that happens
constantly: e.g. a return value that is always positive makes ``> 0``,
``>= 0`` and ``!= 0`` indistinguishable.  This module implements the
optimisation so the ablation benchmark can reproduce the paper's
"nearly identical" finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.reports import ReportSet


@dataclass
class DedupResult:
    """Outcome of intra-site deduplication.

    Attributes:
        representative: Boolean mask of predicates kept (one
            representative per equivalence class per site).
        class_of: For each predicate, the index of its representative
            (itself when kept).
        n_classes: Number of equivalence classes across all sites.
    """

    representative: np.ndarray
    class_of: np.ndarray
    n_classes: int

    @property
    def n_removed(self) -> int:
        """Predicates dropped as intra-site duplicates."""
        return int((~self.representative).sum())


def intra_site_dedup(reports: ReportSet) -> DedupResult:
    """Group same-site predicates with identical ``R(P)`` run patterns.

    The earliest predicate of each class (the lowest offset in the
    family) is kept as the representative; the rest are marked
    redundant.  Predicates never observed true form one class per site
    and keep a single representative, since they are all equally
    uninformative.

    Returns:
        A :class:`DedupResult` usable as an ``eliminate`` candidate mask
        (``result.representative & pruning.kept``).
    """
    n_preds = reports.n_predicates
    representative = np.ones(n_preds, dtype=bool)
    class_of = np.arange(n_preds, dtype=np.int64)
    n_classes = 0

    for site_index in range(reports.table.n_sites):
        family = reports.table.predicate_indices_at(site_index)
        seen: Dict[Tuple[int, ...], int] = {}
        for pred in family:
            pattern = tuple(reports.runs_where_true(pred).tolist())
            rep = seen.get(pattern)
            if rep is None:
                seen[pattern] = pred
                n_classes += 1
            else:
                representative[pred] = False
                class_of[pred] = rep
    return DedupResult(
        representative=representative, class_of=class_of, n_classes=n_classes
    )
