"""``Failure``, ``Context`` and ``Increase`` scores (Sections 3.1-3.2).

For a predicate ``P`` over a set of runs:

* ``F(P)`` / ``S(P)``: failing / successful runs where ``P`` was observed
  to be true at least once;
* ``F(P obs)`` / ``S(P obs)``: failing / successful runs where the *site*
  of ``P`` was reached and sampled at least once;
* ``Failure(P) = F(P) / (S(P) + F(P))``;
* ``Context(P) = F(P obs) / (S(P obs) + F(P obs))``;
* ``Increase(P) = Failure(P) - Context(P)``.

The module also provides the statistical machinery the paper attaches to
these scores: a standard-error estimate and confidence interval for
``Increase``, and the two-proportion ``Z`` statistic of Section 3.2 with
``pf(P) = F(P)/F(P obs)`` and ``ps(P) = S(P)/S(P obs)``.  Section 3.2
proves ``Increase(P) > 0  <=>  pf(P) > ps(P)``; tests rely on that
equivalence.

All functions are vectorised over the full predicate table.  Quantities
whose denominators are zero are *undefined*; they are reported as ``0.0``
with the corresponding bit cleared in the ``defined`` mask rather than as
NaN, so downstream ranking code needs no NaN handling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse, stats

from repro.core.reports import ReportSet
from repro.obs import inc as _obs_inc, timer as _obs_timer

#: Two-sided confidence level used throughout the paper.
DEFAULT_CONFIDENCE = 0.95


def _z_for_confidence(confidence: float) -> float:
    """Return the two-sided normal critical value for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


@dataclass
class PredicateScores:
    """Vectorised per-predicate score arrays over one run population.

    All arrays have length ``n_predicates``.  ``defined`` marks predicates
    whose ``Failure`` and ``Context`` are both well defined (observed true
    at least once, site observed at least once).

    Attributes:
        F: ``F(P)`` -- failing runs where ``P`` observed true.
        S: ``S(P)`` -- successful runs where ``P`` observed true.
        F_obs: ``F(P observed)``.
        S_obs: ``S(P observed)``.
        failure: ``Failure(P)`` (0 where undefined).
        context: ``Context(P)`` (0 where undefined).
        increase: ``Increase(P)`` (0 where undefined).
        increase_se: Standard error of ``Increase(P)``.
        increase_lo / increase_hi: Confidence interval bounds.
        pf: ``pf(P) = F(P)/F(P obs)`` (0 where undefined).
        ps: ``ps(P) = S(P)/S(P obs)`` (0 where undefined).
        z: Two-proportion ``Z`` statistic of Section 3.2 (0 where undefined).
        z_defined: Boolean mask of predicates whose ``z`` is well defined
            (site observed in both outcomes, pooled variance positive).
        defined: Boolean mask of well-defined predicates.
        num_failing: ``NumF`` for the population scored.
        num_successful: Number of successful runs in the population.
        confidence: The confidence level used for the interval.
    """

    F: np.ndarray
    S: np.ndarray
    F_obs: np.ndarray
    S_obs: np.ndarray
    failure: np.ndarray
    context: np.ndarray
    increase: np.ndarray
    increase_se: np.ndarray
    increase_lo: np.ndarray
    increase_hi: np.ndarray
    pf: np.ndarray
    ps: np.ndarray
    z: np.ndarray
    z_defined: np.ndarray
    defined: np.ndarray
    num_failing: int
    num_successful: int
    confidence: float

    @property
    def n_predicates(self) -> int:
        """Number of predicates scored."""
        return int(self.F.shape[0])

    def row(self, predicate_index: int) -> "ScoreRow":
        """Return a scalar view of one predicate's scores."""
        i = predicate_index
        return ScoreRow(
            predicate_index=i,
            F=int(self.F[i]),
            S=int(self.S[i]),
            F_obs=int(self.F_obs[i]),
            S_obs=int(self.S_obs[i]),
            failure=float(self.failure[i]),
            context=float(self.context[i]),
            increase=float(self.increase[i]),
            increase_se=float(self.increase_se[i]),
            increase_lo=float(self.increase_lo[i]),
            increase_hi=float(self.increase_hi[i]),
            z=float(self.z[i]),
            defined=bool(self.defined[i]),
        )


@dataclass(frozen=True)
class ScoreRow:
    """Scalar per-predicate scores, convenient for tables and tests."""

    predicate_index: int
    F: int
    S: int
    F_obs: int
    S_obs: int
    failure: float
    context: float
    increase: float
    increase_se: float
    increase_lo: float
    increase_hi: float
    z: float
    defined: bool

    @property
    def deterministic(self) -> bool:
        """A bug is deterministic for ``P`` iff ``Failure(P) = 1.0``.

        Equivalently ``S(P) = 0`` and ``F(P) > 0`` (Section 3.1).
        """
        return self.S == 0 and self.F > 0


def _masked_column_sums(
    indicator: sparse.spmatrix, row_mask: np.ndarray
) -> np.ndarray:
    """Column sums of a 0/1 int64 indicator matrix over the masked rows.

    One sparse matvec (``indicator.T @ mask``); the per-row submatrix the
    previous implementation sliced out is never materialised, so repeated
    masked counts (the elimination loop, affinity lists) allocate only
    run- and predicate-length vectors per call.
    """
    return np.asarray(indicator.T @ row_mask.astype(np.int64), dtype=np.int64)


def sufficient_counts(
    reports: ReportSet,
    run_mask: Optional[np.ndarray] = None,
    failed_mask: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Extract the per-predicate sufficient statistics of Section 3.1.

    Everything :func:`compute_scores` reports is a function of six
    quantities -- ``F(P)``, ``S(P)``, ``F(P obs)``, ``S(P obs)`` per
    predicate plus the population totals ``NumF``/``NumS`` -- so these are
    *sufficient statistics* for the scoring pass.  They are integer counts
    and therefore add exactly across disjoint run populations, which is
    what makes shard-by-shard incremental scoring
    (:mod:`repro.store.incremental`) and the partition-and-merge parallel
    engine (:mod:`repro.core.engine`) bit-identical to the monolithic path.

    Args:
        reports: The feedback-report population.
        run_mask: Optional boolean mask restricting which runs count.
        failed_mask: Optional boolean array overriding ``reports.failed``
            as the outcome labelling.  The elimination loop's ``RELABEL``
            strategy passes its working labels here instead of rebuilding
            a relabelled :class:`~repro.core.reports.ReportSet` per round.

    Returns:
        ``(F, S, F_obs, S_obs, num_failing, num_successful)``.
    """
    failed = reports.failed if failed_mask is None else np.asarray(failed_mask, dtype=bool)
    if run_mask is None:
        fail_rows = failed
        succ_rows = ~failed
    else:
        run_mask = np.asarray(run_mask, dtype=bool)
        fail_rows = run_mask & failed
        succ_rows = run_mask & ~failed

    true_ind = reports.true_indicator()
    site_ind = reports.site_indicator()

    F = _masked_column_sums(true_ind, fail_rows)
    S = _masked_column_sums(true_ind, succ_rows)
    F_obs_site = _masked_column_sums(site_ind, fail_rows)
    S_obs_site = _masked_column_sums(site_ind, succ_rows)
    F_obs = F_obs_site[reports.pred_site]
    S_obs = S_obs_site[reports.pred_site]
    return F, S, F_obs, S_obs, int(fail_rows.sum()), int(succ_rows.sum())


def compute_scores(
    reports: ReportSet,
    run_mask: Optional[np.ndarray] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    failed_mask: Optional[np.ndarray] = None,
) -> PredicateScores:
    """Compute all Section 3.1-3.2 scores for every predicate.

    Args:
        reports: The feedback-report population.
        run_mask: Optional boolean mask restricting the population (used by
            the elimination loop to rescore after discarding runs).
        confidence: Confidence level for the ``Increase`` interval.
        failed_mask: Optional outcome-label override (see
            :func:`sufficient_counts`).

    Returns:
        A :class:`PredicateScores` with one entry per predicate.
    """
    with _obs_timer("scores.compute"):
        F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(
            reports, run_mask, failed_mask=failed_mask
        )
        return scores_from_counts(
            F, S, F_obs, S_obs, num_failing, num_successful, confidence=confidence
        )


def scores_from_counts(
    F: np.ndarray,
    S: np.ndarray,
    F_obs: np.ndarray,
    S_obs: np.ndarray,
    num_failing: int,
    num_successful: int,
    confidence: float = DEFAULT_CONFIDENCE,
) -> PredicateScores:
    """Compute :class:`PredicateScores` from sufficient statistics alone.

    This is the arithmetic half of :func:`compute_scores`; it never sees
    the run-by-predicate matrices, so it can score populations accumulated
    shard by shard (:class:`repro.store.incremental.SufficientStats`)
    without materialising them.  ``compute_scores`` delegates here, which
    guarantees the incremental and monolithic paths share every formula.
    """
    _obs_inc("scores.computations")
    F = np.asarray(F, dtype=np.int64)
    S = np.asarray(S, dtype=np.int64)
    F_obs = np.asarray(F_obs, dtype=np.int64)
    S_obs = np.asarray(S_obs, dtype=np.int64)

    n_true = F + S
    n_obs = F_obs + S_obs

    with np.errstate(divide="ignore", invalid="ignore"):
        failure = np.where(n_true > 0, F / np.maximum(n_true, 1), 0.0)
        context = np.where(n_obs > 0, F_obs / np.maximum(n_obs, 1), 0.0)
        increase = np.where((n_true > 0) & (n_obs > 0), failure - context, 0.0)

        # Standard error of Increase, treating Failure and Context as
        # independent binomial proportions.  Because the "observed true"
        # runs are a subset of the "observed" runs the two are positively
        # correlated, so this over-estimates the variance: the interval is
        # conservative, which is the safe direction for the pruning filter.
        # The proportions are Laplace-smoothed for the variance estimate
        # only, so a proportion of exactly 0 or 1 backed by a handful of
        # observations cannot claim zero variance (a predicate true in a
        # single failing run must not pass the 95% filter).
        f_sm = (F + 0.5) / np.maximum(n_true + 1.0, 1.0)
        c_sm = (F_obs + 0.5) / np.maximum(n_obs + 1.0, 1.0)
        var = np.where(
            (n_true > 0) & (n_obs > 0),
            f_sm * (1.0 - f_sm) / np.maximum(n_true, 1)
            + c_sm * (1.0 - c_sm) / np.maximum(n_obs, 1),
            0.0,
        )
        se = np.sqrt(var)

        pf = np.where(F_obs > 0, F / np.maximum(F_obs, 1), 0.0)
        ps = np.where(S_obs > 0, S / np.maximum(S_obs, 1), 0.0)
        # Pooled variance under H0 (pf = ps); unlike the per-group sample
        # variance it stays positive under perfect separation.
        p_pool = np.where(n_obs > 0, n_true / np.maximum(n_obs, 1), 0.0)
        z_var = (
            p_pool
            * (1.0 - p_pool)
            * (1.0 / np.maximum(F_obs, 1) + 1.0 / np.maximum(S_obs, 1))
        )
        z_defined = (F_obs > 0) & (S_obs > 0) & (z_var > 0)
        z = np.where(
            z_defined,
            (pf - ps) / np.sqrt(np.maximum(z_var, 1e-300)),
            0.0,
        )

    crit = _z_for_confidence(confidence)
    increase_lo = increase - crit * se
    increase_hi = increase + crit * se
    defined = (n_true > 0) & (n_obs > 0)

    return PredicateScores(
        F=F,
        S=S,
        F_obs=F_obs,
        S_obs=S_obs,
        failure=failure,
        context=context,
        increase=increase,
        increase_se=se,
        increase_lo=increase_lo,
        increase_hi=increase_hi,
        pf=pf,
        ps=ps,
        z=z,
        z_defined=z_defined,
        defined=defined,
        num_failing=int(num_failing),
        num_successful=int(num_successful),
        confidence=confidence,
    )


def z_test_pvalues(scores: PredicateScores) -> np.ndarray:
    """One-sided p-values for ``H1: pf(P) > ps(P)`` (Section 3.2).

    Under ``H0: pf = ps`` the statistic is approximately standard normal
    for large samples, so the p-value is the upper normal tail of ``z``.

    Where ``z`` is undefined (the site was never observed in failing or
    successful runs, or the pooled variance is zero) there is no evidence
    against ``H0`` at all, so the p-value is 1.0 -- *not* ``sf(0) = 0.5``,
    which would let never-observed predicates masquerade as weak evidence
    in callers that forget to apply the ``defined`` mask.
    """
    p = stats.norm.sf(scores.z)
    return np.where(scores.z_defined, p, 1.0)
