"""Iterative redundancy elimination (Section 3.4) and its variants (Section 5).

The algorithm simulates how a programmer fixes bugs one at a time:

1. Rank candidate predicates by ``Importance``.
2. Select the top-ranked predicate ``P`` and discard all runs ``R`` where
   ``R(P) = 1`` (simulating "fix the bug P predicts").
3. Repeat until the runs or the candidates are exhausted.

Section 5 considers two alternative discard policies, exposed here as
:class:`DiscardStrategy`:

* ``DISCARD_ALL`` (1, the paper's choice): drop every run with ``R(P)=1``;
* ``DISCARD_FAILING`` (2): drop only failing runs with ``R(P)=1``;
* ``RELABEL`` (3): relabel failing runs with ``R(P)=1`` as successful.

Lemma 3.1: as long as a bug's profile intersects the runs predicated by
the candidate set, the algorithm selects at least one predicate predicting
at least one of that bug's failures.  ``tests/test_elimination.py``
property-checks this.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.importance import ImportanceScores, importance_scores
from repro.core.predicates import Predicate
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores, ScoreRow, compute_scores
from repro.obs import enabled as _obs_enabled, inc as _obs_inc, span as _obs_span


class DiscardStrategy(enum.Enum):
    """Run-discard policy applied when a predictor is selected (Section 5)."""

    DISCARD_ALL = 1
    DISCARD_FAILING = 2
    RELABEL = 3


@dataclass(frozen=True)
class PredictorStats:
    """A predictor's scores at a particular moment of the elimination.

    ``initial`` stats are measured on the full population; ``effective``
    stats are measured at selection time, after earlier selections have
    discarded runs -- the paper's initial vs. effective thermometers.
    """

    row: ScoreRow
    importance: float
    importance_lo: float
    importance_hi: float
    num_failing: int


@dataclass(frozen=True)
class SelectedPredictor:
    """One entry of the final ranked predictor list.

    Attributes:
        rank: 1-based position in the output list.
        predicate: The selected predicate.
        initial: Scores over the full run population.
        effective: Scores at selection time (cumulative dilution by
            earlier selections).
        runs_discarded: Number of runs removed by this selection.
        failing_runs_covered: Number of *failing* runs this selection
            removed (or relabelled) from the working set.
    """

    rank: int
    predicate: Predicate
    initial: PredictorStats
    effective: PredictorStats
    runs_discarded: int
    failing_runs_covered: int


@dataclass
class EliminationResult:
    """Output of :func:`eliminate`.

    Attributes:
        selected: Ranked predictor list, most important first.
        strategy: The discard strategy used.
        iterations: Number of selection iterations performed.
        remaining_failing: Failing runs never covered by any selection.
    """

    selected: List[SelectedPredictor]
    strategy: DiscardStrategy
    iterations: int
    remaining_failing: int

    @property
    def predicates(self) -> List[Predicate]:
        """The selected predicates in rank order."""
        return [s.predicate for s in self.selected]

    def __len__(self) -> int:
        return len(self.selected)


def _stats_for(
    scores: PredicateScores, imp: ImportanceScores, pred: int
) -> PredictorStats:
    return PredictorStats(
        row=scores.row(pred),
        importance=float(imp.importance[pred]),
        importance_lo=float(imp.lo[pred]),
        importance_hi=float(imp.hi[pred]),
        num_failing=scores.num_failing,
    )


def eliminate(
    reports: ReportSet,
    candidates: Optional[np.ndarray] = None,
    strategy: DiscardStrategy = DiscardStrategy.DISCARD_ALL,
    confidence: float = DEFAULT_CONFIDENCE,
    max_predictors: Optional[int] = None,
    min_importance: float = 0.0,
) -> EliminationResult:
    """Run iterative redundancy elimination over a report population.

    Args:
        reports: Feedback reports (typically already pruned -- pass the
            surviving mask as ``candidates``).
        candidates: Boolean mask of candidate predicates; defaults to all.
        strategy: Discard policy (Section 5); the paper uses
            ``DISCARD_ALL``.
        confidence: Confidence level for score intervals.
        max_predictors: Optional hard cap on the output list length.
        min_importance: Stop when the best remaining effective importance
            does not exceed this threshold (0 reproduces the paper: a
            predicate must have positive importance to be selected).

    Returns:
        An :class:`EliminationResult` with the ranked predictor list.

    Determinism: ties in effective ``Importance`` are broken by predicate
    index (``np.argmax`` returns the first maximum), so the selection
    order is a pure function of the population -- independent of
    candidate-mask construction order, shard layout, and the worker count
    of the parallel engine that feeds this loop
    (``tests/core/test_engine_differential.py`` pins this).

    The working state is two persistent boolean bitsets -- run membership
    (``active``) and outcome labels (``failed_work``) -- mutated in place
    each round and fed straight into the masked scoring pass, so a round
    allocates only run- and predicate-length vectors no matter how many
    rounds run (``benchmarks/test_elimination_memory.py`` pins this).
    """
    n_preds = reports.n_predicates
    if candidates is None:
        cand = np.ones(n_preds, dtype=bool)
    else:
        cand = np.asarray(candidates, dtype=bool).copy()
        if cand.shape[0] != n_preds:
            raise ValueError("candidate mask length does not match predicate count")

    active = np.ones(reports.n_runs, dtype=bool)
    failed_work = reports.failed.copy()

    with _obs_span("analysis.eliminate", runs=reports.n_runs, predicates=n_preds):
        initial_scores = compute_scores(reports, confidence=confidence)
        initial_imp = importance_scores(initial_scores)

        selected: List[SelectedPredictor] = []
        iterations = 0

        while True:
            if max_predictors is not None and len(selected) >= max_predictors:
                break
            if not cand.any() or not active.any():
                break
            scores = compute_scores(
                reports, run_mask=active, confidence=confidence, failed_mask=failed_work
            )
            if scores.num_failing == 0:
                break
            imp = importance_scores(scores)
            masked = np.where(cand, imp.importance, -np.inf)
            # np.argmax returns the first maximum: equal-importance
            # candidates resolve to the lowest predicate index.
            best = int(np.argmax(masked))
            if not np.isfinite(masked[best]) or masked[best] <= min_importance:
                break

            iterations += 1
            true_mask = reports.true_mask(best) & active
            covered_failing = int((true_mask & failed_work).sum())
            if strategy is DiscardStrategy.DISCARD_ALL:
                discarded = int(true_mask.sum())
            elif strategy is DiscardStrategy.DISCARD_FAILING:
                discarded = covered_failing
            else:
                discarded = 0

            entry = SelectedPredictor(
                rank=len(selected) + 1,
                predicate=reports.table.predicates[best],
                initial=_stats_for(initial_scores, initial_imp, best),
                effective=_stats_for(scores, imp, best),
                runs_discarded=discarded,
                failing_runs_covered=covered_failing,
            )
            selected.append(entry)
            cand[best] = False

            if strategy is DiscardStrategy.DISCARD_ALL:
                active &= ~true_mask
            elif strategy is DiscardStrategy.DISCARD_FAILING:
                active &= ~(true_mask & failed_work)
            else:  # RELABEL
                failed_work &= ~true_mask

    if _obs_enabled():
        _obs_inc("analysis.elimination_iterations", iterations)
    remaining_failing = int((active & failed_work).sum())
    return EliminationResult(
        selected=selected,
        strategy=strategy,
        iterations=iterations,
        remaining_failing=remaining_failing,
    )
