"""Affinity lists (Sections 3.4 and 4.1-4.2).

"We do have a measure of how strongly P implies another predicate Pi: how
does removing the runs where R(P)=1 affect the importance of Pi?  The more
closely related P and Pi are, the more Pi's importance drops when P's
failing runs are removed."

In the paper's interactive tools every selected predictor links to an
affinity list ranking all predicates by this drop; the CCRYPT and BC case
studies use affinity lists to recognise that a second selected predicate
is a sub-bug predictor of the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.importance import importance_scores
from repro.core.predicates import Predicate
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, PredicateScores, compute_scores


@dataclass(frozen=True)
class AffinityEntry:
    """One row of an affinity list.

    Attributes:
        predicate: The related predicate ``Pi``.
        drop: ``Importance(Pi)`` before minus after removing the runs
            where the anchor predicate was observed true.
        importance_before / importance_after: The two raw scores.
    """

    predicate: Predicate
    drop: float
    importance_before: float
    importance_after: float


def affinity_list(
    reports: ReportSet,
    anchor: int,
    candidates: Optional[np.ndarray] = None,
    run_mask: Optional[np.ndarray] = None,
    confidence: float = DEFAULT_CONFIDENCE,
    top: Optional[int] = None,
    before_scores: Optional[PredicateScores] = None,
) -> List[AffinityEntry]:
    """Rank predicates by how much selecting ``anchor`` deflates them.

    Args:
        reports: Feedback-report population.
        anchor: Predicate index whose affinity list is requested.
        candidates: Optional boolean mask restricting the listed
            predicates (e.g. the pruning survivors).
        run_mask: Optional run restriction to evaluate within.
        confidence: Confidence level for score intervals.
        top: If given, truncate the list to the ``top`` largest drops.
        before_scores: Optional precomputed scores for the ``run_mask``
            population; interactive tools building one affinity list per
            selected predictor pass the shared baseline once instead of
            rescoring it per anchor.

    Returns:
        Affinity entries sorted by decreasing drop, anchor excluded.
    """
    n_runs = reports.n_runs
    if run_mask is None:
        run_mask = np.ones(n_runs, dtype=bool)
    else:
        run_mask = np.asarray(run_mask, dtype=bool)
    if candidates is None:
        candidates = np.ones(reports.n_predicates, dtype=bool)
    else:
        candidates = np.asarray(candidates, dtype=bool)

    if before_scores is None:
        before_scores = compute_scores(reports, run_mask=run_mask, confidence=confidence)
    before = importance_scores(before_scores).importance

    without_anchor = run_mask & ~reports.true_mask(anchor)
    after_scores = compute_scores(reports, run_mask=without_anchor, confidence=confidence)
    after = importance_scores(after_scores).importance

    drop = before - after
    entries: List[AffinityEntry] = []
    for idx in np.flatnonzero(candidates):
        if idx == anchor:
            continue
        entries.append(
            AffinityEntry(
                predicate=reports.table.predicates[int(idx)],
                drop=float(drop[idx]),
                importance_before=float(before[idx]),
                importance_after=float(after[idx]),
            )
        )
    entries.sort(key=lambda e: e.drop, reverse=True)
    if top is not None:
        entries = entries[:top]
    return entries


def affinity_groups(
    reports: ReportSet,
    selected: List[int],
    threshold: float = 0.5,
    confidence: float = DEFAULT_CONFIDENCE,
) -> List[List[int]]:
    """Cluster selected predictors into likely same-bug groups.

    The interactive-tool feature from Section 3.4, systematised: two
    selected predictors belong together when removing either one's runs
    deflates the other's importance by at least ``threshold`` of its
    value (the CCRYPT/BC studies used exactly this signal to recognise
    that their two selections were one bug).

    Returns:
        Predicate-index groups, each sorted, in first-appearance order.
    """
    before_scores = compute_scores(reports, confidence=confidence)
    before = importance_scores(before_scores).importance

    n = len(selected)
    related = np.zeros((n, n), dtype=bool)
    for i, anchor in enumerate(selected):
        without = ~reports.true_mask(anchor)
        after_scores = compute_scores(reports, run_mask=without, confidence=confidence)
        after = importance_scores(after_scores).importance
        for j, other in enumerate(selected):
            if i == j:
                continue
            base = before[other]
            if base <= 0:
                continue
            if (base - after[other]) >= threshold * base:
                related[i, j] = True

    # Union-find over the symmetric closure.
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(n):
            if related[i, j] or related[j, i]:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri

    groups: dict = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(selected[i])
    return [sorted(g) for g in groups.values()]


def is_sub_bug_predictor(
    reports: ReportSet,
    candidate: int,
    anchor: int,
    confidence: float = DEFAULT_CONFIDENCE,
) -> bool:
    """Heuristic from the CCRYPT/BC case studies.

    ``candidate`` is flagged as a sub-bug predictor associated with
    ``anchor`` when ``anchor`` tops ``candidate``'s affinity list -- i.e.
    removing the anchor's runs deflates the candidate more than removing
    any other selected predicate's runs would.
    """
    entries = affinity_list(reports, candidate, confidence=confidence, top=1)
    if not entries:
        return False
    return entries[0].predicate.index == anchor
