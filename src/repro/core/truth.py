"""Ground-truth bug profiles for controlled experiments (Section 4.1).

In the MOSS validation experiment the authors "separately recorded the
exact set of bugs that actually occurred in each run"; the right-hand
columns of Table 3 then show, per selected predicate and per bug, how many
failing runs exhibit both.  This module provides that side channel.

Ground truth is *never* visible to the isolation algorithm -- it exists
only so experiments can grade the algorithm's output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.reports import ReportSet


@dataclass
class GroundTruth:
    """Per-run record of which bugs actually occurred.

    Attributes:
        bug_ids: All known bug identifiers, in display order.
        occurrences: One frozen set of bug ids per run, aligned with the
            report set's run order.
    """

    bug_ids: List[str]
    occurrences: List[FrozenSet[str]] = field(default_factory=list)

    def add_run(self, bugs: Sequence[str]) -> None:
        """Record the bugs triggered during one run (may be empty)."""
        unknown = set(bugs) - set(self.bug_ids)
        if unknown:
            raise ValueError(f"unknown bug ids: {sorted(unknown)}")
        self.occurrences.append(frozenset(bugs))

    @property
    def n_runs(self) -> int:
        """Number of recorded runs."""
        return len(self.occurrences)

    def occurrence_mask(self, bug_id: str) -> np.ndarray:
        """Boolean run mask of where ``bug_id`` occurred."""
        return np.asarray([bug_id in occ for occ in self.occurrences], dtype=bool)

    def bug_profile(self, bug_id: str, reports: ReportSet) -> np.ndarray:
        """The bug profile ``B``: failing runs where the bug occurred.

        Note ``Bi & Bj`` is not empty in general -- more than one bug can
        occur in a run (Section 1).
        """
        self._check_aligned(reports)
        return self.occurrence_mask(bug_id) & reports.failed

    def triggered_bugs(self, reports: ReportSet) -> List[str]:
        """Bug ids whose profile is non-empty (cause at least one failure)."""
        self._check_aligned(reports)
        return [b for b in self.bug_ids if self.bug_profile(b, reports).any()]

    def occurrence_counts(self) -> Dict[str, int]:
        """Total runs (of any outcome) in which each bug occurred."""
        return {b: int(self.occurrence_mask(b).sum()) for b in self.bug_ids}

    def _check_aligned(self, reports: ReportSet) -> None:
        if self.n_runs != reports.n_runs:
            raise ValueError(
                f"ground truth covers {self.n_runs} runs but report set has "
                f"{reports.n_runs}"
            )

    def subset(self, run_mask: np.ndarray) -> "GroundTruth":
        """Restrict the truth record to the masked runs."""
        idx = np.flatnonzero(np.asarray(run_mask, dtype=bool))
        sub = GroundTruth(bug_ids=list(self.bug_ids))
        sub.occurrences = [self.occurrences[i] for i in idx]
        return sub

    @classmethod
    def merge(cls, parts: Sequence["GroundTruth"]) -> "GroundTruth":
        """Concatenate per-shard truth records, preserving run order.

        The counterpart of :meth:`repro.core.reports.ReportSet.merge`;
        all parts must agree on the bug-id universe.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge an empty sequence of truth records")
        bug_ids = list(parts[0].bug_ids)
        for i, part in enumerate(parts[1:], start=1):
            if list(part.bug_ids) != bug_ids:
                raise ValueError(
                    f"truth record {i} has bug ids {part.bug_ids} but the "
                    f"first shard declared {bug_ids}"
                )
        merged = cls(bug_ids=bug_ids)
        for part in parts:
            merged.occurrences.extend(part.occurrences)
        return merged


def cooccurrence_table(
    reports: ReportSet,
    truth: GroundTruth,
    predicate_indices: Sequence[int],
    bug_ids: Optional[Sequence[str]] = None,
) -> Dict[int, Dict[str, int]]:
    """Build the right-hand columns of Table 3.

    For each predicate ``P`` and bug ``B``: the number of *failing* runs in
    which ``P`` was observed to be true and ``B`` occurred.

    Returns:
        ``{predicate_index: {bug_id: count}}``.
    """
    if bug_ids is None:
        bug_ids = truth.bug_ids
    truth._check_aligned(reports)
    bug_masks = {b: truth.occurrence_mask(b) & reports.failed for b in bug_ids}
    out: Dict[int, Dict[str, int]] = {}
    for pred in predicate_indices:
        true_mask = reports.true_mask(pred)
        out[pred] = {b: int((true_mask & mask).sum()) for b, mask in bug_masks.items()}
    return out


def dominant_bug(
    reports: ReportSet, truth: GroundTruth, predicate_index: int
) -> Optional[Tuple[str, int]]:
    """Return the bug most co-occurring with a predicate's failing runs.

    Returns ``(bug_id, count)`` or ``None`` when the predicate is true in
    no failing run.  Used to grade whether a selected predictor "has a
    very strong spike at one bug" (Section 4.1).
    """
    table = cooccurrence_table(reports, truth, [predicate_index])
    counts = table[predicate_index]
    if not counts:
        return None
    bug = max(counts, key=lambda b: counts[b])
    if counts[bug] == 0:
        return None
    return bug, counts[bug]


def classify_predictor(
    reports: ReportSet,
    truth: GroundTruth,
    predicate_index: int,
    coverage_threshold: float = 0.5,
) -> str:
    """Grade a predictor as ``"bug"``, ``"sub-bug"``, ``"super-bug"`` or
    ``"none"`` against ground truth (the Section 1 taxonomy).

    For each bug, compute the *share* of the bug's failures the
    predicate covers.  Covering at least ``coverage_threshold`` of two
    or more bugs' profiles makes a super-bug predictor; of exactly one,
    a bug predictor; of none (while still covering some failures), a
    sub-bug predictor -- it characterises only a subset of some bug's
    instances.
    """
    true_fail = reports.true_mask(predicate_index) & reports.failed
    if not true_fail.any():
        return "none"
    strong = 0
    for bug in truth.bug_ids:
        profile = truth.bug_profile(bug, reports)
        size = int(profile.sum())
        if size == 0:
            continue
        share = int((true_fail & profile).sum()) / size
        if share >= coverage_threshold:
            strong += 1
    if strong >= 2:
        return "super-bug"
    if strong == 1:
        return "bug"
    return "sub-bug"


@dataclass(frozen=True)
class BugSite:
    """A ground-truth bug location in a subject's source.

    The subjects mark every injected fault by calling
    ``record_bug("<bug-id>")`` at the faulty line -- a side channel the
    instrumentation never sees.  A :class:`BugSite` is the static view of
    one such call: the bug id, the enclosing function, and the 1-based
    source line.  The bake-off harness grades suspiciousness measures by
    how early they rank a predicate belonging to a faulty function.

    Attributes:
        bug_id: The literal id passed to ``record_bug``.
        function: Name of the innermost enclosing function (``"<module>"``
            for module-level calls).
        line: 1-based line number of the call in the subject source.
    """

    bug_id: str
    function: str
    line: int


def bug_sites_from_source(source: str, function_prefix: str = "") -> List[BugSite]:
    """Statically extract every ``record_bug("<id>")`` call site.

    Walks the subject's AST tracking the enclosing function, so the
    returned line numbers and function names align with the
    :class:`~repro.core.predicates.Site` records the instrumentation
    derives from the *same* source text.  Only string-literal bug ids are
    recognised (all subjects use literals); dynamic ids are skipped.

    ``function_prefix`` mirrors the instrumenter's option of the same
    name: multi-module factory subjects qualify every function name with
    its module so sites from different modules never collide.

    Returns sites in source order.
    """
    tree = ast.parse(source)
    sites: List[BugSite] = []

    def walk(node: ast.AST, function: str) -> None:
        for child in ast.iter_child_nodes(node):
            scope = function
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = function_prefix + child.name
            if isinstance(child, ast.Call):
                callee = child.func
                name = callee.id if isinstance(callee, ast.Name) else (
                    callee.attr if isinstance(callee, ast.Attribute) else None
                )
                if (
                    name == "record_bug"
                    and child.args
                    and isinstance(child.args[0], ast.Constant)
                    and isinstance(child.args[0].value, str)
                ):
                    sites.append(
                        BugSite(
                            bug_id=child.args[0].value,
                            function=function,
                            line=child.lineno,
                        )
                    )
            walk(child, scope)

    walk(tree, function_prefix + "<module>")
    return sites


def faulty_predicate_mask(table, bug_sites: Sequence[BugSite]) -> np.ndarray:
    """Boolean mask of predicates instrumenting a faulty function.

    A predicate counts as *faulty* when its site's enclosing function
    contains a ground-truth :class:`BugSite` -- function granularity,
    matching how the fault-localisation literature grades
    rank-of-first-faulty-element when exact line attribution is noisy
    (our instrumented sites rarely sit on the very ``record_bug`` line).

    Args:
        table: The :class:`~repro.core.predicates.PredicateTable` built
            from the same source the bug sites were scanned from.
        bug_sites: Output of :func:`bug_sites_from_source`.

    Returns:
        Length-``n_predicates`` boolean array.
    """
    faulty_functions = {site.function for site in bug_sites}
    mask = np.zeros(len(table.predicates), dtype=bool)
    for pred in table.predicates:
        if table.site_of(pred.index).function in faulty_functions:
            mask[pred.index] = True
    return mask


def bugs_covered(
    reports: ReportSet,
    truth: GroundTruth,
    predicate_indices: Sequence[int],
) -> Set[str]:
    """Bug ids with at least one failing run covered by a selected predicate.

    Lemma 3.1 guarantees this equals the set of bugs whose profiles
    intersect the predicated runs, so tests compare the two.
    """
    covered: Set[str] = set()
    for bug in truth.bug_ids:
        profile = truth.bug_profile(bug, reports)
        if not profile.any():
            continue
        for pred in predicate_indices:
            if (reports.true_mask(pred) & profile).any():
                covered.add(bug)
                break
    return covered
