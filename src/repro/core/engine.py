"""The parallel streaming analysis engine behind ``analyze --jobs N``.

The paper's analysis is embarrassingly parallel in two independent
directions, and this module exploits both behind one façade:

* **run axis** -- the six sufficient statistics (``F``, ``S``,
  ``F_obs``, ``S_obs``, ``NumF``, ``NumS``) are integer sums over runs,
  so disjoint shard subsets can stream in separate worker processes and
  the partial sums tree-merge in the parent
  (:meth:`SufficientStats.merge_tree <repro.store.incremental.SufficientStats.merge_tree>`);
* **predicate axis** -- every score, p-value and pruning decision is an
  elementwise function of one predicate's statistics, so the table can
  be cut into contiguous partitions, scored in workers, and
  concatenated.

Determinism contract
--------------------

``analyze --jobs N`` output is **bit-identical** to the serial path for
every ``N``, every discard strategy and every shard layout:

* integer addition is associative and commutative, so any partition or
  merge order of the statistics reproduces the monolithic counts
  *exactly* -- and every float downstream is a function of those counts;
* :func:`repro.core.scores.scores_from_counts`,
  :func:`repro.core.scores.z_test_pvalues` and
  :func:`repro.core.pruning.prune_mask` are elementwise over predicates,
  so partitioned evaluation concatenates to the same bits;
* elimination runs in the parent (each round depends on the previous
  round's discards), rewritten around persistent run-membership bitsets,
  with ties broken by predicate index -- a pure function of the
  population, so identical pruning masks give identical rankings.

``tests/core/test_engine_differential.py`` enforces the contract on all
five subjects, shard layouts {1, 3, 7} and ``--jobs`` {1, 2, 4};
``tests/instrument/test_sampling_properties.py`` property-checks the
partition/merge algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.elimination import DiscardStrategy, EliminationResult, eliminate
from repro.core.measures import DEFAULT_MEASURE, get as get_measure
from repro.core.pruning import PruningResult, prune_mask
from repro.core.reports import ReportSet
from repro.core.scores import (
    DEFAULT_CONFIDENCE,
    PredicateScores,
    scores_from_counts,
    z_test_pvalues,
)
from repro.core.truth import GroundTruth
from repro.obs import (
    enabled as _obs_enabled,
    gauge as _obs_gauge,
    span as _obs_span,
    timer as _obs_timer,
)
from repro.store.incremental import SufficientStats


def partition_bounds(n: int, parts: int) -> List[Tuple[int, int]]:
    """Cut ``range(n)`` into at most ``parts`` contiguous ``[lo, hi)`` slices.

    Deterministic and balanced (sizes differ by at most one, larger
    slices first), with no empty slices: ``parts`` is clamped to ``n``.
    Used for both axes -- shard subsets per stats worker and predicate
    partitions per scoring worker.
    """
    if n < 0:
        raise ValueError(f"cannot partition a negative range ({n})")
    parts = max(1, min(parts, n))
    if n == 0:
        return []
    base, extra = divmod(n, parts)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def concat_scores(parts: List[PredicateScores]) -> PredicateScores:
    """Reassemble predicate-partition scores into one full-table result.

    The population totals and confidence level are partition-invariant
    (every slice carries the whole population's ``NumF``/``NumS``), so
    only the per-predicate arrays concatenate.
    """
    if not parts:
        raise ValueError("cannot concatenate an empty sequence of scores")
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    return PredicateScores(
        F=np.concatenate([p.F for p in parts]),
        S=np.concatenate([p.S for p in parts]),
        F_obs=np.concatenate([p.F_obs for p in parts]),
        S_obs=np.concatenate([p.S_obs for p in parts]),
        failure=np.concatenate([p.failure for p in parts]),
        context=np.concatenate([p.context for p in parts]),
        increase=np.concatenate([p.increase for p in parts]),
        increase_se=np.concatenate([p.increase_se for p in parts]),
        increase_lo=np.concatenate([p.increase_lo for p in parts]),
        increase_hi=np.concatenate([p.increase_hi for p in parts]),
        pf=np.concatenate([p.pf for p in parts]),
        ps=np.concatenate([p.ps for p in parts]),
        z=np.concatenate([p.z for p in parts]),
        z_defined=np.concatenate([p.z_defined for p in parts]),
        defined=np.concatenate([p.defined for p in parts]),
        num_failing=first.num_failing,
        num_successful=first.num_successful,
        confidence=first.confidence,
    )


def _stats_task(task) -> SufficientStats:
    """Worker: stream one contiguous shard subset into a partial sum.

    Runs the exact per-shard loader the serial path uses
    (:func:`repro.store.shards.load_entry_stats`), so verification
    errors and ``store.shards_streamed`` counters match shard for shard.
    """
    directory, entries, table_sha = task
    from repro.store.shards import load_entry_stats

    total: Optional[SufficientStats] = None
    for entry in entries:
        part = load_entry_stats(directory, entry, table_sha)
        # v3 parts are read-only file-mapping views; copy before +=.
        total = part.materialized() if total is None else total.add(part)
    assert total is not None  # partitions are never empty
    return total


def _multi_stats_task(task) -> SufficientStats:
    """Worker: stream shards drawn from *several* stores into one sum.

    ``task`` is a list of ``(directory, entry, table_sha)`` triples --
    unlike :func:`_stats_task`, each shard carries its own store
    directory, so one worker can span store boundaries.  Same loader,
    same verification, same counters.
    """
    from repro.store.shards import load_entry_stats

    total: Optional[SufficientStats] = None
    for directory, entry, table_sha in task:
        part = load_entry_stats(directory, entry, table_sha)
        total = part.materialized() if total is None else total.add(part)
    assert total is not None  # partitions are never empty
    return total


def _score_task(task):
    """Worker: score, p-value, prune and measure one predicate partition.

    Every step -- including the registered suspiciousness measure -- is
    elementwise over predicates (see the module docstring and the
    registry contract in :mod:`repro.core.measures.registry`), so the
    partition results concatenate bit-identically to a whole-table pass.
    """
    (
        F,
        S,
        F_obs,
        S_obs,
        num_failing,
        num_successful,
        confidence,
        method,
        min_true_runs,
        measure,
    ) = task
    scores = scores_from_counts(
        F, S, F_obs, S_obs, num_failing, num_successful, confidence=confidence
    )
    pvalues = z_test_pvalues(scores)
    kept = prune_mask(
        scores, confidence=confidence, min_true_runs=min_true_runs, method=method
    )
    values = get_measure(measure).values(scores)
    return scores, pvalues, kept, values


@dataclass
class EngineScoring:
    """Scoring-stage output: full-table scores, p-values and pruning.

    ``measure`` names the suspiciousness measure this pass scored under
    (``"importance"`` unless a consumer asked otherwise) and
    ``measure_values`` holds its per-predicate values, computed inside
    the same partitioned workers as the scores themselves.
    """

    scores: PredicateScores
    pvalues: np.ndarray
    pruning: PruningResult
    measure: str = DEFAULT_MEASURE
    measure_values: Optional[np.ndarray] = None


@dataclass
class EngineAnalysis:
    """One complete ``analyze`` pass through the engine.

    Attributes:
        jobs: Worker count the pass ran with (1 = inline).
        stats: Population sufficient statistics.
        scores: Full-table :class:`~repro.core.scores.PredicateScores`.
        pvalues: One-sided z-test p-values per predicate.
        pruning: The ``Increase > 0`` filter outcome.
        elimination: Ranked predictors, or ``None`` for stats-only runs.
        reports: The materialised population (elimination needs run-level
            data), or ``None`` for stats-only runs.
        truth: Ground truth when every shard carried it.
        measure: Name of the suspiciousness measure scored under.
        measure_values: Per-predicate values of that measure.
    """

    jobs: int
    stats: SufficientStats
    scores: PredicateScores
    pvalues: np.ndarray
    pruning: PruningResult
    elimination: Optional[EliminationResult] = None
    reports: Optional[ReportSet] = None
    truth: Optional[GroundTruth] = None
    measure: str = DEFAULT_MEASURE
    measure_values: Optional[np.ndarray] = None


class AnalysisEngine:
    """Process-pool analysis: stream, score, prune and eliminate.

    ``jobs=1`` runs every stage inline through the *same* partitioned
    code path (one partition covering everything), so the parallel and
    serial paths cannot drift apart; ``jobs=N`` forks ``N`` workers per
    stage via :func:`repro.harness.parallel.fork_map`.

    Wall-clock speedup needs both shards and cores: the stats stage
    scales with the shard count per worker, and on a single-core host
    the fork overhead makes ``jobs > 1`` a wash (the bench records
    ``cpu_count`` next to every measurement for exactly this reason).
    """

    def __init__(self, jobs: int = 1, confidence: float = DEFAULT_CONFIDENCE) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.confidence = confidence

    def _map(self, fn, tasks, label: str) -> list:
        from repro.harness.parallel import fork_map

        return fork_map(fn, tasks, jobs=self.jobs, label=label)

    # ------------------------------------------------------------------
    # Stage 1: sufficient statistics
    # ------------------------------------------------------------------
    def store_stats(self, store) -> SufficientStats:
        """Stream a shard store's statistics across ``jobs`` workers.

        Each worker streams a disjoint contiguous shard subset into a
        per-worker :class:`SufficientStats`; the parent tree-merges the
        partial sums.  Bit-identical to the serial stream for any worker
        count and shard layout (integer addition commutes).
        """
        entries = list(store.manifest.shards)
        if not entries:
            raise ValueError("cannot score an empty shard store")
        bounds = partition_bounds(len(entries), self.jobs)
        tasks = [
            (store.directory, entries[lo:hi], store.manifest.table_sha)
            for lo, hi in bounds
        ]
        with _obs_timer("store.stream_stats"):
            with _obs_span("engine.stream_stats", shards=len(entries), jobs=self.jobs):
                parts = self._map(_stats_task, tasks, label="engine.stats_worker")
        return SufficientStats.merge_tree(parts)

    def multi_store_stats(self, stores) -> SufficientStats:
        """Stream several stores' statistics as one population.

        The federation analysis entry point: integer sufficient
        statistics add exactly across stores, so summing N daemon-owned
        stores is bit-identical to summing the one store a federated
        merge of them would produce -- without materialising that merge.
        All stores must share a predicate table (same ``table_sha``);
        anything else would mis-attribute counters.
        """
        stores = list(stores)
        if not stores:
            raise ValueError("need at least one store")
        table_sha = stores[0].manifest.table_sha
        for store in stores[1:]:
            if store.manifest.table_sha != table_sha:
                raise ValueError(
                    f"store {store.directory} has predicate table "
                    f"{store.manifest.table_sha[:12]}..., expected "
                    f"{table_sha[:12]}...; cannot sum statistics across tables"
                )
        shards = [
            (store.directory, entry, table_sha)
            for store in stores
            for entry in store.manifest.shards
        ]
        if not shards:
            raise ValueError("cannot score empty shard stores")
        bounds = partition_bounds(len(shards), self.jobs)
        tasks = [shards[lo:hi] for lo, hi in bounds]
        with _obs_timer("store.stream_stats"):
            with _obs_span(
                "engine.stream_multi_stats",
                stores=len(stores),
                shards=len(shards),
                jobs=self.jobs,
            ):
                parts = self._map(
                    _multi_stats_task, tasks, label="engine.stats_worker"
                )
        return SufficientStats.merge_tree(parts)

    def federated_scores(self, stores, measure: str = DEFAULT_MEASURE) -> EngineScoring:
        """Score N stores as one population (see :meth:`multi_store_stats`).

        ``measure`` selects any registered suspiciousness measure; the
        federated values are bit-identical to scoring the equivalent
        single store because measures are elementwise over the summed
        sufficient statistics.
        """
        return self.score_stats(self.multi_store_stats(stores), measure=measure)

    # ------------------------------------------------------------------
    # Stage 2: scores, p-values, pruning over predicate partitions
    # ------------------------------------------------------------------
    def score_stats(
        self,
        stats: SufficientStats,
        method: str = "interval",
        min_true_runs: int = 1,
        measure: str = DEFAULT_MEASURE,
    ) -> EngineScoring:
        """Score and prune the population over predicate partitions.

        ``measure`` names a registered suspiciousness measure
        (:mod:`repro.core.measures`); its per-predicate values are
        computed inside the partition workers and concatenated, which is
        bit-identical to a whole-table pass because registered measures
        are elementwise (unknown names raise
        :class:`~repro.core.measures.UnknownMeasureError` before any
        worker forks).
        """
        get_measure(measure)  # validate the name up front
        bounds = partition_bounds(stats.n_predicates, self.jobs)
        tasks = [
            (
                stats.F[lo:hi],
                stats.S[lo:hi],
                stats.F_obs[lo:hi],
                stats.S_obs[lo:hi],
                stats.num_failing,
                stats.num_successful,
                self.confidence,
                method,
                min_true_runs,
                measure,
            )
            for lo, hi in bounds
        ]
        with _obs_span(
            "engine.score_partitions", predicates=stats.n_predicates, jobs=self.jobs
        ):
            parts = self._map(_score_task, tasks, label="engine.score_worker")
        scores = concat_scores([p[0] for p in parts])
        pvalues = np.concatenate([p[1] for p in parts])
        kept = np.concatenate([p[2] for p in parts])
        values = np.concatenate([p[3] for p in parts])
        pruning = PruningResult(kept=kept, scores=scores)
        if _obs_enabled():
            _obs_gauge("analysis.pruning_initial", float(pruning.n_initial))
            _obs_gauge("analysis.pruning_kept", float(pruning.n_kept))
        return EngineScoring(
            scores=scores,
            pvalues=pvalues,
            pruning=pruning,
            measure=measure,
            measure_values=values,
        )

    def scores_from_stats(self, stats: SufficientStats) -> PredicateScores:
        """Full-table scores via the partitioned path (no pruning kept)."""
        return self.score_stats(stats).scores

    # ------------------------------------------------------------------
    # Stage 3: end-to-end analyses
    # ------------------------------------------------------------------
    def analyze_store(
        self,
        store,
        method: str = "interval",
        strategy: DiscardStrategy = DiscardStrategy.DISCARD_ALL,
        max_predictors: Optional[int] = None,
        min_importance: float = 0.0,
        stats_only: bool = False,
        min_true_runs: int = 1,
        measure: str = DEFAULT_MEASURE,
    ) -> EngineAnalysis:
        """Analyse a shard store: stream, score, prune, (then eliminate).

        Elimination needs run-level data (each round discards runs), so
        unless ``stats_only`` the merged population is materialised and
        the mask-based elimination loop runs in the parent -- its rounds
        are inherently sequential, and each costs only a few sparse
        matvecs over the persistent bitsets.

        ``measure`` selects the suspiciousness measure carried on the
        result (and used by consumers to rank statistics); the iterative
        elimination loop itself always follows the paper's Importance,
        per Section 3.3.
        """
        with _obs_span("engine.analyze", jobs=self.jobs, store=store.directory):
            stats = self.store_stats(store)
            scoring = self.score_stats(
                stats, method=method, min_true_runs=min_true_runs, measure=measure
            )
            if stats_only:
                return EngineAnalysis(
                    jobs=self.jobs,
                    stats=stats,
                    scores=scoring.scores,
                    pvalues=scoring.pvalues,
                    pruning=scoring.pruning,
                    measure=scoring.measure,
                    measure_values=scoring.measure_values,
                )
            reports, truth = store.load_merged()
            elimination = eliminate(
                reports,
                candidates=scoring.pruning.kept,
                strategy=strategy,
                confidence=self.confidence,
                max_predictors=max_predictors,
                min_importance=min_importance,
            )
            return EngineAnalysis(
                jobs=self.jobs,
                stats=stats,
                scores=scoring.scores,
                pvalues=scoring.pvalues,
                pruning=scoring.pruning,
                elimination=elimination,
                reports=reports,
                truth=truth,
                measure=scoring.measure,
                measure_values=scoring.measure_values,
            )

    def analyze_reports(
        self,
        reports: ReportSet,
        truth: Optional[GroundTruth] = None,
        method: str = "interval",
        strategy: DiscardStrategy = DiscardStrategy.DISCARD_ALL,
        max_predictors: Optional[int] = None,
        min_importance: float = 0.0,
        stats_only: bool = False,
        min_true_runs: int = 1,
        measure: str = DEFAULT_MEASURE,
    ) -> EngineAnalysis:
        """Analyse an in-memory population (a ``run --save`` archive).

        The counting pass stays in the parent -- shipping sparse run
        matrices to workers would cost more than the two matvecs they
        pay for -- and scoring/pruning run over predicate partitions
        exactly as in :meth:`analyze_store` (including the selected
        suspiciousness ``measure``).
        """
        with _obs_span("engine.analyze", jobs=self.jobs, runs=reports.n_runs):
            stats = SufficientStats.from_reports(reports)
            scoring = self.score_stats(
                stats, method=method, min_true_runs=min_true_runs, measure=measure
            )
            elimination = None
            if not stats_only:
                elimination = eliminate(
                    reports,
                    candidates=scoring.pruning.kept,
                    strategy=strategy,
                    confidence=self.confidence,
                    max_predictors=max_predictors,
                    min_importance=min_importance,
                )
            return EngineAnalysis(
                jobs=self.jobs,
                stats=stats,
                scores=scoring.scores,
                pvalues=scoring.pvalues,
                pruning=scoring.pruning,
                elimination=elimination,
                reports=reports,
                truth=truth,
                measure=scoring.measure,
                measure_values=scoring.measure_values,
            )
