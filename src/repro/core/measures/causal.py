"""Causal value + predicate-score hybrid (after Kucuk & Henderson).

Kucuk & Henderson's causal fault localisation (PAPERS.md) estimates, for
each predicate, the *causal effect* of the predicate being true on the
failure outcome, then combines that effect with a conventional predicate
suspiciousness score -- the hybrid outperforms either signal alone.

Adapted to our sufficient statistics:

* The **predicate-view effect** is ``pf(P) - ps(P)``: the difference in
  truth probability between failing and successful runs, conditioned on
  the site being observed.  (Section 3.2 proves this has the same sign as
  ``Increase``; its magnitude weights differently, emphasising how much
  more often the predicate fires in failing runs.)
* The **outcome-view score** is the paper's ``Increase(P)``: how much more
  likely failure becomes given the predicate is true.

The hybrid averages the two views, clamping each at zero so a predicate
must look suspicious from *both* directions to score highly.  The true
counterfactual estimator needs per-run covariate matching, which the
additive counts cannot carry -- this is the sufficient-statistics
projection of the idea, and it stays elementwise (partition-safe) like
every other registry entry.
"""

from __future__ import annotations

import numpy as np

from repro.core.measures.registry import register
from repro.core.scores import PredicateScores


@register(
    "causal-hybrid",
    version=1,
    formula="(max(pf-ps,0) + max(Increase,0)) / 2",
)
def _causal_hybrid(scores: PredicateScores) -> np.ndarray:
    """Mean of the clamped predicate-view and outcome-view effects."""
    effect = np.where(
        scores.defined,
        np.maximum(np.asarray(scores.pf, dtype=np.float64) - scores.ps, 0.0),
        0.0,
    )
    outcome = np.maximum(np.asarray(scores.increase, dtype=np.float64), 0.0)
    return 0.5 * (effect + outcome)
