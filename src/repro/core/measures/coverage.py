"""Classic coverage-based fault-localisation measures on CBI counts.

The spectrum-based fault-localisation literature (Tarantula, Ochiai,
Jaccard, D*, F1 -- see the ceti2 exemplar in SNIPPETS.md and the Doric
derivations in PAPERS.md) scores program elements from four counts per
element: executed-by-failing, executed-by-passing, and the complements
against the population totals.  Our predicates carry the same shape:

* ``ef = F(P)``          -- failing runs where ``P`` was observed true;
* ``ep = S(P)``          -- successful runs where ``P`` was observed true;
* ``nf = NumF - F(P)``   -- failing runs where it was not;
* ``np = NumS - S(P)``   -- successful runs where it was not.

The adaptation note: in coverage-based SBFL "executed" is a property of a
statement; here "observed true" is a property of a *predicate*, and under
sampling the complements include runs that simply never sampled the site.
The measures remain well defined -- they just grade predicate truth
instead of statement coverage.  All formulas are elementwise in these
counts plus the totals, so each measure is partition-safe (see
:mod:`repro.core.measures.registry`), and every undefined quantity scores
``0.0`` rather than NaN.
"""

from __future__ import annotations

import numpy as np

from repro.core.measures.registry import register
from repro.core.scores import PredicateScores


def _counts(scores: PredicateScores):
    """Return ``(ef, ep, nf, num_f, num_s)`` as float64 arrays/scalars."""
    ef = np.asarray(scores.F, dtype=np.float64)
    ep = np.asarray(scores.S, dtype=np.float64)
    num_f = float(scores.num_failing)
    num_s = float(scores.num_successful)
    nf = num_f - ef
    return ef, ep, nf, num_f, num_s


@register(
    "tarantula",
    version=1,
    formula="(F/NumF) / (F/NumF + S/NumS)",
)
def _tarantula(scores: PredicateScores) -> np.ndarray:
    """Hue score of Jones et al.: failing rate over total truth rate."""
    ef, ep, _nf, num_f, num_s = _counts(scores)
    with np.errstate(divide="ignore", invalid="ignore"):
        fail_rate = ef / num_f if num_f > 0 else np.zeros_like(ef)
        pass_rate = ep / num_s if num_s > 0 else np.zeros_like(ep)
        denom = fail_rate + pass_rate
        return np.where(denom > 0, fail_rate / np.maximum(denom, 1e-300), 0.0)


@register(
    "ochiai",
    version=1,
    formula="F / sqrt(NumF * (F+S))",
)
def _ochiai(scores: PredicateScores) -> np.ndarray:
    """Cosine-style similarity between the predicate and the failure set."""
    ef, ep, _nf, num_f, _num_s = _counts(scores)
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = np.sqrt(num_f * (ef + ep))
        return np.where(denom > 0, ef / np.maximum(denom, 1e-300), 0.0)


@register(
    "jaccard",
    version=1,
    formula="F / (NumF + S)",
)
def _jaccard(scores: PredicateScores) -> np.ndarray:
    """Set overlap between truth-in-failing and (failing union truth)."""
    ef, ep, _nf, num_f, _num_s = _counts(scores)
    denom = num_f + ep
    return np.where(denom > 0, ef / np.maximum(denom, 1e-300), 0.0)


@register(
    "dstar2",
    version=1,
    formula="F^2 / (S + (NumF - F))",
)
def _dstar2(scores: PredicateScores) -> np.ndarray:
    """Wong et al.'s D* with star=2.

    A perfect predictor (true in every failing run, never in a successful
    one) has a zero denominator; the registry forbids inf, so the
    denominator is clamped to 1 there and the predictor scores ``F^2`` --
    the supremum of its own family, still elementwise and deterministic.
    """
    ef, ep, nf, _num_f, _num_s = _counts(scores)
    denom = ep + nf
    return np.where(ef > 0, (ef * ef) / np.maximum(denom, 1.0), 0.0)


@register(
    "f1",
    version=1,
    formula="2F / (2F + (NumF - F) + S)",
)
def _f1(scores: PredicateScores) -> np.ndarray:
    """Harmonic mean of precision ``F/(F+S)`` and recall ``F/NumF``."""
    ef, ep, nf, _num_f, _num_s = _counts(scores)
    denom = 2.0 * ef + nf + ep
    return np.where(denom > 0, 2.0 * ef / np.maximum(denom, 1e-300), 0.0)
