"""The paper's own measures: ``Importance`` (the default) and ``Increase``.

Both delegate to the existing scoring modules rather than re-deriving the
formulas, so the registry entry is bit-identical to the historical
hardcoded pipeline: ``measure_values(scores, "importance")`` returns the
very same array as ``importance_scores(scores).importance``.
"""

from __future__ import annotations

import numpy as np

from repro.core.importance import importance_scores
from repro.core.measures.registry import register
from repro.core.scores import PredicateScores


@register(
    "importance",
    version=1,
    formula="2 / (1/Increase + log(NumF)/log(F))",
)
def _importance(scores: PredicateScores) -> np.ndarray:
    """Section 3.3 harmonic mean of Increase and log-sensitivity."""
    return importance_scores(scores).importance


@register(
    "increase",
    version=1,
    formula="F/(F+S) - F_obs/(F_obs+S_obs)",
)
def _increase(scores: PredicateScores) -> np.ndarray:
    """Section 3.1 ``Increase(P)``, the pruning filter's raw score."""
    return np.asarray(scores.increase, dtype=np.float64)
