"""Pluggable suspiciousness measures over CBI sufficient statistics.

Importing this package loads the full catalogue (each module registers
its measures at import time) and re-exports the registry API:

* :data:`DEFAULT_MEASURE` -- ``"importance"``, the paper's Section 3.3
  ranking; every consumer uses it unless given ``--measure``/``measure=``.
* :func:`get` / :func:`available` / :func:`measure_values` -- lookup.
* :func:`register` -- add a new measure (see ``docs/MEASURES.md``).

Catalogue: ``importance``, ``increase`` (paper), ``tarantula``,
``ochiai``, ``jaccard``, ``dstar2``, ``f1`` (coverage-based SBFL),
``causal-hybrid`` (Kucuk & Henderson adaptation).
"""

from repro.core.measures.registry import (
    DEFAULT_MEASURE,
    Measure,
    UnknownMeasureError,
    available,
    get,
    measure_values,
    register,
)

# Catalogue modules register themselves on import.
from repro.core.measures import paper as _paper  # noqa: E402,F401
from repro.core.measures import coverage as _coverage  # noqa: E402,F401
from repro.core.measures import causal as _causal  # noqa: E402,F401

__all__ = [
    "DEFAULT_MEASURE",
    "Measure",
    "UnknownMeasureError",
    "available",
    "get",
    "measure_values",
    "register",
]
