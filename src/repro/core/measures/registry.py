"""The suspiciousness-measure registry.

A *measure* is a named, versioned, pure function from the shared
per-predicate sufficient statistics (:class:`repro.core.scores.PredicateScores`,
itself a function of ``F``, ``S``, ``F_obs``, ``S_obs``, ``NumF``,
``NumS``) to a per-predicate suspiciousness array.  Registering a measure
makes it available everywhere scoring happens: ``analyze --measure NAME``,
the parallel :class:`~repro.core.engine.AnalysisEngine`, the collection
daemon's ``GET /scores?measure=NAME``, federated scoring, and the
``repro-cbi bakeoff`` evaluation harness.

Two contracts every measure must honour:

* **Elementwise over sufficient statistics.**  A measure may read any
  per-predicate count/score array and the population totals
  (``num_failing`` / ``num_successful``), but the value it assigns to
  predicate ``i`` must depend only on row ``i`` and those totals.  This is
  what makes measure values invariant under the engine's predicate
  partitioning, so serial, ``--jobs N``, service, and federated scoring
  are bit-identical by construction.
* **No NaN / no inf.**  Undefined quantities score ``0.0``, matching the
  repo-wide convention of :mod:`repro.core.scores`; ranking code never
  needs NaN handling.

Measures register themselves at import time via the :func:`register`
decorator; importing :mod:`repro.core.measures` loads the full catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

import numpy as np

from repro.core.scores import PredicateScores

#: The measure every consumer uses unless told otherwise: the paper's
#: harmonic-mean Importance (Section 3.3 of Liblit et al., PLDI 2005).
DEFAULT_MEASURE = "importance"


class UnknownMeasureError(ValueError):
    """Raised when a measure name is not in the registry."""


@dataclass(frozen=True)
class Measure:
    """A registered suspiciousness measure.

    Attributes:
        name: Registry key, e.g. ``"tarantula"``.
        version: Bumped whenever the formula (not just the code) changes,
            so persisted bake-off documents stay comparable.
        formula: One-line human-readable formula, rendered in tables and
            ``docs/MEASURES.md``.
        fn: The scoring callable, ``PredicateScores -> np.ndarray``.
    """

    name: str
    version: int
    formula: str
    fn: Callable[[PredicateScores], np.ndarray] = field(repr=False)

    def values(self, scores: PredicateScores) -> np.ndarray:
        """Score every predicate; validate shape and finiteness.

        Returns a float64 array of length ``scores.n_predicates`` with no
        NaN/inf entries (the registry contract), raising ``ValueError`` if
        the underlying callable violates it.
        """
        out = np.asarray(self.fn(scores), dtype=np.float64)
        if out.shape != (scores.n_predicates,):
            raise ValueError(
                f"measure {self.name!r} returned shape {out.shape}, "
                f"expected ({scores.n_predicates},)"
            )
        if not np.all(np.isfinite(out)):
            raise ValueError(f"measure {self.name!r} produced non-finite values")
        return out


_REGISTRY: Dict[str, Measure] = {}


def register(
    name: str, *, version: int = 1, formula: str = ""
) -> Callable[[Callable[[PredicateScores], np.ndarray]], Callable[[PredicateScores], np.ndarray]]:
    """Class-level decorator registering a scoring function under ``name``.

    Names are lowercase identifiers; re-registering an existing name is an
    error (measures are versioned, not shadowed).
    """

    def _wrap(fn: Callable[[PredicateScores], np.ndarray]):
        key = name.strip().lower()
        if key in _REGISTRY:
            raise ValueError(f"measure {key!r} already registered")
        _REGISTRY[key] = Measure(name=key, version=version, formula=formula, fn=fn)
        return fn

    return _wrap


def get(name: str) -> Measure:
    """Look up a measure by name.

    Raises:
        UnknownMeasureError: Listing the registered names, so callers (CLI,
            HTTP 400 bodies) can surface the valid choices.
    """
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownMeasureError(
            f"unknown measure {name!r}; registered measures: "
            + ", ".join(available())
        ) from None


def available() -> Tuple[str, ...]:
    """Sorted names of every registered measure."""
    return tuple(sorted(_REGISTRY))


def measure_values(scores: PredicateScores, name: str = DEFAULT_MEASURE) -> np.ndarray:
    """Convenience: ``get(name).values(scores)``."""
    return get(name).values(scores)
