"""The "how many runs are needed?" estimator (Section 4.3, Table 8).

Methodology from the paper: choose one predictor per isolated bug; let
``Importance_N(P)`` be the predictor's importance computed over the first
``N`` runs; report the minimum ``N`` such that

    Importance_full(P) - Importance_N(P) < 0.2

together with ``F(P)`` over those ``N`` runs (the number of failing runs
where the predictor was observed true, which the paper notes is the
rate-independent measure: every bug was isolable with roughly 10-40 such
observations).  The paper sweeps N over 100..1,000 by hundreds and
1,000..25,000 by thousands; :func:`default_schedule` reproduces that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.importance import importance_scores
from repro.core.reports import ReportSet
from repro.core.scores import DEFAULT_CONFIDENCE, compute_scores


def default_schedule(max_runs: int) -> List[int]:
    """The paper's N sweep: 100-step hundreds, then 1,000-step thousands."""
    schedule = [n for n in range(100, 1000, 100) if n <= max_runs]
    schedule += [n for n in range(1000, 25001, 1000) if n <= max_runs]
    if not schedule or schedule[-1] != max_runs:
        schedule.append(max_runs)
    return schedule


@dataclass
class RunsNeededResult:
    """Outcome for one predictor.

    Attributes:
        predicate_index: The predictor analysed.
        runs_needed: Minimum ``N`` meeting the threshold test (the paper's
            "Runs" row), or ``None`` if no prefix in the schedule met it.
        failing_true_at_n: ``F(P)`` within those ``N`` runs (the "F(P)"
            row), or ``None``.
        importance_full: Importance over the full population.
        threshold: The convergence threshold used (paper: 0.2).
        curve: ``(N, Importance_N, F_at_N)`` samples for plotting.
    """

    predicate_index: int
    runs_needed: Optional[int]
    failing_true_at_n: Optional[int]
    importance_full: float
    threshold: float
    curve: List[Tuple[int, float, int]]


def importance_at_n(
    reports: ReportSet,
    predicate_index: int,
    n: int,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Tuple[float, int]:
    """Return ``(Importance_N(P), F(P) over the first N runs)``."""
    mask = np.zeros(reports.n_runs, dtype=bool)
    mask[: min(n, reports.n_runs)] = True
    scores = compute_scores(reports, run_mask=mask, confidence=confidence)
    imp = importance_scores(scores)
    return float(imp.importance[predicate_index]), int(scores.F[predicate_index])


def runs_needed(
    reports: ReportSet,
    predicate_index: int,
    threshold: float = 0.2,
    schedule: Optional[Sequence[int]] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> RunsNeededResult:
    """Apply the Table 8 methodology to one predictor.

    Args:
        reports: The full run population (run order is the arrival order;
            prefixes simulate having stopped collection early).
        predicate_index: The predictor ``P``.
        threshold: Convergence threshold on the importance gap.
        schedule: N values to test, ascending; defaults to the paper's.
        confidence: Confidence level for the underlying intervals.

    Returns:
        A :class:`RunsNeededResult`.

    Tie rule (pinned by the regression suite): the answer is the
    **first** schedule step whose gap is **strictly** below the
    threshold -- ``full_imp - imp_n < threshold``, never ``<=``.  A
    predictor whose importance oscillates around the threshold after
    that first crossing does *not* reset the answer; the paper's
    question is "when could collection have stopped?", and the earliest
    crossing is that moment.  A gap exactly equal to the threshold does
    not converge.
    """
    if schedule is None:
        schedule = default_schedule(reports.n_runs)
    full_scores = compute_scores(reports, confidence=confidence)
    full_imp = float(importance_scores(full_scores).importance[predicate_index])

    curve: List[Tuple[int, float, int]] = []
    found_n: Optional[int] = None
    found_f: Optional[int] = None
    for n in schedule:
        imp_n, f_n = importance_at_n(reports, predicate_index, n, confidence)
        curve.append((n, imp_n, f_n))
        if found_n is None and full_imp - imp_n < threshold:
            found_n, found_f = n, f_n
    return RunsNeededResult(
        predicate_index=predicate_index,
        runs_needed=found_n,
        failing_true_at_n=found_f,
        importance_full=full_imp,
        threshold=threshold,
        curve=curve,
    )


def runs_to_isolate(
    reports: ReportSet,
    predicate_indices: Sequence[int],
    threshold: float = 0.2,
    schedule: Optional[Sequence[int]] = None,
    confidence: float = DEFAULT_CONFIDENCE,
) -> Optional[int]:
    """Runs needed to isolate *every* bug's predictor (the steering metric).

    Applies :func:`runs_needed` to one chosen predictor per bug and
    returns the maximum over them -- the first run count at which every
    predictor's importance has stabilised, i.e. the budget at which
    collection could have stopped with the full-population answer in
    hand.  Returns None when any predictor never converges within the
    population (collection would have needed more runs than were made),
    and when no predictors are given (no isolated bugs means there is
    no isolation cost to report).
    """
    if not predicate_indices:
        return None
    worst = 0
    for index in predicate_indices:
        result = runs_needed(
            reports, index, threshold=threshold, schedule=schedule, confidence=confidence
        )
        if result.runs_needed is None:
            return None
        worst = max(worst, result.runs_needed)
    return worst


def estimate_runs_for_failures(failures_needed: int, predictor_run_fraction: float) -> int:
    """The paper's closing estimate: ``N ~= F / p``.

    If ``F`` failing observations are needed to isolate a predictor and
    runs where the predictor is observed true constitute a fraction ``p``
    of all runs, about ``F / p`` runs are required.
    """
    if not 0.0 < predictor_run_fraction <= 1.0:
        raise ValueError("predictor_run_fraction must be in (0, 1]")
    return int(np.ceil(failures_needed / predictor_run_fraction))
