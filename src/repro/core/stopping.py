"""Confidence-interval early stopping for cooperative collection.

The paper's Table 8 asks "how many runs are needed?" *offline*, by
re-scoring run prefixes after the fact.  The serving daemon can answer
it *live*: collection for a subject may stop once the top-ranked
predictors' score intervals have tightened past the point where more
runs could move the ranking.  Doric (Landsberg & Barr) formalises this
confidence view of statistical fault localisation; here we keep the
machinery deliberately simple and -- crucially -- **monotone**.

The convergence test is a pure function of one
:class:`~repro.store.incremental.SufficientStats` snapshot:

1. restrict to predictors whose ``Increase`` score is defined and
   strictly positive (the Section 3.1 candidate set);
2. rank them by ``Increase`` descending, predicate index ascending --
   both the score and the tie rule are invariant under scaling every
   count by the same factor, unlike the Importance ranking whose
   log-sensitivity term drifts with ``NumF``;
3. converge when the population has at least ``min_runs`` runs and
   ``min_failing`` failures, at least one candidate survives, and every
   one of the ``top_k`` ranked candidates has an ``Increase``
   half-interval no wider than ``epsilon``.

Monotonicity (pinned by the Hypothesis suite in
``tests/serve/test_steering_properties.py``): collecting a superset of
runs with identical per-run counts multiplies every sufficient statistic
by the same integer ``m >= 1``.  ``Increase`` is a ratio of the counts,
so the candidate set and ranking are unchanged; the Laplace-smoothed
proportions move *toward* their unsmoothed values (away from 1/2), so
each variance term -- ``p(1-p)/n`` with ``n`` scaled by ``m`` -- can
only shrink.  Every half-interval therefore narrows, and a converged
snapshot stays converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.scores import DEFAULT_CONFIDENCE, _z_for_confidence

#: Default half-interval width (on ``Increase``) below which a top
#: predictor counts as stable.
DEFAULT_EPSILON = 0.1

#: Default number of top-ranked predictors whose intervals must all be
#: stable before a subject converges.
DEFAULT_TOP_K = 5


@dataclass(frozen=True)
class StoppingPolicy:
    """When is a subject's collection allowed to stop?

    Attributes:
        top_k: How many top-ranked candidates must have stable intervals.
        epsilon: Maximum ``Increase`` half-interval width for "stable".
        min_runs: Floor on total runs before convergence is considered.
        min_failing: Floor on failing runs (an all-success population has
            nothing to localise, however tight its intervals).
        confidence: Confidence level for the intervals.
    """

    top_k: int = DEFAULT_TOP_K
    epsilon: float = DEFAULT_EPSILON
    min_runs: int = 100
    min_failing: int = 10
    confidence: float = DEFAULT_CONFIDENCE

    def to_json(self) -> dict:
        return {
            "top_k": int(self.top_k),
            "epsilon": float(self.epsilon),
            "min_runs": int(self.min_runs),
            "min_failing": int(self.min_failing),
            "confidence": float(self.confidence),
        }

    @classmethod
    def from_json(cls, spec: dict) -> "StoppingPolicy":
        return cls(
            top_k=int(spec["top_k"]),
            epsilon=float(spec["epsilon"]),
            min_runs=int(spec["min_runs"]),
            min_failing=int(spec["min_failing"]),
            confidence=float(spec["confidence"]),
        )


@dataclass(frozen=True)
class StoppingCandidate:
    """One top-ranked predictor's interval state at assessment time."""

    index: int
    increase: float
    half_width: float
    importance: float

    def to_json(self) -> dict:
        return {
            "index": int(self.index),
            "increase": float(self.increase),
            "half_width": float(self.half_width),
            "importance": float(self.importance),
        }


@dataclass(frozen=True)
class StoppingAssessment:
    """The convergence verdict over one statistics snapshot.

    Attributes:
        converged: Whether the policy's test passed.
        n_runs / num_failing: Population totals the verdict covers.
        candidates: The ``top_k`` ranked candidates examined (may be
            shorter when fewer survive), widest interval first is *not*
            guaranteed -- order is the ranking order.
        reason: Short human-readable explanation of the verdict.
    """

    converged: bool
    n_runs: int
    num_failing: int
    candidates: List[StoppingCandidate] = field(default_factory=list)
    reason: str = ""

    def to_json(self) -> dict:
        return {
            "converged": bool(self.converged),
            "n_runs": int(self.n_runs),
            "num_failing": int(self.num_failing),
            "reason": self.reason,
            "candidates": [c.to_json() for c in self.candidates],
        }


def assess_stats(stats, policy: StoppingPolicy = StoppingPolicy()) -> StoppingAssessment:
    """Apply ``policy`` to one sufficient-statistics snapshot.

    Pure: equal counts always produce equal assessments, so the daemon's
    ``converged`` flag is a function of the committed store alone (the
    refit-determinism contract of ``GET /steering``).

    Args:
        stats: A :class:`~repro.store.incremental.SufficientStats`.
        policy: The stopping thresholds.

    Returns:
        A :class:`StoppingAssessment`.
    """
    from repro.core.importance import importance_scores

    n_runs = int(stats.num_failing + stats.num_successful)
    num_failing = int(stats.num_failing)
    if n_runs < policy.min_runs:
        return StoppingAssessment(
            False, n_runs, num_failing,
            reason=f"{n_runs} runs < min_runs {policy.min_runs}",
        )
    if num_failing < policy.min_failing:
        return StoppingAssessment(
            False, n_runs, num_failing,
            reason=f"{num_failing} failing runs < min_failing {policy.min_failing}",
        )

    scores = stats.to_scores(confidence=policy.confidence)
    candidate_mask = scores.defined & (scores.increase > 0)
    indices = np.flatnonzero(candidate_mask)
    if indices.size == 0:
        return StoppingAssessment(
            False, n_runs, num_failing, reason="no candidate predictors"
        )

    # Rank by Increase descending; ties break toward the lower predicate
    # index.  Both are invariant under uniform count scaling, which is
    # what makes convergence monotone (see the module docstring).
    order = indices[np.lexsort((indices, -scores.increase[indices]))]
    top = order[: policy.top_k]

    crit = _z_for_confidence(policy.confidence)
    imp = importance_scores(scores, confidence=policy.confidence)
    candidates = [
        StoppingCandidate(
            index=int(i),
            increase=float(scores.increase[i]),
            half_width=float(crit * scores.increase_se[i]),
            importance=float(imp.importance[i]),
        )
        for i in top
    ]
    widest = max(c.half_width for c in candidates)
    converged = widest <= policy.epsilon
    reason = (
        f"top-{len(candidates)} widest Increase half-interval "
        f"{widest:.4f} {'<=' if converged else '>'} epsilon {policy.epsilon}"
    )
    return StoppingAssessment(converged, n_runs, num_failing, candidates, reason)
