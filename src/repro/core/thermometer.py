"""Bug thermometers (Section 3.3).

Each predicate's statistics are visualised as a "thermometer":

* total length is *logarithmic* in the number of runs in which the
  predicate was observed to be true (``F(P) + S(P)``);
* a black band showing ``Context(P)`` as a fraction of the length;
* a dark-gray (red) band showing the lower confidence bound of
  ``Increase(P)``;
* a light-gray (pink) band showing the confidence interval's width;
* white space on the right for the successful runs (``S(P)``), i.e. the
  non-deterministic remainder.

This module renders thermometers as fixed-width text (for terminal
tables) and as small inline HTML (for report pages).  Band proportions
are exact up to character quantisation; a property test asserts the band
widths always sum to the thermometer length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.scores import ScoreRow

#: Glyphs for the text rendering, in band order.
_GLYPHS = {
    "context": "#",
    "increase": "=",
    "interval": "~",
    "white": " ",
}

#: HTML colours matching the paper's description (black, red, pink, white).
_COLOURS = {
    "context": "#000000",
    "increase": "#cc0000",
    "interval": "#ffaaaa",
    "white": "#ffffff",
}


@dataclass(frozen=True)
class Thermometer:
    """A predicate's thermometer geometry.

    Attributes:
        length: Total length in abstract units (log-scaled run count).
        context: Width of the black ``Context`` band.
        increase: Width of the dark band (lower bound of ``Increase``).
        interval: Width of the light confidence-interval band.
        white: Remaining width (non-predictive successful mass).
    """

    length: float
    context: float
    increase: float
    interval: float
    white: float

    @classmethod
    def from_row(cls, row: ScoreRow, max_runs: int = 1) -> "Thermometer":
        """Build a thermometer from a predicate's score row.

        Args:
            row: Scalar scores of the predicate.
            max_runs: Largest ``F+S`` in the table being rendered, used to
                normalise lengths across rows (all log-scaled).
        """
        observed_true = max(row.F + row.S, 1)
        scale_max = max(max_runs, 2)
        length = math.log(observed_true + 1) / math.log(scale_max + 1)
        context = max(min(row.context, 1.0), 0.0)
        lo = max(min(row.increase_lo, 1.0 - context), 0.0)
        hi = max(min(row.increase_hi, 1.0 - context), lo)
        interval = hi - lo
        white = max(1.0 - context - lo - interval, 0.0)
        return cls(
            length=length,
            context=context * length,
            increase=lo * length,
            interval=interval * length,
            white=white * length,
        )

    def render_text(self, width: int = 24) -> str:
        """Render as a fixed-width bracketed bar, e.g. ``[##===~    ]``.

        The bar is ``round(length * width)`` characters wide inside a
        ``width``-character field, so longer thermometers (more runs)
        appear longer, as in the paper.
        """
        if width < 1:
            raise ValueError("width must be positive")
        bar_len = max(int(round(self.length * width)), 1)
        if self.length <= 0:
            bar_len = 1
        widths = self._quantise(bar_len)
        bar = (
            _GLYPHS["context"] * widths["context"]
            + _GLYPHS["increase"] * widths["increase"]
            + _GLYPHS["interval"] * widths["interval"]
            + _GLYPHS["white"] * widths["white"]
        )
        return f"[{bar}]".ljust(width + 2)

    def render_html(self, width_px: int = 120, height_px: int = 10) -> str:
        """Render as an inline-block HTML bar with the paper's colours."""
        total = max(self.length, 1e-9)
        bar_px = max(int(round(self.length * width_px)), 1)
        spans = []
        for band in ("context", "increase", "interval", "white"):
            frac = getattr(self, band) / total
            px = int(round(frac * bar_px))
            if px <= 0:
                continue
            spans.append(
                f'<span style="display:inline-block;width:{px}px;'
                f"height:{height_px}px;background:{_COLOURS[band]};"
                f'"></span>'
            )
        return (
            f'<span style="border:1px solid #888;display:inline-block;'
            f'line-height:0;">{"".join(spans)}</span>'
        )

    def _quantise(self, bar_len: int) -> dict:
        """Distribute ``bar_len`` characters over the four bands.

        Uses largest-remainder rounding so the band widths always sum to
        exactly ``bar_len``.
        """
        total = self.context + self.increase + self.interval + self.white
        if total <= 0:
            return {"context": 0, "increase": 0, "interval": 0, "white": bar_len}
        names = ("context", "increase", "interval", "white")
        exact = {n: getattr(self, n) / total * bar_len for n in names}
        floors = {n: int(math.floor(exact[n])) for n in names}
        leftover = bar_len - sum(floors.values())
        remainders = sorted(names, key=lambda n: exact[n] - floors[n], reverse=True)
        for n in remainders[:leftover]:
            floors[n] += 1
        return floors


def render_table_text(rows, table, max_runs=None, width: int = 24):
    """Render ``(ScoreRow, ...)`` sequences as aligned thermometer lines.

    Args:
        rows: Iterable of :class:`~repro.core.scores.ScoreRow`.
        table: The :class:`~repro.core.predicates.PredicateTable` for names.
        max_runs: Normalisation maximum (defaults to the largest ``F+S``).
        width: Character width of the thermometer bars.

    Returns:
        A list of formatted strings, one per row.
    """
    rows = list(rows)
    if max_runs is None:
        max_runs = max((r.F + r.S for r in rows), default=1)
    lines = []
    for row in rows:
        therm = Thermometer.from_row(row, max_runs=max_runs)
        name = table.predicates[row.predicate_index].name
        lines.append(
            f"{therm.render_text(width)} ctx={row.context:5.3f} "
            f"inc={row.increase:5.3f}±{row.increase - row.increase_lo:5.3f} "
            f"S={row.S:<6d} F={row.F:<6d} {name}"
        )
    return lines
