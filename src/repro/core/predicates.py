"""Static model of instrumentation sites and predicates.

Terminology follows Section 2 of the paper:

* An *instrumentation site* is a program point at which a fixed family of
  predicates is checked.  All predicates at a site are sampled jointly: one
  dynamic *observation* of the site observes every predicate it carries.
* A *predicate* is a single boolean property checked at a site.  The three
  schemes yield fixed-size predicate families:

  - ``branches``: 2 predicates (branch taken true / taken false);
  - ``returns``: 6 sign predicates on a call's scalar return value
    (``< 0``, ``== 0``, ``> 0``, ``>= 0``, ``!= 0``, ``<= 0``);
  - ``scalar-pairs``: 6 order predicates relating a freshly assigned
    scalar ``x`` to another in-scope scalar or constant ``y``
    (``x < y``, ``x == y``, ``x > y``, ``x >= y``, ``x != y``, ``x <= y``).

Predicates come in complementary pairs (e.g. ``< 0`` / ``>= 0``); Section 5
of the paper reasons about a predicate and its complement, so the table
exposes :meth:`PredicateTable.complement`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


class Scheme(enum.Enum):
    """The instrumentation scheme an observation site belongs to."""

    BRANCHES = "branches"
    RETURNS = "returns"
    SCALAR_PAIRS = "scalar-pairs"
    #: One predicate per function entry; the sum of its counters gives
    #: the code-coverage view the paper relates to software tomography
    #: (Section 6's GAMMA comparison).  Off by default.
    FUNCTION_ENTRIES = "function-entries"
    #: Classification of floating-point values at assignments (negative,
    #: zero, positive, NaN, infinite, subnormal) -- a scheme the CBI
    #: system shipped alongside the three the paper describes.  Off by
    #: default.
    FLOAT_KINDS = "float-kinds"
    CUSTOM = "custom"


class PredicateKind(enum.Enum):
    """Which member of a site's predicate family a predicate is.

    The ``value`` is the human-readable operator; ``offset`` is the
    predicate's fixed position within its site's family.
    """

    BRANCH_TRUE = ("is TRUE", 0)
    BRANCH_FALSE = ("is FALSE", 1)
    LT = ("< 0", 0)
    EQ = ("== 0", 1)
    GT = ("> 0", 2)
    GE = (">= 0", 3)
    NE = ("!= 0", 4)
    LE = ("<= 0", 5)
    ENTERED = ("entered", 0)
    FK_NEG = ("is negative", 0)
    FK_ZERO = ("is zero", 1)
    FK_POS = ("is positive", 2)
    FK_NAN = ("is NaN", 3)
    FK_INF = ("is infinite", 4)
    FK_SUBNORMAL = ("is subnormal", 5)
    CUSTOM = ("", 0)

    def __init__(self, label: str, offset: int) -> None:
        self.label = label
        self.offset = offset


#: Complementary-pair structure of each predicate family.  Selecting the
#: complement of ``BRANCH_TRUE`` yields ``BRANCH_FALSE``; the sign
#: predicates pair ``< / >=``, ``== / !=``, ``> / <=``.
_COMPLEMENTS: Dict[PredicateKind, PredicateKind] = {
    PredicateKind.BRANCH_TRUE: PredicateKind.BRANCH_FALSE,
    PredicateKind.BRANCH_FALSE: PredicateKind.BRANCH_TRUE,
    PredicateKind.LT: PredicateKind.GE,
    PredicateKind.GE: PredicateKind.LT,
    PredicateKind.EQ: PredicateKind.NE,
    PredicateKind.NE: PredicateKind.EQ,
    PredicateKind.GT: PredicateKind.LE,
    PredicateKind.LE: PredicateKind.GT,
}

#: Family layout per scheme, in site-local offset order.
SCHEME_KINDS: Dict[Scheme, Tuple[PredicateKind, ...]] = {
    Scheme.BRANCHES: (PredicateKind.BRANCH_TRUE, PredicateKind.BRANCH_FALSE),
    Scheme.RETURNS: (
        PredicateKind.LT,
        PredicateKind.EQ,
        PredicateKind.GT,
        PredicateKind.GE,
        PredicateKind.NE,
        PredicateKind.LE,
    ),
    Scheme.SCALAR_PAIRS: (
        PredicateKind.LT,
        PredicateKind.EQ,
        PredicateKind.GT,
        PredicateKind.GE,
        PredicateKind.NE,
        PredicateKind.LE,
    ),
    Scheme.FUNCTION_ENTRIES: (PredicateKind.ENTERED,),
    Scheme.FLOAT_KINDS: (
        PredicateKind.FK_NEG,
        PredicateKind.FK_ZERO,
        PredicateKind.FK_POS,
        PredicateKind.FK_NAN,
        PredicateKind.FK_INF,
        PredicateKind.FK_SUBNORMAL,
    ),
}

#: Comparison labels used for scalar-pair predicate names, per offset.
_PAIR_OPS: Tuple[str, ...] = ("<", "==", ">", ">=", "!=", "<=")


@dataclass(frozen=True)
class Site:
    """A static instrumentation site.

    Attributes:
        index: Dense site index within its :class:`PredicateTable`.
        scheme: Which instrumentation scheme produced the site.
        function: Enclosing function name (``"<module>"`` at top level).
        line: 1-based source line of the instrumented construct.
        description: Human-readable text, e.g. the branch condition source
            or the ``x = f(...)`` call expression.
    """

    index: int
    scheme: Scheme
    function: str
    line: int
    description: str

    def __str__(self) -> str:
        return f"{self.scheme.value}@{self.function}:{self.line} {self.description}"


@dataclass(frozen=True)
class Predicate:
    """One predicate at a site.

    Attributes:
        index: Dense predicate index within its :class:`PredicateTable`.
        site_index: Index of the owning :class:`Site`.
        kind: Member of the site's predicate family.
        name: Full human-readable predicate text as shown in the paper's
            tables, e.g. ``"filesindex >= 25"`` or ``"tmp == 0 is FALSE"``.
    """

    index: int
    site_index: int
    kind: PredicateKind
    name: str

    def __str__(self) -> str:
        return self.name


class PredicateTable:
    """Registry of every site and predicate in an instrumented program.

    The table assigns dense indices so feedback reports can be stored as
    matrices.  It is append-only: sites registered during instrumentation
    keep their indices for the lifetime of the experiment.
    """

    def __init__(self) -> None:
        self.sites: List[Site] = []
        self.predicates: List[Predicate] = []
        self._site_preds: List[List[int]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_site(
        self,
        scheme: Scheme,
        function: str,
        line: int,
        description: str,
        predicate_names: Optional[Sequence[str]] = None,
    ) -> Site:
        """Register a site and its full predicate family.

        Args:
            scheme: Instrumentation scheme; determines the family layout.
            function: Enclosing function name.
            line: Source line number.
            description: Text for the instrumented construct.
            predicate_names: Optional explicit names, one per family
                member.  Defaults derive names from ``description`` and the
                family operators.

        Returns:
            The newly registered :class:`Site`.
        """
        site = Site(len(self.sites), scheme, function, line, description)
        self.sites.append(site)
        kinds = SCHEME_KINDS.get(scheme, (PredicateKind.CUSTOM,))
        if predicate_names is None:
            predicate_names = [self._default_name(scheme, description, k) for k in kinds]
        if len(predicate_names) != len(kinds):
            raise ValueError(
                f"scheme {scheme.value} needs {len(kinds)} predicate names, "
                f"got {len(predicate_names)}"
            )
        indices: List[int] = []
        for kind, name in zip(kinds, predicate_names):
            pred = Predicate(len(self.predicates), site.index, kind, name)
            self.predicates.append(pred)
            indices.append(pred.index)
        self._site_preds.append(indices)
        return site

    def add_custom_site(
        self,
        function: str,
        line: int,
        description: str,
        predicate_names: Sequence[str],
    ) -> Site:
        """Register a site carrying an arbitrary predicate family.

        Used for hand-rolled instrumentation (Section 5 notes the approach
        extends to any predicate one can evaluate at a program point).
        """
        site = Site(len(self.sites), Scheme.CUSTOM, function, line, description)
        self.sites.append(site)
        indices: List[int] = []
        for name in predicate_names:
            pred = Predicate(len(self.predicates), site.index, PredicateKind.CUSTOM, name)
            self.predicates.append(pred)
            indices.append(pred.index)
        self._site_preds.append(indices)
        return site

    @staticmethod
    def _default_name(scheme: Scheme, description: str, kind: PredicateKind) -> str:
        if scheme is Scheme.BRANCHES:
            return f"{description} {kind.label}"
        if scheme is Scheme.RETURNS:
            return f"{description} {kind.label}"
        if scheme is Scheme.SCALAR_PAIRS:
            # description is "x __ y"; splice the operator in.
            return description.replace("__", _PAIR_OPS[kind.offset], 1)
        if scheme is Scheme.FUNCTION_ENTRIES:
            return f"{description} entered"
        if kind.label:
            return f"{description} {kind.label}"
        return description

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of registered sites."""
        return len(self.sites)

    @property
    def n_predicates(self) -> int:
        """Number of registered predicates."""
        return len(self.predicates)

    def site_of(self, predicate_index: int) -> Site:
        """Return the :class:`Site` owning the given predicate."""
        return self.sites[self.predicates[predicate_index].site_index]

    def predicates_at(self, site_index: int) -> List[Predicate]:
        """Return the predicate family of a site, in offset order."""
        return [self.predicates[i] for i in self._site_preds[site_index]]

    def predicate_indices_at(self, site_index: int) -> List[int]:
        """Return the dense predicate indices of a site's family."""
        return list(self._site_preds[site_index])

    def complement(self, predicate_index: int) -> Optional[int]:
        """Return the index of the logical complement of a predicate.

        Returns ``None`` for ``CUSTOM`` predicates, which have no declared
        complement.
        """
        pred = self.predicates[predicate_index]
        comp_kind = _COMPLEMENTS.get(pred.kind)
        if comp_kind is None:
            return None
        for idx in self._site_preds[pred.site_index]:
            if self.predicates[idx].kind is comp_kind:
                return idx
        return None

    def find(self, name_fragment: str) -> List[Predicate]:
        """Return predicates whose name contains ``name_fragment``."""
        return [p for p in self.predicates if name_fragment in p.name]

    def signature(self) -> str:
        """Return a stable content hash of the site/predicate layout.

        Two tables with the same signature assign identical meaning to
        every column index, so report sets carrying them can be merged.
        Shard manifests and archives store the signature to detect mixing
        reports from different instrumentations (or different subject
        versions), which would silently mis-attribute counters.
        """
        import hashlib
        import json as _json

        spec = [
            (
                s.scheme.value,
                s.function,
                s.line,
                s.description,
                [self.predicates[i].name for i in self._site_preds[s.index]],
            )
            for s in self.sites
        ]
        blob = _json.dumps(spec, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.predicates)

    def __repr__(self) -> str:
        return f"PredicateTable(sites={self.n_sites}, predicates={self.n_predicates})"
