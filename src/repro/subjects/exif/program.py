"""The buggy EXIF-analogue program.

Parses a TIFF/EXIF-like structure (IFDs of tagged entries plus an
optional thumbnail and an optional Canon-style maker note), then
re-serialises everything -- the load/save round trip real libexif
performs.  Three seeded bugs, matching the paper's Table 6 predictors
(``i < 0``, ``maxlen > 1900``, ``o + s > buf_size is TRUE``):

========  ==================================================================
bug id    behaviour
========  ==================================================================
exif1     the thumbnail copy start index ``size - thumb_len`` is not
          validated; a declared thumbnail length larger than the data
          yields a negative index and the copy writes before the buffer
          (the paper's ``i < 0`` predictor)
exif2     entry payloads are serialised into a fixed 1900-cell
          workspace; the accumulated offset ``maxlen`` is never checked,
          so oversized component counts overrun the workspace (the
          paper's ``maxlen > 1900`` predictor)
exif3     the maker-note loader returns early when ``o + s > buf_size``
          *after* bumping the loaded-entry count, leaving that entry's
          data pointer NULL; the save path trusts the count and hands
          the NULL to ``memcpy`` (the paper's worked example)
========  ==================================================================
"""

from repro.simmem.heap import NULL, SimHeap, memcpy
from repro.subjects.base import record_bug

#: Bytes-per-component for each format code (format 0 unused).
FORMAT_SIZE = (0, 1, 1, 2, 4, 8, 1, 1)
#: Fixed serialisation workspace size (bug exif2's overrun boundary).
WORKSPACE = 1900
#: Maker-note scratch size.
MNOTE_BUF = 256


def parse_entry(heap, entry):
    """Parse one IFD entry into a heap record.

    Record layout: ``[tag, format, components, size, data buffer]``.
    """
    fmt = entry["format"]
    components = entry["components"]
    size = FORMAT_SIZE[fmt] * components
    rec = heap.malloc(5)
    rec.write(0, entry["tag"])
    rec.write(1, fmt)
    rec.write(2, components)
    rec.write(3, size)
    data = heap.malloc(max(size, 1))
    values = entry["values"]
    i = 0
    for v in values:
        data.write(i % max(size, 1), v)
        i += 1
    rec.write(4, data)
    return rec, size


def parse_thumbnail(heap, thumb):
    """Copy the trailing thumbnail bytes out of the raw data block.

    BUG exif1: ``start = size - thumb_len`` may be negative when the
    declared thumbnail length exceeds the data block; the copy then
    indexes before the buffer.
    """
    raw = thumb["data"]
    size = len(raw)
    container = heap.malloc(max(size, 1))
    thumb_len = thumb["declared_len"]
    start = size - thumb_len
    if start < 0:
        # BUG exif1: missing "if start < 0" validation; the copy below
        # writes before the container.
        record_bug("exif1")
    i = start
    j = 0
    while j < thumb_len and j < len(raw):
        container.write(i, raw[j])
        i += 1
        j += 1
    return container, thumb_len


def mnote_canon_load(heap, note, buf_size):
    """Load the Canon maker-note entries (the paper's worked example).

    BUG exif3: the entry count is bumped *before* the bounds check, and
    the early return leaves ``entries[i]["data"]`` NULL.
    """
    c = note["count"]
    entries = []
    i = 0
    while i < len(note["offsets"]):
        entries.append({"data": NULL, "size": note["sizes"][i]})
        i += 1
    n_count = 0
    i = 0
    while i < c:
        n_count = i + 1
        o = note["offsets"][i]
        s = note["sizes"][i]
        if o + s > buf_size:
            # BUG exif3: returns with entry i's data still NULL while
            # n_count already includes it.
            record_bug("exif3")
            return entries, n_count
        data = heap.malloc(max(s, 1))
        j = 0
        while j < s:
            data.write(j, (o + j) % 256)
            j += 1
        entries[i]["data"] = data
        i += 1
    return entries, n_count


def mnote_canon_save(heap, entries, n_count):
    """Serialise the maker-note entries back out.

    Trusts ``n_count`` from the loader; a NULL data pointer reaches
    ``memcpy`` and segfaults -- far from the loader that caused it.
    """
    total = 0
    i = 0
    while i < n_count:
        total += entries[i]["size"]
        i += 1
    out = heap.malloc(max(total, 1))
    scratch = heap.malloc(MNOTE_BUF)
    offset = 0
    i = 0
    while i < n_count:
        s = entries[i]["size"]
        memcpy(scratch, entries[i]["data"], min(s, MNOTE_BUF))
        j = 0
        while j < min(s, MNOTE_BUF):
            out.write((offset + j) % max(total, 1), scratch.read(j))
            j += 1
        offset += s
        i += 1
    return out, total


def save_data(heap, records, sizes):
    """Serialise every parsed entry into the fixed workspace.

    BUG exif2: ``maxlen`` accumulates each entry's rounded size with no
    bound check against ``WORKSPACE``.
    """
    workspace = heap.malloc(WORKSPACE)
    # Directory footer, allocated right after the workspace: the
    # workspace overrun lands on it (or its metadata).
    footer = heap.malloc(4)
    footer.write(0, len(records))
    footer.write(1, 0)
    footer.write(2, 0)
    footer.write(3, 0)
    maxlen = 0
    k = 0
    for rec in records:
        size = sizes[k]
        data = rec.read(4)
        if maxlen + size > WORKSPACE:
            # BUG exif2: missing workspace bound check.
            record_bug("exif2")
        j = 0
        while j < size:
            workspace.write(maxlen + j, data.read(j % max(size, 1)))
            j += 1
        maxlen += size + (size % 4)
        k += 1
    return workspace, maxlen


def main(job):
    """Parse and re-serialise one EXIF-like blob.

    ``job``: ``heap_seed``, ``ifds`` (lists of entry dicts), optional
    ``thumbnail`` and ``maker_note``, and ``buf_size``.

    Returns summary counts ``(n_entries, maxlen, thumb_len, mnote_len)``.
    """
    heap = SimHeap(seed=job["heap_seed"])
    records = []
    sizes = []
    for ifd in job["ifds"]:
        for entry in ifd["entries"]:
            rec, size = parse_entry(heap, entry)
            records.append(rec)
            sizes.append(size)

    thumb_len = 0
    if job["thumbnail"] is not None:
        _thumb, thumb_len = parse_thumbnail(heap, job["thumbnail"])

    mnote_entries = None
    n_count = 0
    if job["maker_note"] is not None:
        mnote_entries, n_count = mnote_canon_load(
            heap, job["maker_note"], job["buf_size"]
        )

    _ws, maxlen = save_data(heap, records, sizes)

    mnote_len = 0
    if mnote_entries is not None:
        _out, mnote_len = mnote_canon_save(heap, mnote_entries, n_count)

    return (len(records), maxlen, thumb_len, mnote_len)
