"""Subject wrapper and input generator for the EXIF analogue."""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.subjects import base
from repro.subjects.exif import program as program_module

#: Probability the blob has a thumbnail.
P_THUMBNAIL = 0.50
#: Probability a present thumbnail declares a length beyond its data
#: (bug exif1's trigger).
P_BAD_THUMB_LEN = 0.040
#: Probability the blob carries one oversized entry (exif2's trigger).
P_HUGE_ENTRY = 0.035
#: Probability the blob has a Canon-style maker note.
P_MAKER_NOTE = 0.35
#: Probability a present maker note contains an out-of-bounds entry
#: (exif3's trigger -- deliberately the rarest bug, as in the paper).
P_BAD_MNOTE = 0.012
#: Maker-note scratch size the offsets are validated against.
BUF_SIZE = 256


def _entry(rng: random.Random, huge: bool = False) -> Dict:
    fmt = rng.randint(1, 7)
    if huge:
        components = rng.randint(300, 700)
    else:
        components = rng.randint(1, 40)
    values = [rng.randint(0, 255) for _ in range(min(components, 48))]
    return {
        "tag": rng.randint(0x0100, 0xA500),
        "format": fmt,
        "components": components,
        "values": values,
    }


def generate_job(rng: random.Random) -> Dict:
    """One random EXIF-like blob."""
    ifds = []
    huge_placed = rng.random() >= P_HUGE_ENTRY  # False => place one
    for _ in range(rng.randint(1, 3)):
        entries = []
        for _ in range(rng.randint(1, 8)):
            make_huge = not huge_placed and rng.random() < 0.5
            if make_huge:
                huge_placed = True
            entries.append(_entry(rng, huge=make_huge))
        ifds.append({"entries": entries})
    if not huge_placed:
        ifds[-1]["entries"].append(_entry(rng, huge=True))

    thumbnail = None
    if rng.random() < P_THUMBNAIL:
        data = [rng.randint(0, 255) for _ in range(rng.randint(16, 160))]
        declared = len(data)
        if rng.random() < P_BAD_THUMB_LEN:
            declared = len(data) + rng.randint(1, 120)
        thumbnail = {"data": data, "declared_len": declared}

    maker_note = None
    if rng.random() < P_MAKER_NOTE:
        count = rng.randint(1, 6)
        offsets = []
        sizes = []
        bad = rng.random() < P_BAD_MNOTE
        bad_index = rng.randrange(count) if bad else -1
        for i in range(count):
            s = rng.randint(4, 48)
            if i == bad_index:
                o = rng.randint(BUF_SIZE - s + 1, BUF_SIZE + 64)
            else:
                o = rng.randint(0, BUF_SIZE - s)
            offsets.append(o)
            sizes.append(s)
        maker_note = {"count": count, "offsets": offsets, "sizes": sizes}

    return {
        "heap_seed": rng.randint(0, 2 ** 31 - 1),
        "ifds": ifds,
        "thumbnail": thumbnail,
        "maker_note": maker_note,
        "buf_size": BUF_SIZE,
    }


class ExifSubject(base.Subject):
    """Table 6's subject: three distinct crashing bugs."""

    name = "exif"
    entry = "main"
    bug_ids = ("exif1", "exif2", "exif3")
    trial_budget = 3000

    def source(self) -> str:
        """Source of the buggy program."""
        return self.source_of(program_module)

    def generate_input(self, rng: random.Random) -> Any:
        """One random EXIF-like blob."""
        return generate_job(rng)
