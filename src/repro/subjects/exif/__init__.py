"""The EXIF analogue: an image-metadata (TIFF/EXIF-style) parser (Table 6).

EXIF 0.6.9 contained three previously unknown crashing bugs that the
paper's algorithm isolated, including the worked example of Section 4.2.3:
the Canon maker-note loader's ``o + s > buf_size`` early return leaves
entry data pointers uninitialised, which the save path later hands to
``memcpy``.  The analogue reproduces all three, with the same two-phase
load/save structure so the crash stack points far from the cause.
"""

from repro.subjects.exif.subject import ExifSubject

__all__ = ["ExifSubject"]
