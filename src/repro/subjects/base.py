"""Subject-program protocol and the ground-truth side channel.

A :class:`Subject` describes one evaluation program: how to obtain its
source (which the experiment harness instruments), how to generate random
inputs, and how to label a run as success or failure.  Failure labelling
follows the paper: an uncaught exception is a crash; otherwise an
optional output *oracle* compares the output against a correct reference
implementation ("we also ran a correct version of MOSS and compared the
output of the two versions").

Bugs triggered during a run are recorded through :func:`record_bug`.
This side channel is invisible to the isolation algorithm (the
instrumenter is configured to never instrument calls named
``record_bug``); it only feeds the ground-truth columns of Table 3.
"""

from __future__ import annotations

import abc
import inspect
import random
from typing import Any, List, Optional, Sequence

#: The active per-run bug sink.  ``None`` outside a managed run, in which
#: case recordings are silently dropped (so subjects stay runnable as
#: plain Python programs).
_CURRENT_SINK: Optional[List[str]] = None


def record_bug(bug_id: str) -> None:
    """Record that a seeded bug's faulty behaviour actually occurred.

    Subjects call this at the moment the bad thing happens (the overrun
    write, the skipped check, ...), regardless of whether the run will
    eventually crash -- matching the paper's "exact set of bugs that
    actually occurred in each run".
    """
    if _CURRENT_SINK is not None and bug_id not in _CURRENT_SINK:
        _CURRENT_SINK.append(bug_id)


def begin_truth_capture() -> List[str]:
    """Install a fresh bug sink for the next run and return it."""
    global _CURRENT_SINK
    _CURRENT_SINK = []
    return _CURRENT_SINK


def end_truth_capture() -> List[str]:
    """Remove the active sink and return what it captured."""
    global _CURRENT_SINK
    sink = _CURRENT_SINK if _CURRENT_SINK is not None else []
    _CURRENT_SINK = None
    return sink


class Subject(abc.ABC):
    """One evaluation program.

    Attributes:
        name: Short identifier (``"moss"``, ``"ccrypt"``, ...).
        entry: Name of the module-level entry function; it takes the
            object produced by :meth:`generate_input` and returns the
            program output.
        bug_ids: All seeded bug identifiers, in display order.
        trial_budget: Default number of trials for an experiment over
            this subject -- what ``run``/``collect`` use when ``--runs``
            is not given, and what ``list --json`` advertises to scripts
            sizing a collection session.
    """

    name: str = "subject"
    entry: str = "main"
    bug_ids: Sequence[str] = ()
    trial_budget: int = 2000
    #: ``"builtin"`` for the hand-built analogues, ``"factory"`` for
    #: subjects manufactured by :mod:`repro.factory`.
    kind: str = "builtin"

    @abc.abstractmethod
    def source(self) -> str:
        """Return the program source text to instrument."""

    def build_program(self, config=None, table=None):
        """Instrument this subject and return an ``InstrumentedProgram``.

        Every production consumer (collect/analyze/serve/bakeoff/bench)
        builds programs through this method so factory subjects -- whose
        programs span several modules behind an import hook -- slot in
        transparently.  The base implementation instruments the single
        :meth:`source` module.
        """
        from repro.instrument.tracer import instrument_source

        return instrument_source(
            self.source(), name=self.name, config=config, table=table
        )

    def bug_sites(self):
        """Static ground-truth ``record_bug`` sites for this subject.

        Aligned with the function names :meth:`build_program` registers
        in the predicate table; factory subjects override this to scan
        every module with its qualifying prefix.
        """
        from repro.core.truth import bug_sites_from_source

        return bug_sites_from_source(self.source())

    @abc.abstractmethod
    def generate_input(self, rng: random.Random) -> Any:
        """Generate one random input."""

    def oracle(self, program_input: Any, output: Any) -> bool:
        """Return ``True`` when a non-crashing run's output is correct.

        The default accepts every output, i.e. only crashes fail.
        Subjects with non-crashing bugs override this with a comparison
        against a reference implementation.
        """
        return True

    @staticmethod
    def source_of(module) -> str:
        """Helper: fetch a module's source for :meth:`source`."""
        return inspect.getsource(module)
