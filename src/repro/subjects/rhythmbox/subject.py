"""Subject wrapper and session-script generator for the RHYTHMBOX analogue."""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.subjects import base
from repro.subjects.rhythmbox import program as program_module

#: Session length range (simulation time units).
SESSION_MIN, SESSION_MAX = 30, 120
#: Probability the session ends with a quit (rb1's regime).
P_QUIT = 0.75


def generate_job(rng: random.Random) -> Dict:
    """One random interactive session script.

    Sessions mix playback control, library updates and view churn at
    random timestamps, so whether a tick or a queued view signal races a
    disposal depends entirely on generated timing -- the bugs fire (or
    not) like real races.
    """
    horizon = rng.randint(SESSION_MIN, SESSION_MAX)
    script: List[Tuple[int, str, int]] = []

    for _ in range(rng.randint(1, 4)):
        script.append((rng.randint(0, horizon // 2), "add_view", 0))
    for _ in range(rng.randint(1, 3)):
        script.append((rng.randint(0, horizon - 1), "play", rng.randint(1, 500)))
    for _ in range(rng.randint(0, 2)):
        script.append((rng.randint(0, horizon - 1), "stop", 0))
    for _ in range(rng.randint(0, 2)):
        script.append((rng.randint(0, horizon - 1), "pause", 0))
    for _ in range(rng.randint(0, 3)):
        script.append((rng.randint(0, horizon - 1), "volume", rng.randint(0, 150)))
    for _ in range(rng.randint(0, 5)):
        script.append(
            (rng.randint(0, horizon - 1), "db_update", rng.randint(-3, 8))
        )
    for _ in range(rng.randint(0, 3)):
        script.append(
            (rng.randint(0, horizon - 1), "remove_view", rng.randint(0, 7))
        )
    if rng.random() < P_QUIT:
        script.append((horizon, "quit", 0))

    script.sort(key=lambda e: e[0])
    return {
        "heap_seed": rng.randint(0, 2 ** 31 - 1),
        "script": script,
    }


class RhythmboxSubject(base.Subject):
    """Table 7's subject: an event-driven system with two race bugs."""

    name = "rhythmbox"
    entry = "main"
    bug_ids = ("rb1", "rb2")
    trial_budget = 2000

    def source(self) -> str:
        """Source of the buggy program."""
        return self.source_of(program_module)

    def generate_input(self, rng: random.Random) -> Any:
        """One random session script."""
        return generate_job(rng)
