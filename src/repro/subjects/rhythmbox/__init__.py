"""The RHYTHMBOX analogue: an event-driven music player (Table 7).

RHYTHMBOX 0.6.5 is "a complex, multi-threaded, event-driven system"; the
paper isolated a race condition and a pervasive unsafe pattern of
accessing the underlying object library.  The analogue is a discrete-
event simulation of a player: an event queue drives playback ticks,
database updates and widget signals, with two seeded bugs of exactly
those species.  As in the paper, the crash stacks are useless -- every
crash surfaces inside the main event loop.
"""

from repro.subjects.rhythmbox.subject import RhythmboxSubject

__all__ = ["RhythmboxSubject"]
