"""The buggy RHYTHMBOX-analogue program.

A discrete-event player simulation.  Objects live on the simulated heap
(so disposed objects really are freed memory):

* the **db** record tracks library entries and a version counter, and
  keeps a signal-handler list of subscribed views;
* the **player** record owns a separate ``priv`` record holding the
  timer flag, elapsed time, current track and volume;
* **view** records subscribe to db change signals and cache state.

Events are processed in timestamp order from one queue, so every crash
stack bottoms out in ``main_loop`` -- "the stack in the main event loop
is unchanging and all of the interesting state is in the queues".

========  ==================================================================
bug id    behaviour
========  ==================================================================
rb1       quitting stops the player and schedules finalisation, but the
          playback tick already sitting in the queue is not cancelled;
          if it drains *after* finalisation has freed the player's
          ``priv`` record, the callback reads freed memory.  Whether the
          tick lands before or after finalisation is a genuine timing
          race.
rb2       a view removed while its change signal is still queued takes
          an early disposal path that forgets to disconnect its db
          handler (the paper's pervasive unsafe library pattern); the
          next db change signal walks the handler list into freed
          memory.
========  ==================================================================
"""

import heapq

from repro.simmem.heap import SimHeap
from repro.subjects.base import record_bug

#: Playback tick period (simulation time units).
TICK = 5
#: Delay between quit and finalisation (the rb1 race window's edge).
FINALIZE_DELAY = 3
#: Delay before a queued view signal is drained (the rb2 race window).
SIG_DRAIN_DELAY = 2
#: priv record slots.
PRIV_TIMER, PRIV_ELAPSED, PRIV_TRACK, PRIV_VOLUME = 0, 1, 2, 3
#: view record slots.
VIEW_ID, VIEW_SIG_QUEUED, VIEW_DB_VERSION = 0, 1, 2
#: player states.
STOPPED, PLAYING, PAUSED = 0, 1, 2


class Shell:
    """The application shell: owns every object and the event queue."""

    def __init__(self, heap):
        self.heap = heap
        self.queue = []
        self.seq = 0
        self.now = 0
        self.db = heap.malloc(2)
        self.db.write(0, 0)  # entry count
        self.db.write(1, 0)  # version
        self.db_handlers = []  # connected view records
        self.priv = heap.malloc(4)
        self.priv.write(PRIV_TIMER, 0)
        self.priv.write(PRIV_ELAPSED, 0)
        self.priv.write(PRIV_TRACK, 0)
        self.priv.write(PRIV_VOLUME, 50)
        self.player = heap.malloc(2)
        self.player.write(0, STOPPED)
        self.player.write(1, self.priv)
        self.views = {}
        self.next_view = 1
        self.player_disposed = False
        self.shutdown = False
        self.signals_emitted = 0

    def push(self, delay, kind, arg):
        """Schedule an event ``delay`` units from now."""
        self.seq += 1
        heapq.heappush(self.queue, (self.now + delay, self.seq, kind, arg))


def add_view(shell):
    """Create a view and connect it to the db change signal."""
    view = shell.heap.malloc(3)
    view.write(VIEW_ID, shell.next_view)
    view.write(VIEW_SIG_QUEUED, 0)
    view.write(VIEW_DB_VERSION, shell.db.read(1))
    shell.views[shell.next_view] = view
    shell.db_handlers.append(view)
    shell.next_view += 1
    return view


def remove_view(shell, view_id):
    """Dispose a view.

    BUG rb2: when the view's change signal is still queued, the early
    disposal path frees the record without disconnecting its handler.
    The handler list then references freed memory until the next signal
    emission crashes on it.
    """
    view = shell.views.pop(view_id, None)
    if view is None:
        return
    sig_queued = view.read(VIEW_SIG_QUEUED)
    if sig_queued == 1:
        # BUG rb2: missing shell.db_handlers.remove(view) on this path.
        record_bug("rb2")
    else:
        shell.db_handlers.remove(view)
    shell.heap.free(view)


def dispose_view_safely(shell, view_id):
    """The correct disposal used during shutdown: disconnect, then free."""
    view = shell.views.pop(view_id, None)
    if view is None:
        return
    if view in shell.db_handlers:
        shell.db_handlers.remove(view)
    shell.heap.free(view)


def db_update(shell, delta):
    """Apply a library change and emit the change signal."""
    count = shell.db.read(0) + delta
    if count < 0:
        count = 0
    shell.db.write(0, count)
    shell.db.write(1, shell.db.read(1) + 1)
    emit_db_changed(shell)


def emit_db_changed(shell):
    """Mark each connected view's signal queued and schedule its drain.

    Walking the handler list over a freed view record (rb2's aftermath)
    segfaults here -- far from the faulty disposal.
    """
    shell.signals_emitted += 1
    version = shell.db.read(1)
    for view in shell.db_handlers:
        queued = view.read(VIEW_SIG_QUEUED)
        if queued == 0:
            view.write(VIEW_SIG_QUEUED, 1)
            shell.push(SIG_DRAIN_DELAY, "sig_drain", view.read(VIEW_ID))
        view.write(VIEW_DB_VERSION, version)


def on_sig_drain(shell, view_id):
    """Deliver a queued view signal (clears the queued flag)."""
    view = shell.views.get(view_id)
    if view is None:
        return
    view.write(VIEW_SIG_QUEUED, 0)


def player_play(shell, track):
    """Start playback and arm the tick timer."""
    state = shell.player.read(0)
    priv = shell.player.read(1)
    priv.write(PRIV_TRACK, track)
    if state != PLAYING:
        shell.player.write(0, PLAYING)
        if priv.read(PRIV_TIMER) == 0:
            priv.write(PRIV_TIMER, 1)
            shell.push(TICK, "tick", 0)


def player_stop(shell):
    """Stop playback.

    Clears the timer flag; the tick already queued is *not* cancelled
    (rb1's precondition), but the flag check in the callback makes a
    post-stop tick harmless -- unless the player has been finalised.
    """
    if shell.player_disposed:
        return
    shell.player.write(0, STOPPED)
    priv = shell.player.read(1)
    priv.write(PRIV_TIMER, 0)
    priv.write(PRIV_ELAPSED, 0)


def on_tick(shell):
    """Playback tick callback.

    BUG rb1: after finalisation freed ``priv``, the reads below hit
    freed memory.  (The ``timer == 0`` early-out only covers a plain
    stop.)
    """
    if shell.player_disposed:
        record_bug("rb1")
    priv = shell.priv
    if priv.read(PRIV_TIMER) == 0:
        return
    priv.write(PRIV_ELAPSED, priv.read(PRIV_ELAPSED) + TICK)
    if not shell.shutdown:
        shell.push(TICK, "tick", 0)


def on_quit(shell):
    """Begin shutdown: stop playback, then finalise a moment later.

    The gap between quit and finalisation is what makes rb1 a race: a
    tick landing inside the gap is harmless, one landing after it reads
    freed memory.
    """
    if shell.shutdown:
        return
    shell.shutdown = True
    player_stop(shell)
    shell.push(FINALIZE_DELAY, "finalize", 0)


def on_finalize(shell):
    """Dispose the player and every view (correctly disconnecting)."""
    shell.player_disposed = True
    shell.heap.free(shell.priv)
    shell.heap.free(shell.player)
    for view_id in list(shell.views):
        dispose_view_safely(shell, view_id)


def dispatch(shell, kind, arg):
    """Route one event to its handler."""
    if kind == "add_view":
        add_view(shell)
    elif kind == "remove_view":
        if shell.views:
            keys = sorted(shell.views)
            remove_view(shell, keys[arg % len(keys)])
    elif kind == "play":
        if not shell.player_disposed:
            player_play(shell, arg)
    elif kind == "pause":
        if not shell.player_disposed and shell.player.read(0) == PLAYING:
            shell.player.write(0, PAUSED)
    elif kind == "stop":
        player_stop(shell)
    elif kind == "volume":
        if not shell.player_disposed:
            priv = shell.player.read(1)
            priv.write(PRIV_VOLUME, arg % 100)
    elif kind == "db_update":
        if not shell.shutdown:
            db_update(shell, arg)
    elif kind == "sig_drain":
        on_sig_drain(shell, arg)
    elif kind == "tick":
        on_tick(shell)
    elif kind == "quit":
        on_quit(shell)
    elif kind == "finalize":
        on_finalize(shell)


def main_loop(shell):
    """Drain the event queue in timestamp order."""
    guard = 0
    while shell.queue and guard < 10000:
        when, _seq, kind, arg = heapq.heappop(shell.queue)
        shell.now = when
        dispatch(shell, kind, arg)
        guard += 1
    return guard


def main(job):
    """Run one scripted session.

    ``job``: ``heap_seed`` and ``script`` -- a list of ``(time, kind,
    arg)`` actions.

    Returns ``(events_processed, signals_emitted, final_db_version)``.
    """
    heap = SimHeap(seed=job["heap_seed"])
    shell = Shell(heap)
    for when, kind, arg in job["script"]:
        shell.seq += 1
        heapq.heappush(shell.queue, (when, shell.seq, kind, arg))
    processed = main_loop(shell)
    return (processed, shell.signals_emitted, shell.db.read(1))
