"""Subject programs: Python analogues of the paper's five case studies.

Each subject packages (1) a program source to instrument, (2) a seeded
random-input generator, (3) a success/failure labelling (crash or output
oracle), and (4) ground-truth bug recording so controlled experiments can
grade the algorithm's output, as in Section 4.1.

Subjects:

* :mod:`repro.subjects.moss` -- winnowing plagiarism detector with 9
  seeded bugs (the Table 3 validation experiment);
* :mod:`repro.subjects.ccrypt` -- stream-cipher file tool with an input
  validation bug (Table 4);
* :mod:`repro.subjects.bc` -- calculator with a heap overrun that crashes
  long after the overrun (Table 5);
* :mod:`repro.subjects.exif` -- image-metadata parser with three bugs,
  including the paper's worked ``o + s > buf_size`` example (Table 6);
* :mod:`repro.subjects.rhythmbox` -- event-driven music-player simulation
  with timer/race bugs (Table 7).
"""

from repro.subjects.base import Subject, record_bug

__all__ = ["Subject", "record_bug"]
