"""The buggy MOSS-analogue program (instrumented by the harness).

Pipeline: tokenize each submitted file -> k-gram hashing -> winnowing ->
shared fingerprint index (chained hash table on the simulated heap) ->
drop over-common fingerprints -> pairwise matching -> passage grouping.

Nine seeded bugs, following the paper's Section 4.1 taxonomy (four buffer
overruns; a null file-pointer dereference in certain cases; a missing
end-of-list/head update in a hash-bucket traversal, which is also the
"subtle invariant" between the bucket head and its chain; a missing
out-of-memory check; a latent overrun that is never triggered; and an
incorrect comment-handling bug that only corrupts output):

========  ==================================================================
bug id    behaviour
========  ==================================================================
moss1     token-buffer overrun when a file yields more than ``TOKEN_CAP``
          tokens (trigger: ``token_index > 500``-style inputs)
moss2     missing out-of-memory check on the passage-detail allocation;
          the injected NULL is dereferenced (rare)
moss3     passage-table overrun when more than ``PASSAGE_CAP`` passages
          are recorded across all file pairs
moss4     file-table overrun when more than ``FILE_CAP`` files are
          submitted (trigger: ``filesindex >= 25``)
moss5     null language-handler dereference when a file's language id
          exceeds the handler table (``language > 16``); the most common
          bug
moss6     removing an over-common fingerprint at the head of its hash
          bucket frees the node without updating the bucket head; the
          next traversal of that bucket dereferences freed memory
moss7     one-cell overrun of the final stats scratch buffer on very
          large inputs; lands in trailing heap space, so it never
          independently causes a failure
moss8     latent overrun guarded by a token value the generator never
          produces; never triggered (the paper's bug #8)
moss9     with comment matching enabled, the second of two consecutive
          comment tokens is dropped; output-only corruption caught by
          the differential oracle
========  ==================================================================
"""

from repro.simmem.heap import NULL, SimHeap
from repro.subjects.base import record_bug

#: Capacity of each file's token buffer (bug moss1 overruns it).
TOKEN_CAP = 500
#: Capacity of the file table (bug moss4 overruns it).
FILE_CAP = 25
#: Capacity of the passage table (bug moss3 overruns it).
PASSAGE_CAP = 24
#: Over-common fingerprints are only dropped for submissions at least
#: this large (small submissions have no meaningful "boilerplate").
DROP_MIN_FILES = 8
#: Number of hash buckets in the fingerprint index.
HASH_BUCKETS = 37
#: k-gram hash space.
HASH_MOD = 2048
#: Language-handler table size; ids above 16 have no handler (bug moss5).
LANG_HANDLERS = 17
#: Passages at least this long get a detail record (bug moss2's site).
DETAIL_THRESHOLD = 8
#: Total token count above which the stats scratch overrun fires (moss7).
STATS_OVERRUN_THRESHOLD = 450


def tokenize_file(heap, tokens, match_comment):
    """Copy a file's token stream into a heap buffer.

    Comment tokens are encoded as negative values.  When
    ``match_comment`` is false they are skipped entirely; when true they
    participate in fingerprinting as their absolute value -- except that
    the buggy handling drops the second of two consecutive comments
    (bug moss9).

    Returns ``(buffer, token_count)``.  Counts beyond ``TOKEN_CAP``
    overrun the buffer (bug moss1).
    """
    buf = heap.malloc(TOKEN_CAP)
    token_index = 0
    prev_comment = False
    for t in tokens:
        if t < 0:
            if not match_comment:
                prev_comment = True
                continue
            if prev_comment:
                # BUG moss9: should keep every comment token; consecutive
                # comments lose the second one.
                record_bug("moss9")
                prev_comment = False
                continue
            prev_comment = True
            val = -t
        else:
            prev_comment = False
            val = t
        if val > 1000000:
            # BUG moss8: latent overrun; the input generator never
            # produces token values this large, so it never fires.
            record_bug("moss8")
            buf.write(TOKEN_CAP + 7, val)
        if token_index >= TOKEN_CAP:
            # BUG moss1: missing bounds check before the write below.
            record_bug("moss1")
        buf.write(token_index, val)
        token_index += 1
    return buf, token_index


def kgram_hashes(buf, count, k):
    """Rolling polynomial hashes of every ``k``-gram in the buffer.

    Reads past the buffer's real capacity (after a moss1 overrun) return
    layout-dependent garbage, which is exactly how the overrun becomes a
    non-deterministic wrong-output failure.
    """
    hashes = []
    i = 0
    while i + k <= count:
        h = 0
        j = 0
        while j < k:
            h = (h * 31 + buf.read(i + j)) % HASH_MOD
            j += 1
        hashes.append(h)
        i += 1
    return hashes


def winnow(hashes, w):
    """Winnowing fingerprint selection (rightmost-minimum rule).

    Returns ``(position, hash)`` pairs; identical to the reference
    implementation so output differences come only from corrupted data.
    """
    fps = []
    n = len(hashes)
    if n == 0:
        return fps
    if w <= 1:
        idx = 0
        for h in hashes:
            fps.append((idx, h))
            idx += 1
        return fps
    last_pos = -1
    i = 0
    while i + w <= n:
        m = hashes[i]
        pos = i
        j = i + 1
        while j < i + w:
            if hashes[j] <= m:
                m = hashes[j]
                pos = j
            j += 1
        if pos != last_pos:
            fps.append((pos, m))
            last_pos = pos
        i += 1
    return fps


def index_insert(heap, buckets, h, fileid, pos):
    """Insert a fingerprint at the head of its hash chain.

    Node layout: ``[hash, fileid, pos, next]``.
    """
    b = h % HASH_BUCKETS
    node = heap.malloc(4)
    node.write(0, h)
    node.write(1, fileid)
    node.write(2, pos)
    node.write(3, buckets.read(b))
    buckets.write(b, node)


def index_remove_common(heap, buckets, h):
    """Remove every node carrying an over-common hash from its bucket.

    BUG moss6: when the node to remove sits at the bucket head, the code
    frees it but forgets to update the bucket head pointer -- violating
    the bucket/chain invariant.  The next traversal of this bucket reads
    freed memory and crashes, typically during the later matching phase.
    """
    b = h % HASH_BUCKETS
    node = buckets.read(b)
    prev = NULL
    while node is not NULL:
        nxt = node.read(3)
        if node.read(0) == h:
            if prev is NULL:
                record_bug("moss6")
                heap.free(node)
                # Missing: buckets.write(b, nxt)
            else:
                prev.write(3, nxt)
                heap.free(node)
        else:
            prev = node
        node = nxt


def index_lookup(buckets, h):
    """Collect every ``(fileid, pos)`` stored under hash ``h``."""
    b = h % HASH_BUCKETS
    node = buckets.read(b)
    found = []
    while node is not NULL:
        if node.read(0) == h:
            found.append((node.read(1), node.read(2)))
        node = node.read(3)
    return found


def group_passages(positions, gap):
    """Group sorted fingerprint positions into passages.

    Positions within ``gap`` of their predecessor extend the current
    passage; larger jumps start a new one.  Returns a list of
    ``(start, end, length)`` with ``length`` = number of fingerprints.
    """
    passages = []
    start = -1
    prev = -1000000
    length = 0
    for pos in positions:
        if pos - prev <= gap and start >= 0:
            length += 1
        else:
            if start >= 0:
                passages.append((start, prev, length))
            start = pos
            length = 1
        prev = pos
    if start >= 0:
        passages.append((start, prev, length))
    return passages


def main(job):
    """Run the matcher over one submission job.

    ``job`` carries: ``heap_seed``, ``oom_rate``, ``config`` (``kgram``,
    ``window``, ``match_comment``, ``gap``) and ``files`` (each with
    ``language`` and ``tokens``).

    Returns a sorted list of ``(i, j, score, n_passages)`` tuples for
    file pairs with at least one shared fingerprint.
    """
    heap = SimHeap(seed=job["heap_seed"], oom_rate=job["oom_rate"])
    config = job["config"]
    files = job["files"]
    nfiles = len(files)
    kgram = config["kgram"]
    window = config["window"]
    gap = config["gap"]
    match_comment = config["match_comment"]

    # Language handler table: a real handler object for ids 0..16,
    # NULL above that.
    handlers = heap.malloc(LANG_HANDLERS + 8)
    li = 0
    while li < LANG_HANDLERS:
        hrec = heap.malloc(1)
        hrec.write(0, 100 + li)
        handlers.write(li, hrec)
        li += 1
    while li < LANG_HANDLERS + 8:
        handlers.write(li, NULL)
        li += 1

    # File table: 4 cells per file [language, size, handler_id, flags].
    filetable = heap.malloc(FILE_CAP * 4)
    buckets = heap.malloc(HASH_BUCKETS)
    bi = 0
    while bi < HASH_BUCKETS:
        buckets.write(bi, NULL)
        bi += 1

    fingerprints = []
    hash_files = {}
    filesindex = 0
    total_tokens = 0
    for f in files:
        language = f["language"]
        if language > 16:
            # BUG moss5: no validation of the language id; the handler
            # slot holds NULL and the dereference below segfaults.
            record_bug("moss5")
        handler = handlers.read(language)
        handler_id = handler.read(0)

        if filesindex >= FILE_CAP:
            # BUG moss4: missing bounds check on the file table.
            record_bug("moss4")
        buf, count = tokenize_file(heap, f["tokens"], match_comment)
        total_tokens += count
        filetable.write(filesindex * 4 + 0, language)
        filetable.write(filesindex * 4 + 1, count)
        filetable.write(filesindex * 4 + 2, handler_id)
        filetable.write(filesindex * 4 + 3, 0)

        hashes = kgram_hashes(buf, count, kgram)
        fps = winnow(hashes, window)
        fingerprints.append(fps)
        for pos, h in fps:
            index_insert(heap, buckets, h, filesindex, pos)
            owners = hash_files.get(h)
            if owners is None:
                owners = set()
                hash_files[h] = owners
            owners.add(filesindex)
        filesindex += 1

    # Drop fingerprints shared by more than half the files (boilerplate).
    dropped = set()
    if nfiles >= DROP_MIN_FILES:
        for h in sorted(hash_files):
            if 2 * len(hash_files[h]) > nfiles:
                dropped.add(h)
                index_remove_common(heap, buckets, h)

    # Pairwise matching via index lookups.
    shared = {}
    fid = 0
    for fps in fingerprints:
        seen = set()
        for pos, h in fps:
            if h in dropped or h in seen:
                continue
            seen.add(h)
            for other, _opos in index_lookup(buckets, h):
                if other == fid:
                    continue
                key = (fid, other) if fid < other else (other, fid)
                entry = shared.get(key)
                if entry is None:
                    entry = set()
                    shared[key] = entry
                entry.add(h)
        fid += 1

    # Passage grouping and the passage table.
    passage_table = heap.malloc(PASSAGE_CAP * 3)
    passage_index = 0
    results = []
    for key in sorted(shared):
        i, j = key
        hashes_ij = shared[key]
        positions = sorted(pos for pos, h in fingerprints[i] if h in hashes_ij)
        passages = group_passages(positions, gap)
        for start, end, length in passages:
            if passage_index >= PASSAGE_CAP:
                # BUG moss3: missing bounds check on the passage table.
                record_bug("moss3")
            passage_table.write(passage_index * 3 + 0, i)
            passage_table.write(passage_index * 3 + 1, j)
            passage_table.write(passage_index * 3 + 2, start)
            passage_index += 1
            if length >= DETAIL_THRESHOLD:
                detail = heap.malloc(length, True)
                if detail is NULL:
                    # BUG moss2: malloc's NULL return is not checked.
                    record_bug("moss2")
                detail.write(0, start)
                detail.write(length - 1, end)
        results.append((i, j, len(hashes_ij), len(passages)))

    # Final stats scratch buffer (the last allocation on the heap).
    stats = heap.malloc(4)
    stats.write(0, nfiles)
    stats.write(1, total_tokens)
    stats.write(2, passage_index)
    stats.write(3, len(dropped))
    if total_tokens > STATS_OVERRUN_THRESHOLD:
        # BUG moss7: one-cell overrun of the final allocation.  It lands
        # in trailing heap space, so it never independently causes a
        # failure -- it only ever co-occurs with other bugs on big inputs.
        record_bug("moss7")
        stats.write(4, total_tokens)

    return sorted(results)
