"""The MOSS analogue: a winnowing document-fingerprint matcher.

This is the validation subject of Section 4.1 / Table 3.  The program
implements the winnowing fingerprinting algorithm of Schleimer, Wilkerson
and Aiken (the real MOSS's core) over token streams, with nine seeded
bugs matching the paper's taxonomy -- see
:mod:`repro.subjects.moss.program` for the bug inventory.
"""

from repro.subjects.moss.subject import MossSubject

__all__ = ["MossSubject"]
