"""Random submission-job generator for the MOSS analogue.

Produces the "about 32,000 random inputs" population of Section 4: random
file sets with injected plagiarism (shared passages), occasional
boilerplate shared by most files, comment tokens, and heavy-tailed file
and token counts so each seeded bug's trigger condition occurs at its own
rate -- the rates span roughly two orders of magnitude, as in the paper
("different bugs occur at rates that differ by orders of magnitude").
"""

from __future__ import annotations

import random
from typing import Dict, List

#: Probability a run is a "big submission" (> FILE_CAP files; bug moss4).
P_MANY_FILES = 0.050
#: Probability any single file is oversized (> TOKEN_CAP tokens; moss1).
P_BIG_FILE = 0.009
#: Probability a file's language id is out of range (moss5).
P_BAD_LANGUAGE = 0.011
#: Probability a run is a heavy-sharing submission (moss3's regime).
P_HEAVY_SHARE = 0.025
#: Probability the submission contains boilerplate (moss6's regime).
P_BOILERPLATE = 0.12
#: Probability a file contains comments at all.
P_COMMENT_FILE = 0.25
#: Per-position comment probability inside comment-bearing files.
P_COMMENT_TOKEN = 0.05
#: Probability ordinary plagiarism is injected.
P_PLAGIARISM = 0.55
#: Out-of-memory injection rate for can-fail allocations (moss2).
OOM_RATE = 0.01


def _random_tokens(rng: random.Random, count: int, with_comments: bool) -> List[int]:
    tokens: List[int] = []
    for _ in range(count):
        if with_comments and rng.random() < P_COMMENT_TOKEN:
            tokens.append(-rng.randint(1, 50))
        else:
            tokens.append(rng.randint(1, 200))
    return tokens


def _passage(rng: random.Random, length: int) -> List[int]:
    return [rng.randint(1, 200) for _ in range(length)]


def generate_job(rng: random.Random) -> Dict:
    """Generate one random submission job.

    The returned dict is the input of both the buggy program
    (:func:`repro.subjects.moss.program.main`) and the reference
    implementation.
    """
    heavy = rng.random() < P_HEAVY_SHARE
    if rng.random() < P_MANY_FILES:
        # Big submissions; only those above FILE_CAP trigger moss4, the
        # rest are large-but-successful so size alone is a weak
        # (super-bug-style) failure signal.
        nfiles = rng.randint(22, 30)
    elif heavy:
        nfiles = rng.randint(8, 12)
    else:
        nfiles = rng.randint(2, 12)

    files = []
    for _ in range(nfiles):
        if rng.random() < P_BIG_FILE:
            count = rng.randint(520, 700)
        else:
            count = rng.randint(30, 120)
        language = (
            rng.randint(17, 19)
            if rng.random() < P_BAD_LANGUAGE
            else rng.randint(0, 16)
        )
        with_comments = rng.random() < P_COMMENT_FILE
        files.append(
            {
                "language": language,
                "tokens": _random_tokens(rng, count, with_comments),
            }
        )

    def inject(passage: List[int], targets: List[int]) -> None:
        for fid in targets:
            tokens = files[fid]["tokens"]
            offset = rng.randint(0, max(len(tokens) - 1, 0))
            files[fid]["tokens"] = tokens[:offset] + passage + tokens[offset:]

    if heavy:
        # Many pairwise-shared passages: overflows the passage table
        # (moss3) without creating over-common fingerprints.
        for _ in range(rng.randint(8, 14)):
            passage = _passage(rng, rng.randint(20, 45))
            inject(passage, rng.sample(range(nfiles), 2))
    elif rng.random() < P_PLAGIARISM:
        passage = _passage(rng, rng.randint(20, 90))
        n_targets = rng.randint(2, min(nfiles, 4))
        inject(passage, rng.sample(range(nfiles), n_targets))

    if nfiles >= 3 and rng.random() < P_BOILERPLATE:
        passage = _passage(rng, rng.randint(8, 15))
        n_targets = nfiles // 2 + 1 + rng.randint(0, max(nfiles // 3, 0))
        n_targets = min(n_targets, nfiles)
        inject(passage, rng.sample(range(nfiles), n_targets))

    return {
        "heap_seed": rng.randint(0, 2 ** 31 - 1),
        "oom_rate": OOM_RATE,
        "config": {
            "kgram": rng.randint(3, 5),
            "window": rng.randint(4, 8),
            "gap": rng.randint(4, 8),
            "match_comment": rng.random() < 0.30,
        },
        "files": files,
    }
