"""Subject wrapper for the MOSS analogue."""

from __future__ import annotations

import random
from typing import Any

from repro.subjects import base
from repro.subjects.moss import program as program_module
from repro.subjects.moss.generator import generate_job
from repro.subjects.moss.reference import reference_output


class MossSubject(base.Subject):
    """The Section 4.1 validation subject: winnowing matcher, 9 bugs.

    Failure labelling is differential, as in the paper: a run fails if it
    crashes *or* if its output differs from the correct reference
    implementation's (this is what catches the output-only bug moss9).
    """

    name = "moss"
    entry = "main"
    bug_ids = (
        "moss1",
        "moss2",
        "moss3",
        "moss4",
        "moss5",
        "moss6",
        "moss7",
        "moss8",
        "moss9",
    )
    trial_budget = 5000

    def source(self) -> str:
        """Source of the buggy program (instrumented by the harness)."""
        return self.source_of(program_module)

    def generate_input(self, rng: random.Random) -> Any:
        """One random submission job."""
        return generate_job(rng)

    def oracle(self, program_input: Any, output: Any) -> bool:
        """Differential oracle against the correct implementation."""
        return output == reference_output(program_input)
