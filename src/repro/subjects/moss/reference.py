"""Correct reference implementation of the MOSS analogue.

Mirrors :mod:`repro.subjects.moss.program` exactly -- same tokenisation
(with *correct* comment handling), k-gram hashing, winnowing, over-common
fingerprint dropping, matching and passage grouping -- but over plain
Python data with no fixed-capacity tables, no simulated heap, and none of
the seeded bugs.  The experiment oracle compares its output against the
buggy program's, reproducing the paper's differential labelling ("we also
ran a correct version of MOSS and compared the output of the two
versions").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.subjects.moss.program import DROP_MIN_FILES, HASH_MOD


def tokenize(tokens: Sequence[int], match_comment: bool) -> List[int]:
    """Correct tokenisation: every comment kept (as its absolute value)
    when comment matching is on, every comment skipped when off."""
    out: List[int] = []
    for t in tokens:
        if t < 0:
            if match_comment:
                out.append(-t)
        else:
            out.append(t)
    return out


def kgram_hashes(tokens: Sequence[int], k: int) -> List[int]:
    """Polynomial k-gram hashes; identical arithmetic to the program."""
    hashes: List[int] = []
    for i in range(len(tokens) - k + 1):
        h = 0
        for j in range(k):
            h = (h * 31 + tokens[i + j]) % HASH_MOD
        hashes.append(h)
    return hashes


def winnow(hashes: Sequence[int], w: int) -> List[Tuple[int, int]]:
    """Winnowing with the rightmost-minimum rule; identical semantics."""
    fps: List[Tuple[int, int]] = []
    n = len(hashes)
    if n == 0:
        return fps
    if w <= 1:
        return [(i, h) for i, h in enumerate(hashes)]
    last_pos = -1
    for i in range(n - w + 1):
        m = hashes[i]
        pos = i
        for j in range(i + 1, i + w):
            if hashes[j] <= m:
                m = hashes[j]
                pos = j
        if pos != last_pos:
            fps.append((pos, m))
            last_pos = pos
    return fps


def group_passages(
    positions: Sequence[int], gap: int
) -> List[Tuple[int, int, int]]:
    """Group sorted positions into passages; identical semantics."""
    passages: List[Tuple[int, int, int]] = []
    start = -1
    prev = -1000000
    length = 0
    for pos in positions:
        if pos - prev <= gap and start >= 0:
            length += 1
        else:
            if start >= 0:
                passages.append((start, prev, length))
            start = pos
            length = 1
        prev = pos
    if start >= 0:
        passages.append((start, prev, length))
    return passages


def reference_output(job: Dict) -> List[Tuple[int, int, int, int]]:
    """Compute the correct matcher output for a job.

    Returns the same shape as the buggy program's ``main``: a sorted list
    of ``(i, j, shared_fingerprints, n_passages)``.
    """
    config = job["config"]
    files = job["files"]
    nfiles = len(files)
    k = config["kgram"]
    w = config["window"]
    gap = config["gap"]
    match_comment = config["match_comment"]

    fingerprints: List[List[Tuple[int, int]]] = []
    hash_files: Dict[int, Set[int]] = {}
    for fid, f in enumerate(files):
        toks = tokenize(f["tokens"], match_comment)
        fps = winnow(kgram_hashes(toks, k), w)
        fingerprints.append(fps)
        for _pos, h in fps:
            hash_files.setdefault(h, set()).add(fid)

    dropped: Set[int] = set()
    if nfiles >= DROP_MIN_FILES:
        for h, owners in hash_files.items():
            if 2 * len(owners) > nfiles:
                dropped.add(h)

    results: List[Tuple[int, int, int, int]] = []
    hash_sets = [
        {h for _pos, h in fps if h not in dropped} for fps in fingerprints
    ]
    for i in range(nfiles):
        for j in range(i + 1, nfiles):
            shared = hash_sets[i] & hash_sets[j]
            if not shared:
                continue
            positions = sorted(pos for pos, h in fingerprints[i] if h in shared)
            passages = group_passages(positions, gap)
            results.append((i, j, len(shared), len(passages)))
    return sorted(results)
