"""The BC analogue: an arithmetic-expression interpreter (Table 5).

GNU BC 1.06 had a heap buffer overrun in ``more_arrays``: the growth
routine used the *variable* count as the bound when initialising the new
array table, overrunning it whenever more variables than array slots
existed.  The crash surfaced long after the overrun, with no useful
stack.  The analogue reproduces the same wrong-bound growth bug over the
simulated heap.
"""

from repro.subjects.bc.subject import BcSubject

__all__ = ["BcSubject"]
