"""Subject wrapper, generator, and reference interpreter for BC."""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.subjects import base
from repro.subjects.bc import program as program_module
from repro.subjects.bc.program import NUM_MOD, Parser, tokenize

#: Statement-count range per program.
MIN_STATEMENTS, MAX_STATEMENTS = 4, 24
#: Probability a statement is a print.
P_PRINT = 0.30
#: Probability an assignment targets an array element.
P_ARRAY_ASSIGN = 0.25


def _gen_expr(rng: random.Random, vars_: List[str], arrays: List[str], depth: int) -> str:
    choice = rng.random()
    if depth <= 0 or choice < 0.45:
        if vars_ and rng.random() < 0.55:
            return rng.choice(vars_)
        return str(rng.randint(0, 999))
    if arrays and choice < 0.55:
        return f"{rng.choice(arrays)}[{_gen_expr(rng, vars_, arrays, 0)}]"
    op = rng.choice(["+", "-", "*", "/", "%"])
    lhs = _gen_expr(rng, vars_, arrays, depth - 1)
    rhs = _gen_expr(rng, vars_, arrays, depth - 1)
    return f"({lhs} {op} {rhs})"


def generate_job(rng: random.Random) -> Dict:
    """One random bc program.

    Programs declare a random number of scalars and arrays; those with
    several arrays after many scalars hit the buggy ``more_arrays``
    growth path.
    """
    n_vars = rng.randint(1, 12)
    n_arrays = rng.randint(0, 5)
    vars_ = [f"v{i}" for i in range(n_vars)]
    arrays = [f"a{i}" for i in range(n_arrays)]
    statements: List[str] = []
    declared_vars: List[str] = []
    declared_arrays: List[str] = []

    for v in vars_:
        statements.append(f"{v} = {_gen_expr(rng, declared_vars, declared_arrays, 1)}")
        declared_vars.append(v)
    for a in arrays:
        idx = _gen_expr(rng, declared_vars, [], 0)
        statements.append(f"{a}[{idx}] = {_gen_expr(rng, declared_vars, declared_arrays, 1)}")
        declared_arrays.append(a)

    extra = rng.randint(MIN_STATEMENTS, MAX_STATEMENTS)
    for _ in range(extra):
        if rng.random() < P_PRINT and declared_vars:
            statements.append(f"print {_gen_expr(rng, declared_vars, declared_arrays, 2)}")
        elif declared_arrays and rng.random() < P_ARRAY_ASSIGN:
            a = rng.choice(declared_arrays)
            idx = _gen_expr(rng, declared_vars, [], 0)
            statements.append(
                f"{a}[{idx}] = {_gen_expr(rng, declared_vars, declared_arrays, 1)}"
            )
        else:
            v = rng.choice(declared_vars)
            statements.append(f"{v} = {_gen_expr(rng, declared_vars, declared_arrays, 2)}")

    prefix = n_vars + n_arrays
    tail = statements[prefix:]
    rng.shuffle(tail)
    statements = statements[:prefix] + tail
    return {
        "heap_seed": rng.randint(0, 2 ** 31 - 1),
        "statements": statements,
    }


def _ref_eval(node, variables: Dict[str, int], arrays: Dict[str, Dict[int, int]]) -> int:
    kind = node[0]
    if kind == "num":
        return node[1] % NUM_MOD
    if kind == "var":
        return variables.get(node[1], 0) % NUM_MOD
    if kind == "elem":
        index = _ref_eval(node[2], variables, arrays)
        return arrays.get(node[1], {}).get(index % 32, 0) % NUM_MOD
    if kind == "neg":
        return (-_ref_eval(node[1], variables, arrays)) % NUM_MOD
    op = node[1]
    lhs = _ref_eval(node[2], variables, arrays)
    rhs = _ref_eval(node[3], variables, arrays)
    if op == "+":
        return (lhs + rhs) % NUM_MOD
    if op == "-":
        return (lhs - rhs) % NUM_MOD
    if op == "*":
        return (lhs * rhs) % NUM_MOD
    if op == "/":
        return lhs // rhs if rhs != 0 else 0
    return lhs % rhs if rhs != 0 else 0


def reference_output(job: Dict) -> List[int]:
    """Correct interpretation of the program over plain dicts."""
    variables: Dict[str, int] = {}
    arrays: Dict[str, Dict[int, int]] = {}
    printed: List[int] = []
    for text in job["statements"]:
        tokens = tokenize(text)
        parser = Parser(tokens)
        first = tokens[0]
        if first[0] == "name" and first[1] == "print":
            parser.take("name")
            printed.append(_ref_eval(parser.parse_expr(), variables, arrays))
        else:
            name = parser.take("name")
            if parser.peek() == "[":
                parser.take("[")
                index_node = parser.parse_expr()
                parser.take("]")
                parser.take("=")
                value = _ref_eval(parser.parse_expr(), variables, arrays)
                index = _ref_eval(index_node, variables, arrays)
                arrays.setdefault(name, {})[index % 32] = value
            else:
                parser.take("=")
                variables[name] = _ref_eval(parser.parse_expr(), variables, arrays)
    return printed


class BcSubject(base.Subject):
    """Table 5's subject: the wrong-bound array-table growth overrun."""

    name = "bc"
    entry = "main"
    bug_ids = ("bc1",)
    trial_budget = 3000

    def source(self) -> str:
        """Source of the buggy program."""
        return self.source_of(program_module)

    def generate_input(self, rng: random.Random) -> Any:
        """One random bc program."""
        return generate_job(rng)

    def oracle(self, program_input: Any, output: Any) -> bool:
        """Differential oracle against the dict-based interpreter."""
        return output == reference_output(program_input)
