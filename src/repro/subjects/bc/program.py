"""The buggy BC-analogue program: tokenizer, parser, and evaluator.

A bc-style calculator: each statement assigns to a scalar variable or an
array element, or prints an expression.  Scalar storage and the array
table live on the simulated heap and grow on demand, like bc's
``more_variables`` / ``more_arrays``.

========  ==================================================================
bug id    behaviour
========  ==================================================================
bc1       ``more_arrays`` initialises the *new* array table with a loop
          bounded by ``v_count`` (the number of scalar variables) instead
          of the old array capacity -- GNU BC 1.06's overrun.  When more
          variables exist than the grown table can hold, the tail writes
          overrun the allocation; the heap-metadata corruption typically
          crashes a *later*, unrelated allocation ("this bug causes a
          crash long after the overrun occurs and there is no useful
          information on the stack").
========  ==================================================================
"""

from repro.simmem.heap import NULL, SimHeap
from repro.subjects.base import record_bug

#: Initial scalar-variable storage capacity.
V_INITIAL = 4
#: Initial array-table capacity.
A_INITIAL = 2
#: Array-table growth increment.
A_GROW = 4
#: Arithmetic is carried out modulo this (bc's arbitrary precision is
#: irrelevant to the bug; bounded ints keep runs fast).
NUM_MOD = 10 ** 9


def tokenize(text):
    """Split a statement into tokens: numbers, names, operators."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == " ":
            i += 1
        elif ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(("num", int(text[i:j])))
            i = j
        elif ch.isalpha():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(("name", text[i:j]))
            i = j
        elif ch in "+-*/%()[]=,":
            tokens.append((ch, ch))
            i += 1
        else:
            raise ValueError(f"bad character {ch!r}")
    tokens.append(("end", ""))
    return tokens


class Parser:
    """Recursive-descent parser producing a small expression AST.

    Nodes are tuples: ``("num", v)``, ``("var", name)``,
    ``("elem", name, index_node)``, ``("bin", op, lhs, rhs)``,
    ``("neg", node)``.
    """

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos][0]

    def take(self, kind):
        tok = self.tokens[self.pos]
        if tok[0] != kind:
            raise ValueError(f"expected {kind}, got {tok[0]}")
        self.pos += 1
        return tok[1]

    def parse_expr(self):
        node = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.take(self.peek())
            rhs = self.parse_term()
            node = ("bin", op, node, rhs)
        return node

    def parse_term(self):
        node = self.parse_unary()
        while self.peek() in ("*", "/", "%"):
            op = self.take(self.peek())
            rhs = self.parse_unary()
            node = ("bin", op, node, rhs)
        return node

    def parse_unary(self):
        if self.peek() == "-":
            self.take("-")
            return ("neg", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self):
        kind = self.peek()
        if kind == "num":
            return ("num", self.take("num"))
        if kind == "name":
            name = self.take("name")
            if self.peek() == "[":
                self.take("[")
                index = self.parse_expr()
                self.take("]")
                return ("elem", name, index)
            return ("var", name)
        if kind == "(":
            self.take("(")
            node = self.parse_expr()
            self.take(")")
            return node
        raise ValueError(f"unexpected token {kind}")


class Storage:
    """bc-style scalar and array storage on the simulated heap."""

    def __init__(self, heap):
        self.heap = heap
        self.v_cap = V_INITIAL
        self.v_count = 0
        self.v_names = {}
        self.v_store = heap.malloc(V_INITIAL)
        self.a_cap = A_INITIAL
        self.a_count = 0
        self.a_names = {}
        self.a_store = heap.malloc(A_INITIAL)
        self.grow_log = []

    def more_variables(self):
        """Correct doubling growth of scalar storage."""
        new_cap = self.v_cap * 2
        new = self.heap.malloc(new_cap)
        i = 0
        while i < self.v_count:
            new.write(i, self.v_store.read(i))
            i += 1
        self.heap.free(self.v_store)
        self.v_store = new
        self.v_cap = new_cap

    def more_arrays(self):
        """Grow the array table.

        BUG bc1: the initialisation loop is bounded by ``v_count`` (the
        number of scalar variables) instead of the old array count, so
        when more scalars than ``new_cap`` slots exist the tail writes
        run past the new allocation.
        """
        new_cap = self.a_cap + A_GROW
        new = self.heap.malloc(new_cap)
        # Growth bookkeeping record; it sits immediately after the new
        # table on the heap, so the buggy copy loop's tail writes land on
        # it (or its metadata -- crashing a later allocation).
        logrec = self.heap.malloc(2)
        logrec.write(0, self.a_cap)
        logrec.write(1, new_cap)
        self.grow_log.append(logrec)
        old_count = self.a_count
        i = 0
        while i < old_count:
            new.write(i, self.a_store.read(i))
            i += 1
        # Zero-initialise the remaining slots.  BUG bc1: the bound is the
        # scalar-variable count rather than the new capacity, so when
        # more scalars than table slots exist the tail writes overrun.
        while i < self.v_count:
            if i >= new_cap:
                record_bug("bc1")
            new.write(i, 0)
            i += 1
        self.heap.free(self.a_store)
        self.a_store = new
        self.a_cap = new_cap

    def var_slot(self, name):
        slot = self.v_names.get(name)
        if slot is None:
            if self.v_count >= self.v_cap:
                self.more_variables()
            slot = self.v_count
            self.v_names[name] = slot
            self.v_store.write(slot, 0)
            self.v_count += 1
        return slot

    def array_slot(self, name):
        slot = self.a_names.get(name)
        if slot is None:
            while self.a_count >= self.a_cap:
                self.more_arrays()
            slot = self.a_count
            self.a_names[name] = slot
            self.a_store.write(slot, NULL)
            self.a_count += 1
        return slot

    def get_var(self, name):
        slot = self.var_slot(name)
        return self.v_store.read(slot)

    def set_var(self, name, value):
        slot = self.var_slot(name)
        self.v_store.write(slot, value)

    def _array_buf(self, name, index):
        slot = self.array_slot(name)
        buf = self.a_store.read(slot)
        if buf is NULL or not hasattr(buf, "read"):
            buf = self.heap.calloc(32)
            self.a_store.write(slot, buf)
        return buf

    def get_elem(self, name, index):
        buf = self._array_buf(name, index)
        return buf.read(index % 32)

    def set_elem(self, name, index, value):
        buf = self._array_buf(name, index)
        buf.write(index % 32, value)


def evaluate(node, store):
    """Evaluate an expression AST against the storage."""
    kind = node[0]
    if kind == "num":
        return node[1] % NUM_MOD
    if kind == "var":
        return store.get_var(node[1]) % NUM_MOD
    if kind == "elem":
        index = evaluate(node[2], store)
        return store.get_elem(node[1], index) % NUM_MOD
    if kind == "neg":
        return (-evaluate(node[1], store)) % NUM_MOD
    op = node[1]
    lhs = evaluate(node[2], store)
    rhs = evaluate(node[3], store)
    if op == "+":
        return (lhs + rhs) % NUM_MOD
    if op == "-":
        return (lhs - rhs) % NUM_MOD
    if op == "*":
        return (lhs * rhs) % NUM_MOD
    if op == "/":
        return lhs // rhs if rhs != 0 else 0
    return lhs % rhs if rhs != 0 else 0


def main(job):
    """Interpret one bc program.

    ``job``: ``heap_seed`` and ``statements`` (list of statement strings:
    ``name = expr``, ``name[expr] = expr``, or ``print expr``).

    Returns the list of printed values.
    """
    heap = SimHeap(seed=job["heap_seed"])
    store = Storage(heap)
    printed = []
    for text in job["statements"]:
        tokens = tokenize(text)
        parser = Parser(tokens)
        first = tokens[0]
        if first[0] == "name" and first[1] == "print":
            parser.take("name")
            value = evaluate(parser.parse_expr(), store)
            out = heap.malloc(1)
            out.write(0, value)
            printed.append(out.read(0))
            heap.free(out)
        else:
            name = parser.take("name")
            if parser.peek() == "[":
                parser.take("[")
                index_node = parser.parse_expr()
                parser.take("]")
                parser.take("=")
                value = evaluate(parser.parse_expr(), store)
                index = evaluate(index_node, store)
                store.set_elem(name, index, value)
            else:
                parser.take("=")
                value = evaluate(parser.parse_expr(), store)
                store.set_var(name, value)
    return printed
