"""The CCRYPT analogue: a stream-cipher file tool (Table 4).

CCRYPT 1.2 had a known input-validation bug: when prompting whether to
overwrite an existing output file, an exhausted standard input makes the
line reader return NULL, which the prompt loop dereferences.  The
analogue reproduces that single, deterministic crashing bug.
"""

from repro.subjects.ccrypt.subject import CcryptSubject

__all__ = ["CcryptSubject"]
