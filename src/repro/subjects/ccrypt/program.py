"""The buggy CCRYPT-analogue program.

A little file-encryption tool: derive a keystream from the key phrase,
encrypt (or decrypt) the input block by block, and write the result --
unless the output file already exists, in which case the user is asked
for confirmation.  The confirmation loop contains the seeded bug:

========  ==================================================================
bug id    behaviour
========  ==================================================================
ccrypt1   the overwrite prompt re-reads standard input until it gets a
          valid answer, but never checks for end-of-input; an exhausted
          stdin makes ``read_line`` return NULL and the loop dereferences
          it (CCRYPT 1.2's input-validation crash)
========  ==================================================================
"""

from repro.simmem.heap import NULL, SimHeap
from repro.subjects.base import record_bug

#: Cipher block size in cells.
BLOCK = 16
#: Rounds of key mixing.
KEY_ROUNDS = 4
#: Keystream modulus.
KS_MOD = 65536


def mix_key(key_tokens):
    """Derive the cipher state from the key phrase tokens."""
    state = 40503
    r = 0
    while r < KEY_ROUNDS:
        for t in key_tokens:
            state = (state * 33 + t + r) % KS_MOD
        r += 1
    if state == 0:
        state = 1
    return state


def keystream(state, length):
    """Generate ``length`` keystream bytes from the mixed state."""
    out = []
    x = state
    i = 0
    while i < length:
        x = (x * 1103515245 + 12345) % KS_MOD
        out.append((x >> 7) % 256)
        i += 1
    return out


def read_line(stdin, cursor):
    """Read one "line" from the scripted standard input.

    Returns ``(buffer, new_cursor)``; the buffer is NULL at end of input,
    just like ``fgets`` returning NULL at EOF.
    """
    if cursor >= len(stdin["lines"]):
        return NULL, cursor
    heap = stdin["heap"]
    text = stdin["lines"][cursor]
    buf = heap.malloc(max(len(text), 1))
    idx = 0
    for ch in text:
        buf.write(idx, ch)
        idx += 1
    if idx == 0:
        buf.write(0, 10)
    return buf, cursor + 1


def prompt_overwrite(stdin, cursor):
    """Ask the user whether to overwrite the existing output file.

    Loops until an answer starting with y/Y/n/N arrives.  BUG ccrypt1:
    the NULL returned at end of input is never checked, so the first
    dereference after EOF segfaults.
    """
    while True:
        line, cursor = read_line(stdin, cursor)
        if line is NULL:
            # BUG ccrypt1: missing "if line is NULL" bail-out.
            record_bug("ccrypt1")
        res = line.read(0)
        if res == 121 or res == 89:
            return True, cursor
        if res == 110 or res == 78:
            return False, cursor


def crypt_block(block, ks, offset, decrypt):
    """Encrypt or decrypt one block against the keystream."""
    out = []
    i = 0
    for v in block:
        k = ks[offset + i]
        if decrypt:
            out.append((v - k) % 256)
        else:
            out.append((v + k) % 256)
        i += 1
    return out


def checksum(values):
    """Order-sensitive checksum appended to the output."""
    acc = 0
    for v in values:
        acc = (acc * 31 + v) % 1000003
    return acc


def main(job):
    """Run one encryption/decryption job.

    ``job``: ``heap_seed``, ``mode`` (``"encrypt"``/``"decrypt"``),
    ``key`` (token list), ``data`` (byte list), ``output_exists``,
    ``force`` and ``stdin_lines`` (list of byte-lists).

    Returns ``(written, payload, digest)`` where ``written`` is False
    when the user declined the overwrite.
    """
    heap = SimHeap(seed=job["heap_seed"])
    stdin = {"heap": heap, "lines": job["stdin_lines"]}
    cursor = 0
    decrypt = job["mode"] == "decrypt"

    if job["output_exists"] and not job["force"]:
        proceed, cursor = prompt_overwrite(stdin, cursor)
        if not proceed:
            return (False, [], 0)

    data = job["data"]
    state = mix_key(job["key"])
    ks = keystream(state, len(data) + BLOCK)

    payload = []
    pos = 0
    while pos < len(data):
        block = data[pos : pos + BLOCK]
        payload.extend(crypt_block(block, ks, pos, decrypt))
        pos += BLOCK

    digest = checksum(payload)
    return (True, payload, digest)
