"""Subject wrapper and input generator for the CCRYPT analogue."""

from __future__ import annotations

import random
from typing import Any

from repro.subjects import base
from repro.subjects.ccrypt import program as program_module

#: Probability the output file already exists (prompt path).
P_OUTPUT_EXISTS = 0.45
#: Probability the force flag suppresses the prompt.
P_FORCE = 0.40
#: Probability each prompt answer is garbage (neither y/Y nor n/N),
#: forcing the loop to read again and drift toward end of input.
P_GARBAGE_ANSWER = 0.35


def generate_job(rng: random.Random) -> dict:
    """One random encryption job.

    The scripted standard input holds 0-3 lines; runs that reach the
    overwrite prompt with too few valid answers exhaust stdin and hit
    ccrypt1.
    """
    n_lines = rng.randint(0, 3)
    lines = []
    for _ in range(n_lines):
        if rng.random() < P_GARBAGE_ANSWER:
            first = rng.choice([ord("x"), ord("?"), ord("q"), ord(" ")])
        else:
            first = rng.choice([ord("y"), ord("Y"), ord("n"), ord("N")])
        rest = [rng.randint(32, 126) for _ in range(rng.randint(0, 6))]
        lines.append([first] + rest + [10])
    return {
        "heap_seed": rng.randint(0, 2 ** 31 - 1),
        "mode": rng.choice(["encrypt", "decrypt"]),
        "key": [rng.randint(1, 255) for _ in range(rng.randint(1, 12))],
        "data": [rng.randint(0, 255) for _ in range(rng.randint(0, 200))],
        "output_exists": rng.random() < P_OUTPUT_EXISTS,
        "force": rng.random() < P_FORCE,
        "stdin_lines": lines,
    }


def reference_output(job: dict):
    """Correct output, mirroring the program minus the prompt bug.

    Declining or accepting the overwrite follows the first valid y/n
    answer in stdin; exhausting stdin *should* mean "do not overwrite".
    """
    if job["output_exists"] and not job["force"]:
        answer = None
        for line in job["stdin_lines"]:
            first = line[0] if line else 10
            if first in (121, 89):
                answer = True
                break
            if first in (110, 78):
                answer = False
                break
        if answer is None:
            answer = False  # correct behaviour: EOF declines
        if not answer:
            return (False, [], 0)

    data = job["data"]
    state = program_module.mix_key(job["key"])
    ks = program_module.keystream(state, len(data) + program_module.BLOCK)
    decrypt = job["mode"] == "decrypt"
    payload = []
    for pos, v in enumerate(data):
        k = ks[pos]
        payload.append((v - k) % 256 if decrypt else (v + k) % 256)
    return (True, payload, program_module.checksum(payload))


class CcryptSubject(base.Subject):
    """Table 4's subject: one deterministic input-validation crash."""

    name = "ccrypt"
    entry = "main"
    bug_ids = ("ccrypt1",)
    trial_budget = 2000

    def source(self) -> str:
        """Source of the buggy program."""
        return self.source_of(program_module)

    def generate_input(self, rng: random.Random) -> Any:
        """One random encryption job."""
        return generate_job(rng)

    def oracle(self, program_input: Any, output: Any) -> bool:
        """Differential oracle (failures here are crashes in practice)."""
        return output == reference_output(program_input)
