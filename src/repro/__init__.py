"""Scalable Statistical Bug Isolation (Liblit et al., PLDI 2005), in Python.

This package reproduces the Cooperative Bug Isolation (CBI) statistical
debugging system:

* :mod:`repro.instrument` -- sampled predicate instrumentation (the
  ``branches`` / ``returns`` / ``scalar-pairs`` schemes of Section 2),
  implemented as a source-to-source AST transformation.
* :mod:`repro.core` -- the cause isolation algorithm of Section 3:
  ``Failure`` / ``Context`` / ``Increase`` scores, confidence-interval
  pruning, harmonic-mean ``Importance``, and iterative redundancy
  elimination, plus affinity lists and the Table 8 "how many runs"
  methodology.
* :mod:`repro.simmem` -- a simulated C heap so Python subject programs can
  exhibit non-deterministic buffer-overrun crashes.
* :mod:`repro.subjects` -- analogues of the paper's five case studies
  (MOSS, CCRYPT, BC, EXIF, RHYTHMBOX) with seeded bugs and ground truth.
* :mod:`repro.baselines` -- the comparison techniques: L1-regularized
  logistic regression (Table 9) and stack-trace bucketing (Section 6).
* :mod:`repro.harness` -- end-to-end experiment pipeline and the table
  renderers used by the benchmark suite.
"""

from repro.core.predicates import Predicate, PredicateKind, PredicateTable, Scheme, Site
from repro.core.reports import FeedbackReport, ReportBuilder, ReportSet
from repro.core.scores import PredicateScores, compute_scores
from repro.core.importance import importance_scores
from repro.core.pruning import prune_predicates
from repro.core.elimination import DiscardStrategy, EliminationResult, SelectedPredictor, eliminate
from repro.core.affinity import affinity_groups, affinity_list
from repro.core.ranking import RankingStrategy, rank_predicates
from repro.core.runs_needed import runs_needed
from repro.core.io import load_reports, save_reports
from repro.core.online import OnlineMonitor, monitor_from_elimination
from repro.harness.experiment import Experiment, ExperimentResult, run_experiment

__version__ = "1.0.0"

__all__ = [
    "Predicate",
    "PredicateKind",
    "PredicateTable",
    "Scheme",
    "Site",
    "FeedbackReport",
    "ReportBuilder",
    "ReportSet",
    "PredicateScores",
    "compute_scores",
    "importance_scores",
    "prune_predicates",
    "DiscardStrategy",
    "EliminationResult",
    "SelectedPredictor",
    "eliminate",
    "affinity_list",
    "affinity_groups",
    "RankingStrategy",
    "rank_predicates",
    "runs_needed",
    "save_reports",
    "load_reports",
    "OnlineMonitor",
    "monitor_from_elimination",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "__version__",
]
