"""``repro.obs``: zero-dependency observability for the CBI pipeline.

Three instruments, all stdlib-only and all **measurement-only** (enabling
them never changes collected reports, scores, or shard bytes -- the
differential and bit-identical test suites run with observability on):

* **Metrics** (:mod:`repro.obs.metrics`): named counters, gauges and
  timers accumulated in a process-local :class:`MetricsRegistry` and
  written as one JSON document (``repro-metrics/v1``).
* **Trace spans** (:mod:`repro.obs.trace`): Chrome Trace Event Format
  records, one JSON object per line, appended crash-safely so forked
  collection workers can share one trace file.  Convert for
  ``chrome://tracing`` with ``python -m repro.obs.trace``.
* **Benchmarks** (:mod:`repro.obs.bench`): the ``repro-cbi bench``
  scenarios behind ``BENCH_collection.json`` / ``BENCH_analysis.json``
  (schema ``repro-bench/v1``), the repo's append-only perf trajectory.

The module-level facade here is what instrumented call sites use::

    from repro.obs import enabled, inc, span, timer

    with timer("scores.from_counts"):
        ...
    if enabled():
        inc("runtime.runs")

Observability is **off by default**: every facade call first checks one
module global, ``timer``/``span`` return a shared no-op context manager,
and ``inc``/``gauge`` return immediately -- the hot paths stay on a
fast path of a single ``is None`` test.  :func:`configure` switches it
on (process-wide); :func:`shutdown` switches it off again.

Process model: a forked worker inherits the parent's configuration.
Workers that want their own deltas call :func:`reset`, do their work,
and ship :func:`snapshot` back for the parent to :func:`merge_snapshot`
(this is exactly what :func:`repro.harness.parallel.run_trials_sharded`
does).  Trace events need no merging -- every process appends whole
lines to the same file, and events carry their ``pid``.

Metric names are catalogued, with units, in ``docs/OBSERVABILITY.md``;
tests pin that the catalogue and the code agree.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    NULL_TIMER,
    format_metrics,
)
from repro.obs.trace import TraceWriter

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "TraceWriter",
    "configure",
    "shutdown",
    "enabled",
    "registry",
    "tracer",
    "inc",
    "gauge",
    "timer",
    "span",
    "instant",
    "reset",
    "snapshot",
    "merge_snapshot",
    "write_metrics",
    "format_metrics",
    "print_profile",
]

#: Process-wide observability state.  ``None`` means off.
_REGISTRY: Optional[MetricsRegistry] = None
_TRACER: Optional[TraceWriter] = None


def configure(trace_path: Optional[str] = None) -> MetricsRegistry:
    """Enable observability for this process (and future forked children).

    Args:
        trace_path: When given, also emit trace spans to this JSONL file
            (created if missing, appended otherwise).

    Returns:
        The now-active :class:`MetricsRegistry`.
    """
    global _REGISTRY, _TRACER
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    _TRACER = TraceWriter(trace_path) if trace_path else None
    return _REGISTRY


def shutdown() -> None:
    """Disable observability and drop all accumulated state."""
    global _REGISTRY, _TRACER
    _REGISTRY = None
    _TRACER = None


def enabled() -> bool:
    """True when :func:`configure` has been called and not shut down."""
    return _REGISTRY is not None


def registry() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when observability is off."""
    return _REGISTRY


def tracer() -> Optional[TraceWriter]:
    """The active trace writer, or ``None``."""
    return _TRACER


def inc(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.inc(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if _REGISTRY is not None:
        _REGISTRY.gauge(name, value)


def timer(name: str):
    """Context manager timing a block into timer ``name``.

    When observability is off this returns the shared :data:`NULL_TIMER`
    singleton, so the disabled cost is one global check and no
    allocation.
    """
    if _REGISTRY is None:
        return NULL_TIMER
    return _REGISTRY.timer(name)


def span(name: str, **args):
    """Context manager recording a trace span *and* a timer.

    The span lands in the trace file (when tracing is configured) as a
    Chrome ``"X"`` complete event with ``args`` attached; its duration
    also accumulates into the timer of the same name, so ``--profile``
    output covers the span hierarchy even without a trace file.
    """
    if _REGISTRY is None:
        return NULL_TIMER
    if _TRACER is None:
        return _REGISTRY.timer(name)
    return _TRACER.span(name, registry=_REGISTRY, **args)


def instant(name: str, **args) -> None:
    """Emit an instantaneous trace event (and count it as a counter)."""
    if _REGISTRY is not None:
        _REGISTRY.inc(name)
    if _TRACER is not None:
        _TRACER.instant(name, **args)


def reset() -> None:
    """Zero the active registry (used by forked workers to track deltas)."""
    if _REGISTRY is not None:
        _REGISTRY.reset()


def snapshot() -> Optional[dict]:
    """A JSON-clean snapshot of the registry, or ``None`` when disabled."""
    if _REGISTRY is None:
        return None
    return _REGISTRY.snapshot()


def merge_snapshot(snap: Optional[dict]) -> None:
    """Fold a worker's snapshot into this process's registry."""
    if snap and _REGISTRY is not None:
        _REGISTRY.merge(snap)


def write_metrics(path: str) -> None:
    """Write the accumulated metrics as a ``repro-metrics/v1`` document."""
    if _REGISTRY is None:
        raise RuntimeError("observability is not configured; nothing to write")
    _REGISTRY.write(path)


def print_profile(stream=None) -> None:
    """Render the accumulated timers/counters as a table (for ``--profile``)."""
    if _REGISTRY is None:
        return
    print(format_metrics(_REGISTRY.snapshot()), file=stream or sys.stderr)
