"""``repro-cbi bench``: the standardized perf scenarios and their schema.

Running the bench appends one *entry* to each of two append-only JSON
documents at the repo root (or ``--out-dir``):

* ``BENCH_collection.json`` -- collection-side scenarios: instrumented
  trial throughput (runs/sec) for every registered subject, the raw
  per-observation sampler cost at a near-zero rate (``sampler_overhead``:
  the fast path's no-op floor vs the legacy dispatch sampler, in ns per
  observation), the supervised sharded collector's end-to-end throughput
  including its disk commits, and the networked ingestion path's
  reports/sec and MB/s through ``POST /reports`` at upload batch sizes
  1/32/256 (``serve_ingest``), plus the subject factory's whole-package
  instrumentation wall and sites/sec (``factory_instrument``) and the
  resulting subject's trial throughput
  (``factory_collection_throughput``);
* ``BENCH_analysis.json`` -- analysis-side scenarios: streaming-merge
  bandwidth (MB/s over the shard bytes), shard statistics decode
  bandwidth for the v2 ``.npz`` layout vs the v3 memory-mapped layout
  over the same population (``shard_decode``), end-to-end scoring
  latency (streamed sufficient statistics -> scores -> pruning) at
  three store sizes, and the parallel engine's serial-vs-``--jobs 4``
  scoring walls at the same sizes (speedup is hardware-relative: the
  entry's ``environment.cpu_count`` says how many cores the measurement
  had), plus scoring latency at factory-package predicate counts
  (``factory_scoring``).

Both documents share schema :data:`BENCH_SCHEMA` (``repro-bench/v1``),
documented with a worked example in ``docs/OBSERVABILITY.md``; the
validator here is the single source of truth, and
``python -m repro.obs.bench --check`` gates CI on emitted files *and*
on the documented example staying valid (so code and docs cannot
drift apart silently).

Every future PR that touches a hot path re-runs the bench and appends a
labelled entry, growing the measured perf trajectory in-repo.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

#: Schema tag shared by both BENCH documents.
BENCH_SCHEMA = "repro-bench/v1"

#: Canonical file names at the trajectory root.
COLLECTION_FILE = "BENCH_collection.json"
ANALYSIS_FILE = "BENCH_analysis.json"

#: Baseline trial counts (full mode); ``--quick`` uses the small set.
_FULL_THROUGHPUT_RUNS = 300
_QUICK_THROUGHPUT_RUNS = 40
_FULL_STORE_RUNS = (300, 600, 1200)
_QUICK_STORE_RUNS = (60, 120, 240)

#: Floor on scaled trial counts so scenarios stay statistically non-empty.
_MIN_RUNS = 10


class BenchSchemaError(ValueError):
    """A BENCH document does not conform to ``repro-bench/v1``."""


def environment_info() -> dict:
    """The environment block stamped into every bench entry."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


def _scaled(base: int, scale: float) -> int:
    return max(int(base * scale), _MIN_RUNS)


def _scenario(name: str, params: dict, metrics: Dict[str, float], subject: Optional[str] = None) -> dict:
    entry = {"name": name, "params": params, "metrics": metrics}
    if subject is not None:
        entry["subject"] = subject
    return entry


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------
def run_collection_scenarios(quick: bool, scale: float = 1.0) -> List[dict]:
    """Collection throughput: instrumented runs/sec per subject."""
    from repro.cli import SUBJECTS
    from repro.harness.parallel import run_trials_sharded
    from repro.harness.runner import run_trials
    from repro.instrument.sampling import SamplingPlan

    n_runs = _scaled(
        _QUICK_THROUGHPUT_RUNS if quick else _FULL_THROUGHPUT_RUNS, scale
    )
    plan = SamplingPlan.uniform(0.01)
    scenarios: List[dict] = []
    # Builtin subjects only: this per-subject trajectory predates the
    # factory and must stay comparable release over release.  The factory
    # path gets its own scenarios below.
    for name in sorted(SUBJECTS):
        subject = SUBJECTS[name]()
        if subject.kind != "builtin":
            continue
        program = subject.build_program()
        start = time.perf_counter()
        reports, _ = run_trials(subject, program, n_runs, plan, seed=0)
        wall = time.perf_counter() - start
        scenarios.append(
            _scenario(
                "collection_throughput",
                {"runs": n_runs, "sampling": "uniform", "rate": 0.01},
                {
                    "wall_seconds": wall,
                    "runs_per_sec": reports.n_runs / max(wall, 1e-9),
                },
                subject=name,
            )
        )

    # Raw per-observation sampler cost at a near-zero sampling rate: the
    # "not sampled" case is the one paid millions of times per deployed
    # run, so this measures the no-op floor of the fast path (inlined
    # countdown decrement) against the legacy method-dispatch sampler.
    from repro.core.predicates import PredicateTable, Scheme
    from repro.instrument.runtime import Runtime

    n_obs = _scaled(20_000 if quick else 200_000, scale)
    walls: Dict[str, float] = {}
    for sampler in ("fast", "legacy"):
        table = PredicateTable()
        site = table.add_site(Scheme.BRANCHES, "bench", 1, "x")
        runtime = Runtime(table, sampler=sampler)
        runtime.begin_run(SamplingPlan.uniform(1e-6), seed=0)
        branch = runtime.branch
        index = site.index
        start = time.perf_counter()
        for _ in range(n_obs):
            branch(index, True)
        walls[sampler] = time.perf_counter() - start
        runtime.end_run()
    scenarios.append(
        _scenario(
            "sampler_overhead",
            {"observations": n_obs, "sampling": "uniform", "rate": 1e-6},
            {
                "fast_ns_per_obs": walls["fast"] / n_obs * 1e9,
                "legacy_ns_per_obs": walls["legacy"] / n_obs * 1e9,
                "speedup": walls["legacy"] / max(walls["fast"], 1e-12),
            },
        )
    )

    # The supervised sharded collector, including its fsync'd commits.
    subject = SUBJECTS["ccrypt"]()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        store_dir = os.path.join(tmp, "store")
        start = time.perf_counter()
        store = run_trials_sharded(
            subject,
            n_runs,
            plan,
            store_dir,
            seed=0,
            jobs=2,
            chunk_size=max(n_runs // 4, 5),
        )
        wall = time.perf_counter() - start
        scenarios.append(
            _scenario(
                "sharded_collection_throughput",
                {
                    "runs": n_runs,
                    "jobs": 2,
                    "chunk_size": max(n_runs // 4, 5),
                    "sampling": "uniform",
                    "rate": 0.01,
                },
                {
                    "wall_seconds": wall,
                    "runs_per_sec": store.n_runs / max(wall, 1e-9),
                },
                subject="ccrypt",
            )
        )

    # The HTTP ingestion path (repro.serve): spool one population, then
    # drain copies of it through an in-process FeedbackServer at several
    # batch sizes.  Walls include validation, the fsync'd ack WAL and
    # the store commits, i.e. the full durability cost of the service.
    from repro.serve import (
        CollectionService,
        FeedbackServer,
        ReportSpool,
        drain_spool,
        run_and_spool,
    )
    from repro.store import ShardStore

    subject = SUBJECTS["ccrypt"]()
    program = subject.build_program()
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        source = ReportSpool(os.path.join(tmp, "spool-source"))
        run_and_spool(subject, program, plan, source, n_runs, seed=0)
        for batch_size in (1, 32, 256):
            store = ShardStore.open_or_create(
                os.path.join(tmp, f"serve-{batch_size}"),
                subject.name,
                program.table,
                plan,
            )
            service = CollectionService(
                store, subject, batch_runs=max(n_runs // 4, 5)
            )
            server = FeedbackServer(service, port=0).start()
            spool = ReportSpool(os.path.join(tmp, f"spool-{batch_size}"))
            for seed in source.pending_seeds():
                spool.save(source.load(seed))
            start = time.perf_counter()
            drain_spool(
                spool,
                server.url,
                subject.name,
                program.table.signature(),
                batch_size=batch_size,
            )
            server.close(drain=True)
            wall = time.perf_counter() - start
            received = service.metrics.counter("serve.bytes_received")
            scenarios.append(
                _scenario(
                    "serve_ingest",
                    {"runs": n_runs, "batch_size": batch_size},
                    {
                        "wall_seconds": wall,
                        "reports_per_sec": n_runs / max(wall, 1e-9),
                        "mb_per_sec": received / 1e6 / max(wall, 1e-9),
                    },
                    subject="ccrypt",
                )
            )

    # Store-to-store federation (repro.federate): collect three
    # daemon-style stores over disjoint seed thirds, then merge them.
    # The wall covers the whole pull pipeline -- manifest diff, fetch,
    # checksum + parse verification, and the crash-safe commits.
    from repro.federate import LocalSource, federate_stores

    n_fed = 30 if quick else _scaled(60, scale)
    per_store = max(n_fed // 3, 5)
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        sources = []
        for i in range(3):
            directory = os.path.join(tmp, f"fed-src-{i}")
            run_trials_sharded(
                subject,
                per_store,
                plan,
                directory,
                seed=i * per_store,
                jobs=2,
                chunk_size=max(per_store // 2, 5),
            )
            sources.append(LocalSource(directory))
        dest = ShardStore.create_like(
            os.path.join(tmp, "fed-merged"), sources[0].manifest()
        )
        start = time.perf_counter()
        report = federate_stores(sources, dest)
        wall = time.perf_counter() - start
        scenarios.append(
            _scenario(
                "federate",
                {
                    "sources": 3,
                    "runs": 3 * per_store,
                    "shards": len(report.pulled),
                },
                {
                    "wall_seconds": wall,
                    "shards_per_sec": len(report.pulled) / max(wall, 1e-9),
                    "runs_per_sec": report.runs_merged / max(wall, 1e-9),
                    "mb_per_sec": report.bytes_pulled / 1e6 / max(wall, 1e-9),
                },
                subject="ccrypt",
            )
        )

    # Closed-loop steering payoff: the Table 8 "runs to isolate every
    # bug" question answered at an equal trial budget under uniform
    # 1/100 sampling vs. the steered closed loop (the EXPERIMENTS.md
    # "before vs. after steering" table; this re-measures the ccrypt
    # row).  An unconverged population reports the full budget -- it
    # needed more runs than were collected.
    from repro.harness.steering_eval import steering_payoff

    n_steer = 300 if quick else _scaled(2000, scale)
    refit = max(n_steer // 10, 50)
    start = time.perf_counter()
    payoff = steering_payoff(subject, n_steer, seed=0, refit_runs=refit)
    wall = time.perf_counter() - start
    budget = float(n_steer)
    scenarios.append(
        _scenario(
            "steering",
            {"runs": n_steer, "refit_runs": refit, "threshold": 0.2},
            {
                "wall_seconds": wall,
                "unsteered_runs_to_isolate": float(
                    payoff.unsteered if payoff.unsteered is not None else budget
                ),
                "steered_runs_to_isolate": float(
                    payoff.steered if payoff.steered is not None else budget
                ),
                "unsteered_bugs_isolated": float(payoff.unsteered_bugs),
                "steered_bugs_isolated": float(payoff.steered_bugs),
            },
            subject="ccrypt",
        )
    )

    # The subject factory: wall to AST-rewrite, compile and exec a whole
    # multi-module package behind the import hook, the site-registration
    # rate that implies, and the collection throughput of the resulting
    # factory subject.  These price the PR10 path and grow their own
    # trajectory, separate from the builtin per-subject rows above.
    from repro.factory import corpus as _corpus
    from repro.factory.loader import instrument_package
    from repro.factory.subjects import FactorySubject

    package = "jsonscan"
    sources = _corpus.corpus_sources(package)
    start = time.perf_counter()
    fprogram = instrument_package(package, modules=sources)
    wall = time.perf_counter() - start
    scenarios.append(
        _scenario(
            "factory_instrument",
            {"package": package, "modules": len(sources)},
            {
                "wall_seconds": wall,
                "sites": float(fprogram.table.n_sites),
                "sites_per_sec": fprogram.table.n_sites / max(wall, 1e-9),
            },
            subject=package,
        )
    )

    fsubject = FactorySubject(
        name=f"bench-{package}",
        package=package,
        modules=sources,
        generator=_corpus.GENERATORS[package],
        trial_budget=n_runs,
    )
    fprogram = fsubject.build_program()
    start = time.perf_counter()
    reports, _ = run_trials(fsubject, fprogram, n_runs, plan, seed=0)
    wall = time.perf_counter() - start
    scenarios.append(
        _scenario(
            "factory_collection_throughput",
            {"runs": n_runs, "sampling": "uniform", "rate": 0.01},
            {
                "wall_seconds": wall,
                "runs_per_sec": reports.n_runs / max(wall, 1e-9),
            },
            subject=package,
        )
    )
    return scenarios


def run_analysis_scenarios(quick: bool, scale: float = 1.0) -> List[dict]:
    """Streaming-merge MB/s and scoring latency at three store sizes."""
    from repro.core.pruning import prune_predicates
    from repro.harness.parallel import run_trials_sharded
    from repro.instrument.sampling import SamplingPlan
    from repro.store import ShardStore

    from repro.cli import SUBJECTS

    subject = SUBJECTS["ccrypt"]()
    plan = SamplingPlan.uniform(0.01)
    # dict.fromkeys dedupes while keeping order: at tiny --scale several
    # sizes clamp to _MIN_RUNS and would otherwise collide in one store.
    sizes = list(dict.fromkeys(
        _scaled(n, scale)
        for n in (_QUICK_STORE_RUNS if quick else _FULL_STORE_RUNS)
    ))
    scenarios: List[dict] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        store_dirs: List[Tuple[int, str]] = []
        for size in sizes:
            store_dir = os.path.join(tmp, f"store-{size}")
            run_trials_sharded(
                subject,
                size,
                plan,
                store_dir,
                seed=0,
                jobs=2,
                chunk_size=max(size // 6, 5),
            )
            store_dirs.append((size, store_dir))

        # Scoring latency: streamed stats -> scores -> pruning, per size.
        for size, store_dir in store_dirs:
            store = ShardStore.open(store_dir)
            start = time.perf_counter()
            scores = store.compute_scores()
            pruning = prune_predicates(scores=scores)
            wall = time.perf_counter() - start
            scenarios.append(
                _scenario(
                    "scoring_latency",
                    {"runs": size, "shards": store.n_shards},
                    {
                        "wall_seconds": wall,
                        "runs_per_sec": size / max(wall, 1e-9),
                        "predicates_kept": float(pruning.n_kept),
                    },
                    subject="ccrypt",
                )
            )

        # Serial vs parallel engine scoring at each size: the same
        # partitioned pipeline at --jobs 1 and --jobs 4 (bit-identical
        # outputs; only the wall clock may differ, and only when the
        # host actually has cores to spend -- see environment.cpu_count).
        from repro.core.engine import AnalysisEngine

        for size, store_dir in store_dirs:
            store = ShardStore.open(store_dir)
            walls = {}
            for jobs in (1, 4):
                engine = AnalysisEngine(jobs=jobs)
                start = time.perf_counter()
                stats = engine.store_stats(store)
                engine.score_stats(stats)
                walls[jobs] = time.perf_counter() - start
            scenarios.append(
                _scenario(
                    "parallel_analyze",
                    {"runs": size, "shards": store.n_shards, "jobs": 4},
                    {
                        "serial_wall_seconds": walls[1],
                        "parallel_wall_seconds": walls[4],
                        "speedup": walls[1] / max(walls[4], 1e-9),
                    },
                    subject="ccrypt",
                )
            )

        # Measure bake-off wall: every registered suspiciousness measure
        # scored over the same streamed statistics, per store size.  The
        # per-measure walls price the registry seam itself -- each pass
        # runs the full partitioned score_stats pipeline under one
        # measure, exactly what `bakeoff` and `GET /scores?measure=` pay.
        from repro.core import measures as _measures

        for size, store_dir in store_dirs:
            store = ShardStore.open(store_dir)
            engine = AnalysisEngine(jobs=1)
            stats = engine.store_stats(store)
            walls: Dict[str, float] = {}
            for m in _measures.available():
                start = time.perf_counter()
                engine.score_stats(stats, measure=m)
                walls[m] = time.perf_counter() - start
            total = sum(walls.values())
            metrics = {f"{m}_wall_seconds": w for m, w in walls.items()}
            metrics["total_wall_seconds"] = total
            metrics["measures_per_sec"] = len(walls) / max(total, 1e-9)
            scenarios.append(
                _scenario(
                    "bakeoff",
                    {
                        "runs": size,
                        "shards": store.n_shards,
                        "measures": len(walls),
                    },
                    metrics,
                    subject="ccrypt",
                )
            )

        # Streaming merge bandwidth over the largest store's bytes.
        size, store_dir = store_dirs[-1]
        store = ShardStore.open(store_dir)
        total_bytes = sum(os.path.getsize(p) for p in store.shard_paths())
        start = time.perf_counter()
        store.sufficient_stats()
        wall = time.perf_counter() - start
        scenarios.append(
            _scenario(
                "streaming_merge",
                {"runs": size, "shards": store.n_shards, "bytes": total_bytes},
                {
                    "wall_seconds": wall,
                    "mb_per_sec": total_bytes / 1e6 / max(wall, 1e-9),
                },
                subject="ccrypt",
            )
        )

        # Shard statistics decode bandwidth, v2 (.npz, decompressing)
        # vs v3 (mmap, zero-copy), over the same population: the raw
        # speed win the v3 layout exists for.  Each pass re-reads every
        # shard's statistics exactly as the streaming scorer would.
        from repro.core.io import load_reports, load_shard_stats, save_reports

        v2_dir = os.path.join(tmp, "decode-v2")
        v3_dir = os.path.join(tmp, "decode-v3")
        os.makedirs(v2_dir)
        os.makedirs(v3_dir)
        shard_bytes = {2: 0, 3: 0}
        for i, path in enumerate(store.shard_paths()):
            reports, truth = load_reports(path)
            for version, directory in ((2, v2_dir), (3, v3_dir)):
                out = os.path.join(directory, f"shard-{i:04d}")
                save_reports(out, reports, truth, version=version)
                shard_bytes[version] += os.path.getsize(out)
        passes = 3 if quick else 10
        decode_walls = {}
        for version, directory in ((2, v2_dir), (3, v3_dir)):
            names = sorted(os.listdir(directory))
            start = time.perf_counter()
            for _ in range(passes):
                for name in names:
                    load_shard_stats(os.path.join(directory, name))
            decode_walls[version] = time.perf_counter() - start
        scenarios.append(
            _scenario(
                "shard_decode",
                {
                    "runs": size,
                    "shards": store.n_shards,
                    "passes": passes,
                    "v2_bytes": shard_bytes[2],
                    "v3_bytes": shard_bytes[3],
                },
                {
                    "v2_mb_per_sec": shard_bytes[2] * passes / 1e6
                    / max(decode_walls[2], 1e-9),
                    "v3_mb_per_sec": shard_bytes[3] * passes / 1e6
                    / max(decode_walls[3], 1e-9),
                    "speedup": decode_walls[2] / max(decode_walls[3], 1e-12),
                },
                subject="ccrypt",
            )
        )

    # Scoring at factory site counts: a whole instrumented package has
    # several times the predicate count of the hand-built analogues, so
    # this prices the analysis engine at the density the factory emits.
    from repro.core.engine import AnalysisEngine
    from repro.factory import corpus as _corpus
    from repro.factory.subjects import FactorySubject
    from repro.harness.runner import run_trials
    from repro.store.incremental import SufficientStats

    package = "jsonscan"
    fsubject = FactorySubject(
        name=f"bench-{package}",
        package=package,
        modules=_corpus.corpus_sources(package),
        generator=_corpus.GENERATORS[package],
        trial_budget=sizes[0],
    )
    fprogram = fsubject.build_program()
    reports, _ = run_trials(
        fsubject, fprogram, sizes[0], SamplingPlan.full(), seed=0
    )
    stats = SufficientStats.from_reports(reports)
    engine = AnalysisEngine(jobs=1)
    start = time.perf_counter()
    engine.score_stats(stats)
    wall = time.perf_counter() - start
    scenarios.append(
        _scenario(
            "factory_scoring",
            {"runs": sizes[0], "predicates": fprogram.table.n_predicates},
            {
                "wall_seconds": wall,
                "predicates_per_sec": fprogram.table.n_predicates
                / max(wall, 1e-9),
            },
            subject=package,
        )
    )
    return scenarios


# ----------------------------------------------------------------------
# Document assembly and validation
# ----------------------------------------------------------------------
def make_entry(scenarios: List[dict], quick: bool, label: Optional[str]) -> dict:
    """Wrap scenario results into one trajectory entry."""
    return {
        "created_unix": time.time(),
        "label": label or "unlabelled",
        "quick": quick,
        "environment": environment_info(),
        "scenarios": scenarios,
    }


def append_entry(path: str, kind: str, entry: dict) -> dict:
    """Append ``entry`` to the BENCH document at ``path`` (creating it).

    An existing document must carry the current schema and ``kind``;
    anything else is an error rather than a silent overwrite.
    """
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        validate_bench_document(doc)
        if doc["kind"] != kind:
            raise BenchSchemaError(
                f"{path} holds kind {doc['kind']!r}, refusing to append {kind!r}"
            )
    else:
        doc = {"schema": BENCH_SCHEMA, "kind": kind, "entries": []}
    doc["entries"].append(entry)
    validate_bench_document(doc)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def validate_bench_document(doc: dict) -> None:
    """Raise :class:`BenchSchemaError` unless ``doc`` is a valid document."""

    def need(cond: bool, message: str) -> None:
        if not cond:
            raise BenchSchemaError(message)

    need(isinstance(doc, dict), "document must be a JSON object")
    need(doc.get("schema") == BENCH_SCHEMA, f"schema must be {BENCH_SCHEMA!r}")
    need(doc.get("kind") in ("collection", "analysis"),
         "kind must be 'collection' or 'analysis'")
    need(isinstance(doc.get("entries"), list), "entries must be a list")
    for i, entry in enumerate(doc["entries"]):
        where = f"entries[{i}]"
        need(isinstance(entry, dict), f"{where} must be an object")
        need(isinstance(entry.get("created_unix"), (int, float)),
             f"{where}.created_unix must be a number")
        need(isinstance(entry.get("label"), str), f"{where}.label must be a string")
        need(isinstance(entry.get("quick"), bool), f"{where}.quick must be a bool")
        env = entry.get("environment")
        need(isinstance(env, dict), f"{where}.environment must be an object")
        for key in ("python", "platform", "cpu_count"):
            need(key in env, f"{where}.environment lacks {key!r}")
        need(isinstance(entry.get("scenarios"), list) and entry["scenarios"],
             f"{where}.scenarios must be a non-empty list")
        for j, sc in enumerate(entry["scenarios"]):
            swhere = f"{where}.scenarios[{j}]"
            need(isinstance(sc, dict), f"{swhere} must be an object")
            need(isinstance(sc.get("name"), str) and sc["name"],
                 f"{swhere}.name must be a non-empty string")
            need(isinstance(sc.get("params"), dict), f"{swhere}.params must be an object")
            metrics = sc.get("metrics")
            need(isinstance(metrics, dict) and metrics,
                 f"{swhere}.metrics must be a non-empty object")
            for mname, mval in metrics.items():
                need(
                    isinstance(mval, (int, float)) and not isinstance(mval, bool),
                    f"{swhere}.metrics[{mname!r}] must be a number",
                )


def validate_file(path: str) -> dict:
    """Load and validate one BENCH document; returns it."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_bench_document(doc)
    return doc


# ----------------------------------------------------------------------
# Docs cross-check
# ----------------------------------------------------------------------
def documented_examples(markdown_path: str) -> List[dict]:
    """Extract the ``repro-bench`` JSON examples from a markdown page."""
    with open(markdown_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    examples: List[dict] = []
    for match in re.finditer(r"```json\n(.*?)```", text, flags=re.DOTALL):
        block = match.group(1)
        if BENCH_SCHEMA not in block:
            continue
        try:
            examples.append(json.loads(block))
        except json.JSONDecodeError as exc:
            raise BenchSchemaError(
                f"{markdown_path}: documented example is not valid JSON: {exc}"
            ) from exc
    return examples


def _skeleton(doc: dict) -> dict:
    """Structural skeleton of a document: the key sets at every level."""
    entry = doc["entries"][0]
    scenario = entry["scenarios"][0]
    return {
        "document": sorted(doc),
        "entry": sorted(entry),
        "environment": sorted(entry["environment"]),
        "scenario": sorted(scenario),
    }


def check_against_docs(doc: dict, markdown_path: str) -> None:
    """Fail when ``doc``'s structure diverges from the documented example.

    The documented example must itself validate, and its key sets at the
    document / entry / scenario levels must equal the emitted ones.
    """
    examples = documented_examples(markdown_path)
    if not examples:
        raise BenchSchemaError(
            f"{markdown_path} contains no {BENCH_SCHEMA} JSON example to check against"
        )
    for example in examples:
        validate_bench_document(example)
    matching = [e for e in examples if e["kind"] == doc["kind"]] or examples
    documented = _skeleton(matching[0])
    emitted = _skeleton(doc)
    if documented != emitted:
        raise BenchSchemaError(
            "emitted BENCH structure diverges from the documented schema: "
            f"documented {documented}, emitted {emitted}"
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_bench(
    out_dir: str = ".",
    quick: bool = False,
    scale: float = 1.0,
    label: Optional[str] = None,
) -> Tuple[str, str]:
    """Run every scenario and append entries to both BENCH documents.

    Returns:
        ``(collection_path, analysis_path)``.
    """
    os.makedirs(out_dir, exist_ok=True)
    collection_path = os.path.join(out_dir, COLLECTION_FILE)
    analysis_path = os.path.join(out_dir, ANALYSIS_FILE)

    print("bench: collection scenarios...", file=sys.stderr)
    collection = run_collection_scenarios(quick, scale)
    append_entry(collection_path, "collection", make_entry(collection, quick, label))

    print("bench: analysis scenarios...", file=sys.stderr)
    analysis = run_analysis_scenarios(quick, scale)
    append_entry(analysis_path, "analysis", make_entry(analysis, quick, label))
    return collection_path, analysis_path


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.obs.bench --check BENCH_*.json [--docs PAGE]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="validate BENCH_*.json documents against repro-bench/v1",
    )
    parser.add_argument("--check", nargs="+", metavar="FILE", required=True,
                        help="BENCH documents to validate")
    parser.add_argument("--docs", default=None, metavar="PAGE",
                        help="also require structural agreement with the "
                        "documented example in this markdown page")
    args = parser.parse_args(argv)
    for path in args.check:
        try:
            doc = validate_file(path)
            if args.docs:
                check_against_docs(doc, args.docs)
        except (BenchSchemaError, OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            return 1
        entries = len(doc["entries"])
        print(f"ok   {path}: {doc['kind']}, {entries} entr{'y' if entries == 1 else 'ies'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
