"""Counters, gauges and timers: the metrics half of :mod:`repro.obs`.

A :class:`MetricsRegistry` is process-local and thread-safe.  Counters
and timer statistics are *additive*, so registries from different
processes merge exactly (see :meth:`MetricsRegistry.merge`); gauges are
last-write-wins.  Everything serialises to one JSON document with
schema tag :data:`METRICS_SCHEMA`::

    {
      "schema": "repro-metrics/v1",
      "created_unix": 1754380800.0,
      "pid": 1234,
      "counters": {"runtime.runs": 5000},
      "gauges": {"analysis.pruning_kept": 27},
      "timers": {
        "scores.from_counts": {
          "count": 16, "total_seconds": 0.021,
          "min_seconds": 0.0009, "max_seconds": 0.004
        }
      }
    }

Metric names are dotted paths (``subsystem.measure``); the full
catalogue with units lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Optional

#: Schema tag of the metrics JSON document.
METRICS_SCHEMA = "repro-metrics/v1"


class _NullTimer:
    """Shared no-op context manager returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


#: The no-op singleton; identity-tested by the zero-overhead tests.
NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager recording one duration into a registry timer."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._start)


class MetricsRegistry:
    """Thread-safe accumulator for counters, gauges and timers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self._timers: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration into timer ``name``."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                self._timers[name] = [1, seconds, seconds, seconds]
            else:
                stat[0] += 1
                stat[1] += seconds
                if seconds < stat[2]:
                    stat[2] = seconds
                if seconds > stat[3]:
                    stat[3] = seconds

    def timer(self, name: str) -> _Timer:
        """A context manager that times its block into ``name``."""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    # Reading, merging, persistence
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A JSON-clean copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": stat[0],
                        "total_seconds": stat[1],
                        "min_seconds": stat[2],
                        "max_seconds": stat[3],
                    }
                    for name, stat in self._timers.items()
                },
            }

    def merge(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and timer statistics add; gauges take the incoming
        value (the merged snapshot is the more recent observation).
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                self._gauges[name] = value
            for name, t in snap.get("timers", {}).items():
                stat = self._timers.get(name)
                if stat is None:
                    self._timers[name] = [
                        t["count"],
                        t["total_seconds"],
                        t["min_seconds"],
                        t["max_seconds"],
                    ]
                else:
                    stat[0] += t["count"]
                    stat[1] += t["total_seconds"]
                    stat[2] = min(stat[2], t["min_seconds"])
                    stat[3] = max(stat[3], t["max_seconds"])

    def reset(self) -> None:
        """Zero every metric (forked workers call this to track deltas)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def to_document(self) -> dict:
        """The full ``repro-metrics/v1`` JSON document."""
        return {
            "schema": METRICS_SCHEMA,
            "created_unix": time.time(),
            "pid": os.getpid(),
            **self.snapshot(),
        }

    def write(self, path: str) -> None:
        """Write :meth:`to_document` to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def format_metrics(snap: dict) -> str:
    """Render a snapshot as the aligned table ``analyze --profile`` prints."""
    lines = []
    timers = snap.get("timers", {})
    if timers:
        lines.append(f"{'timer':<34} {'calls':>7} {'total':>10} {'mean':>10} {'max':>10}")
        for name in sorted(timers):
            t = timers[name]
            mean = t["total_seconds"] / max(t["count"], 1)
            lines.append(
                f"{name:<34} {t['count']:>7d} {t['total_seconds'] * 1e3:>8.1f}ms "
                f"{mean * 1e3:>8.2f}ms {t['max_seconds'] * 1e3:>8.2f}ms"
            )
    counters = snap.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<46} {'value':>12}")
        for name in sorted(counters):
            value = counters[name]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"{name:<46} {text:>12}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<46} {'value':>12}")
        for name in sorted(gauges):
            lines.append(f"{name:<46} {gauges[name]:>12g}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
