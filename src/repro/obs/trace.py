"""Trace spans: Chrome Trace Event Format records, one JSON per line.

Each line of the trace file is a self-contained JSON object following
the Chrome Trace Event Format (the format ``chrome://tracing`` and
Perfetto read).  Two phases are emitted:

* ``"X"`` *complete* events -- a span with ``ts`` (microseconds since
  the epoch) and ``dur`` (microseconds), e.g. one per collection chunk;
* ``"i"`` *instant* events -- a point in time, e.g. a chunk retry.

The JSONL framing (rather than one JSON array) is deliberate: every
event is appended with a single ``write`` of one line, so forked
collection workers can share the parent's trace file without locks --
the ``pid`` field says who wrote what, and a crashed worker can never
leave the file unparseable.  To load the file in ``chrome://tracing``,
wrap the lines into the object form::

    python -m repro.obs.trace TRACE.jsonl -o TRACE.json

and open ``TRACE.json`` via the Load button (see
``docs/OBSERVABILITY.md`` for a walkthrough).
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from typing import List, Optional

#: Category tag on every emitted event.
TRACE_CATEGORY = "repro"

#: Keys every event line must carry (the validity tests pin these).
REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


class _Span:
    """Context manager emitting one ``"X"`` complete event on exit."""

    __slots__ = ("_writer", "_name", "_args", "_registry", "_wall_us", "_start")

    def __init__(self, writer: "TraceWriter", name: str, args: dict, registry) -> None:
        self._writer = writer
        self._name = name
        self._args = args
        self._registry = registry

    def __enter__(self) -> "_Span":
        self._wall_us = time.time() * 1e6
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._writer.emit(
            {
                "name": self._name,
                "cat": TRACE_CATEGORY,
                "ph": "X",
                "ts": self._wall_us,
                "dur": elapsed * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0x7FFFFFFF,
                "args": self._args,
            }
        )
        if self._registry is not None:
            self._registry.observe(self._name, elapsed)


class TraceWriter:
    """Appends trace events to a JSONL file, one line per event."""

    def __init__(self, path: str) -> None:
        self.path = path
        # Touch the file so an empty trace is still a valid (empty) trace.
        with open(path, "a", encoding="utf-8"):
            pass

    def emit(self, event: dict) -> None:
        """Append one event as a single line (safe across forked writers)."""
        line = json.dumps(event, sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)

    def span(self, name: str, registry=None, **args) -> _Span:
        """A context manager tracing its block as a complete event.

        When ``registry`` is given, the span's duration also lands in
        that registry's timer of the same name.
        """
        return _Span(self, name, args, registry)

    def instant(self, name: str, **args) -> None:
        """Emit an instantaneous event."""
        self.emit(
            {
                "name": name,
                "cat": TRACE_CATEGORY,
                "ph": "i",
                "s": "p",
                "ts": time.time() * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0x7FFFFFFF,
                "args": args,
            }
        )


def read_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file into its event list.

    Raises:
        ValueError: A line is not valid JSON or lacks a required key.
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: event lacks required keys {missing}"
                )
            if event["ph"] == "X" and "dur" not in event:
                raise ValueError(f"{path}:{lineno}: complete event lacks 'dur'")
            events.append(event)
    return events


def to_chrome_json(src: str, dst: str) -> int:
    """Convert a JSONL trace into the object form ``chrome://tracing`` loads.

    Returns:
        The number of events converted.
    """
    events = read_trace(src)
    with open(dst, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
        handle.write("\n")
    return len(events)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python -m repro.obs.trace TRACE.jsonl -o TRACE.json``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="convert a repro JSONL trace for chrome://tracing",
    )
    parser.add_argument("trace", help="JSONL trace written by --trace")
    parser.add_argument(
        "-o", "--out", default=None,
        help="output path (default: the input with a .json suffix)",
    )
    args = parser.parse_args(argv)
    out = args.out or (
        args.trace[: -len(".jsonl")] + ".json"
        if args.trace.endswith(".jsonl")
        else args.trace + ".json"
    )
    count = to_chrome_json(args.trace, out)
    print(f"wrote {count} events to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
