"""Bounded in-memory buffering of accepted uploads into shard-sized batches.

The shard store names and audits shards by their seed range, and the
differential acceptance bar requires that a population collected over the
network commits the *same* seed ranges a local
:func:`repro.harness.parallel.run_trials_sharded` session would.  The
batcher therefore groups accepted reports by seed: a batch is a
contiguous run of ``batch_runs`` seeds, emitted only once every seed in
the range has arrived, so out-of-order and concurrent uploaders still
produce deterministic shards.

Idempotency lives here too: a report whose seed is already pending or
already inside a committed range is acknowledged as a duplicate and
dropped, which is what makes the client's at-least-once retry loop safe.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.serve.protocol import RunReport


class BatcherFull(RuntimeError):
    """The bounded buffer is at capacity; the server answers 503."""


class ReportBatcher:
    """Buffer accepted reports and emit contiguous, shard-sized batches.

    Args:
        batch_runs: Seeds per emitted batch (the shard size).
        max_buffered: Upper bound on pending (accepted, uncommitted)
            reports; offers past it raise :class:`BatcherFull` so memory
            stays bounded under a flood of uploads.
        committed: Initial committed seed ranges as ``(start, stop)``
            half-open pairs (from the store manifest), so restarts and
            replays stay idempotent.
    """

    def __init__(
        self,
        batch_runs: int = 200,
        max_buffered: int = 100_000,
        committed: Tuple[Tuple[int, int], ...] = (),
    ) -> None:
        if batch_runs <= 0:
            raise ValueError(f"batch_runs must be positive, got {batch_runs}")
        self.batch_runs = batch_runs
        self.max_buffered = max_buffered
        self._pending: Dict[int, RunReport] = {}
        # Disjoint, sorted, merged half-open [start, stop) ranges.
        self._committed: List[Tuple[int, int]] = []
        for start, stop in sorted(committed):
            self._add_range(start, stop)

    # -- committed-range bookkeeping ------------------------------------

    def _add_range(self, start: int, stop: int) -> None:
        if stop <= start:
            return
        index = bisect.bisect_left(self._committed, (start, stop))
        self._committed.insert(index, (start, stop))
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._committed:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._committed = merged

    def is_committed(self, seed: int) -> bool:
        """True when ``seed`` lies inside a committed range."""
        index = bisect.bisect_right(self._committed, (seed, float("inf"))) - 1
        if index < 0:
            return False
        lo, hi = self._committed[index]
        return lo <= seed < hi

    # -- ingestion ------------------------------------------------------

    def offer(self, report: RunReport) -> str:
        """Accept one report; returns ``"queued"`` or ``"duplicate"``.

        Raises:
            BatcherFull: the pending buffer is at ``max_buffered`` and
                this seed is new.
        """
        if self.is_committed(report.seed) or report.seed in self._pending:
            return "duplicate"
        if len(self._pending) >= self.max_buffered:
            raise BatcherFull(
                f"{len(self._pending)} reports pending (limit {self.max_buffered})"
            )
        self._pending[report.seed] = report
        return "queued"

    def discard(self, seed: int) -> None:
        """Forget a pending report (rolling back a partial acceptance)."""
        self._pending.pop(seed, None)

    @property
    def queue_depth(self) -> int:
        """Accepted reports not yet committed."""
        return len(self._pending)

    def pending_reports(self) -> List[RunReport]:
        """The pending reports in seed order (for WAL compaction)."""
        return [self._pending[seed] for seed in sorted(self._pending)]

    # -- batch emission -------------------------------------------------

    def _contiguous_groups(self) -> List[Tuple[int, int]]:
        """Maximal contiguous pending seed ranges, as ``[start, stop)``."""
        groups: List[Tuple[int, int]] = []
        for seed in sorted(self._pending):
            if groups and seed == groups[-1][1]:
                groups[-1] = (groups[-1][0], seed + 1)
            else:
                groups.append((seed, seed + 1))
        return groups

    def _chunks(self, start: int, stop: int, partial: bool) -> List[Tuple[int, List[RunReport]]]:
        out: List[Tuple[int, List[RunReport]]] = []
        seed = start
        while seed + self.batch_runs <= stop:
            out.append((seed, [self._pending[s] for s in range(seed, seed + self.batch_runs)]))
            seed += self.batch_runs
        if partial and seed < stop:
            out.append((seed, [self._pending[s] for s in range(seed, stop)]))
        return out

    def take_ready(self) -> List[Tuple[int, List[RunReport]]]:
        """Full batches ready to commit, as ``(seed_start, reports)``.

        Only complete runs of ``batch_runs`` contiguous seeds are
        returned; stragglers wait for their neighbours (or for
        :meth:`take_all` at shutdown).  The reports stay pending until
        :meth:`mark_committed` -- callers must commit-then-mark each
        batch before calling this again.
        """
        ready: List[Tuple[int, List[RunReport]]] = []
        for start, stop in self._contiguous_groups():
            ready.extend(self._chunks(start, stop, partial=False))
        return ready

    def take_all(self) -> List[Tuple[int, List[RunReport]]]:
        """Every pending report, grouped per contiguous range (drain).

        Used by graceful shutdown and explicit flushes: partial tail
        groups are emitted too, each capped at ``batch_runs`` reports so
        no shard exceeds the configured size.
        """
        batches: List[Tuple[int, List[RunReport]]] = []
        for start, stop in self._contiguous_groups():
            batches.extend(self._chunks(start, stop, partial=True))
        return batches

    def mark_committed(self, seed_start: int, count: int) -> None:
        """Record a committed batch and forget its pending reports."""
        for seed in range(seed_start, seed_start + count):
            self._pending.pop(seed, None)
        self._add_range(seed_start, seed_start + count)
