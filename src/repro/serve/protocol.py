"""The ``repro-report/v1`` wire format.

A feedback upload is a JSON document (optionally gzip-compressed, signalled
by ``Content-Encoding: gzip``) carrying one or more run reports:

.. code-block:: json

    {
      "schema": "repro-report/v1",
      "subject": "ccrypt",
      "table_sha": "<hex sha-256 of the predicate table>",
      "reports": [
        {
          "seed": 17,
          "failed": true,
          "site_obs": {"3": 12, "9": 1},
          "pred_true": {"11": 4},
          "stack": ["f", "g"],
          "bugs": ["double-free"]
        }
      ]
    }

The counter maps are sparse (absent site/predicate means zero) with
string keys, because JSON objects cannot have integer keys.  Steered
clients additionally stamp each report (and the envelope) with an
optional ``steering`` version string naming the ``repro-steering/v1``
document whose rates produced the run; the key is omitted for unsteered
collection, so those payloads stay byte-identical to older clients.  ``table_sha``
is the archive-v2 table signature
(:meth:`repro.core.predicates.PredicateTable.signature`): the server
refuses reports instrumented against a different table rather than
silently misaligning predicate indices.

Validation is strict -- every structural or semantic problem raises
:class:`ProtocolError` with a machine-readable ``reason`` code that the
server echoes in its 400 response and records in the quarantine reason
file.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema identifier accepted by the server.
REPORT_SCHEMA = "repro-report/v1"

#: Payloads larger than this are rejected before JSON parsing
#: (decompressed size; a crude zip-bomb / memory guard).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A wire payload that cannot be accepted.

    Attributes:
        reason: Short machine-readable code (``bad-json``, ``bad-schema``,
            ``wrong-subject``, ``table-mismatch``, ``bad-report``, ...)
            suitable for quarantine reason files and metrics labels.
    """

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class RunReport:
    """One run's feedback report in wire form.

    Mirrors :class:`repro.core.reports.FeedbackReport` plus the trial
    seed (the run's identity for idempotent delivery) and the ground-truth
    bug occurrences (the paper's evaluation side channel; an empty list
    for deployments without an oracle's ground truth).
    """

    seed: int
    failed: bool
    site_obs: Dict[int, int] = field(default_factory=dict)
    pred_true: Dict[int, int] = field(default_factory=dict)
    stack: Optional[Tuple[str, ...]] = None
    bugs: Tuple[str, ...] = ()
    #: Steering provenance: the ``repro-steering/v1`` version string of the
    #: rate table the trial ran under, or None for unsteered collection.
    #: Emitted on the wire only when set, so unsteered payload bytes are
    #: identical to pre-steering clients.
    steering: Optional[str] = None

    def to_wire(self) -> dict:
        """The JSON-ready dict for this report."""
        wire = {
            "seed": self.seed,
            "failed": self.failed,
            "site_obs": {str(k): v for k, v in sorted(self.site_obs.items())},
            "pred_true": {str(k): v for k, v in sorted(self.pred_true.items())},
            "stack": list(self.stack) if self.stack is not None else None,
            "bugs": list(self.bugs),
        }
        if self.steering is not None:
            wire["steering"] = self.steering
        return wire


def _counter_map(raw: object, bound: int, what: str, seed: object) -> Dict[int, int]:
    """Validate a sparse ``{"index": count}`` map against an index bound."""
    if not isinstance(raw, dict):
        raise ProtocolError("bad-report", f"report seed={seed}: {what} is not an object")
    out: Dict[int, int] = {}
    for key, value in raw.items():
        try:
            index = int(key)
        except (TypeError, ValueError):
            raise ProtocolError(
                "bad-report", f"report seed={seed}: {what} key {key!r} is not an integer"
            ) from None
        if not (0 <= index < bound):
            raise ProtocolError(
                "bad-report",
                f"report seed={seed}: {what} index {index} out of range [0, {bound})",
            )
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise ProtocolError(
                "bad-report",
                f"report seed={seed}: {what}[{index}] = {value!r} is not a positive int",
            )
        out[index] = value
    return out


def report_from_wire(
    spec: dict, n_sites: int, n_predicates: int, bug_ids: Sequence[str]
) -> RunReport:
    """Validate and decode one wire report dict.

    Raises:
        ProtocolError: on any structural or range violation.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("bad-report", "report entry is not an object")
    seed = spec.get("seed")
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ProtocolError("bad-report", f"seed {seed!r} is not a non-negative integer")
    failed = spec.get("failed")
    if not isinstance(failed, bool):
        raise ProtocolError("bad-report", f"report seed={seed}: failed {failed!r} is not a bool")
    site_obs = _counter_map(spec.get("site_obs", {}), n_sites, "site_obs", seed)
    pred_true = _counter_map(spec.get("pred_true", {}), n_predicates, "pred_true", seed)
    stack_raw = spec.get("stack")
    stack: Optional[Tuple[str, ...]] = None
    if stack_raw is not None:
        if not isinstance(stack_raw, list) or not all(
            isinstance(frame, str) for frame in stack_raw
        ):
            raise ProtocolError(
                "bad-report", f"report seed={seed}: stack is not a list of strings"
            )
        stack = tuple(stack_raw)
    bugs_raw = spec.get("bugs", [])
    if not isinstance(bugs_raw, list) or not all(isinstance(b, str) for b in bugs_raw):
        raise ProtocolError("bad-report", f"report seed={seed}: bugs is not a list of strings")
    known = set(bug_ids)
    for bug in bugs_raw:
        if bug not in known:
            raise ProtocolError(
                "bad-report",
                f"report seed={seed}: unknown bug id {bug!r} (subject knows {sorted(known)})",
            )
    steering = spec.get("steering")
    if steering is not None and not isinstance(steering, str):
        raise ProtocolError(
            "bad-report", f"report seed={seed}: steering {steering!r} is not a string"
        )
    return RunReport(
        seed=seed,
        failed=failed,
        site_obs=site_obs,
        pred_true=pred_true,
        stack=stack,
        bugs=tuple(bugs_raw),
        steering=steering,
    )


def encode_batch(
    reports: Sequence[RunReport],
    subject: str,
    table_sha: str,
    compress: bool = True,
    steering: Optional[str] = None,
) -> Tuple[bytes, Dict[str, str]]:
    """Serialise a batch of reports for ``POST /reports``.

    ``steering`` optionally stamps the envelope with the steering
    version the submitting client last applied; servers that predate
    steering ignore unknown envelope keys, and the key is omitted
    entirely when None so unsteered batches stay byte-identical to
    pre-steering clients.

    Returns:
        ``(body, headers)`` where headers carries ``Content-Type`` and,
        when ``compress``, ``Content-Encoding: gzip``.
    """
    document = {
        "schema": REPORT_SCHEMA,
        "subject": subject,
        "table_sha": table_sha,
        "reports": [r.to_wire() for r in reports],
    }
    if steering is not None:
        document["steering"] = steering
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    headers = {"Content-Type": "application/json"}
    if compress:
        # mtime=0 keeps the bytes a pure function of the payload.
        body = gzip.compress(body, mtime=0)
        headers["Content-Encoding"] = "gzip"
    return body, headers


def decode_body(body: bytes, content_encoding: Optional[str] = None) -> dict:
    """Decompress and parse a request body into the payload document.

    Raises:
        ProtocolError: ``bad-encoding`` for unknown/broken encodings,
            ``too-large`` past :data:`MAX_BODY_BYTES`, ``bad-json`` for
            unparseable text, ``bad-schema`` when the document is not a
            JSON object.
    """
    encoding = (content_encoding or "identity").strip().lower()
    if encoding == "gzip":
        try:
            body = gzip.decompress(body)
        except (OSError, EOFError) as exc:
            raise ProtocolError("bad-encoding", f"gzip decompression failed: {exc}") from exc
    elif encoding not in ("identity", ""):
        raise ProtocolError("bad-encoding", f"unsupported Content-Encoding {encoding!r}")
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(
            "too-large", f"payload is {len(body)} bytes (limit {MAX_BODY_BYTES})"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-json", str(exc)) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("bad-schema", "payload is not a JSON object")
    return payload


def validate_payload(
    payload: dict,
    subject: str,
    table_sha: str,
    n_sites: int,
    n_predicates: int,
    bug_ids: Sequence[str],
) -> List[RunReport]:
    """Validate a decoded payload document against the serving store.

    Args:
        payload: Output of :func:`decode_body`.
        subject: Subject name the server is collecting for.
        table_sha: The store's predicate-table signature.
        n_sites: Site count of that table.
        n_predicates: Predicate count of that table.
        bug_ids: The subject's known ground-truth bug identifiers.

    Returns:
        The decoded reports, in payload order.

    Raises:
        ProtocolError: with reason ``bad-schema`` / ``wrong-subject`` /
            ``table-mismatch`` / ``bad-report``.
    """
    schema = payload.get("schema")
    if schema != REPORT_SCHEMA:
        raise ProtocolError("bad-schema", f"schema {schema!r}, expected {REPORT_SCHEMA!r}")
    got_subject = payload.get("subject")
    if got_subject != subject:
        raise ProtocolError(
            "wrong-subject", f"payload is for {got_subject!r}, server collects {subject!r}"
        )
    got_sha = payload.get("table_sha")
    if got_sha != table_sha:
        raise ProtocolError(
            "table-mismatch",
            f"payload table {str(got_sha)[:12]}... does not match "
            f"store table {table_sha[:12]}...",
        )
    reports_raw = payload.get("reports")
    if not isinstance(reports_raw, list) or not reports_raw:
        raise ProtocolError("bad-schema", "reports must be a non-empty list")
    reports = [
        report_from_wire(spec, n_sites, n_predicates, bug_ids) for spec in reports_raw
    ]
    seen: Dict[int, int] = {}
    for position, report in enumerate(reports):
        if report.seed in seen:
            raise ProtocolError(
                "bad-report",
                f"seed {report.seed} appears at positions {seen[report.seed]} "
                f"and {position} of the same batch",
            )
        seen[report.seed] = position
    return reports
