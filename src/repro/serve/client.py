"""The uploader: spool reports to disk, drain them over HTTP, never lose one.

The paper's deployed clients are unreliable by assumption -- machines
crash, networks drop, servers restart -- so the client never treats the
network as durable.  Every run's report is first written to a local
**spool** (one crash-safe JSON file per seed); the drain loop uploads
spool entries in batches and deletes an entry only after the server
acknowledged its seed (accepted *or* duplicate -- the batcher's
seed-idempotency makes at-least-once delivery exact).  Transient
failures (refused connections, resets mid-body, 500s, 503 throttling,
timeouts) retry with exponential backoff and jitter; permanent
rejections (a 400 with a protocol reason) move the batch into the
spool's ``rejected/`` corner with the server's reason alongside, exactly
mirroring the server-side quarantine.

Deterministic network faults for the test suite come from the same
:mod:`repro.store.faults` DSL as the collection faults: ``net-refuse``
fires here (the connection attempt fails before any bytes are sent,
keyed by ``(batch_index, attempt)``), the other ``net-*`` kinds fire in
the server's handler.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import socket
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.runner import run_one_trial
from repro.serve.protocol import RunReport, encode_batch, report_from_wire

#: Filename pattern for spooled reports.
SPOOL_PATTERN = "report-{seed:08d}.json"

#: Subdirectory for permanently rejected reports.
REJECTED_DIR = "rejected"


class UploadError(RuntimeError):
    """The drain loop gave up (retry budget exhausted); the spool is intact."""


@dataclass
class SubmitReport:
    """What one drain session did.

    Attributes:
        accepted: Seeds the server newly accepted.
        duplicate: Seeds the server had already seen (idempotent retries).
        rejected: Seeds permanently rejected (moved to ``rejected/``).
        requests: HTTP requests attempted, including failed ones.
        retries: Re-sends after a transient failure.
    """

    accepted: List[int] = field(default_factory=list)
    duplicate: List[int] = field(default_factory=list)
    rejected: List[int] = field(default_factory=list)
    requests: int = 0
    retries: int = 0


class ReportSpool:
    """A crash-safe on-disk queue of wire reports, one file per seed.

    Writes go through a temp file + atomic rename, so a crash mid-write
    never leaves a torn spool entry under a final name.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, seed: int) -> str:
        return os.path.join(self.directory, SPOOL_PATTERN.format(seed=seed))

    def save(self, report: RunReport) -> str:
        """Persist one report; returns its spool path."""
        path = self._path(report.seed)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report.to_wire(), handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def pending_seeds(self) -> List[int]:
        """Seeds currently spooled, ascending."""
        seeds = []
        for name in os.listdir(self.directory):
            if name.startswith("report-") and name.endswith(".json"):
                try:
                    seeds.append(int(name[len("report-"):-len(".json")]))
                except ValueError:
                    continue
        return sorted(seeds)

    def load(self, seed: int) -> RunReport:
        """Read one spooled report back (validated)."""
        with open(self._path(seed), "r", encoding="utf-8") as handle:
            spec = json.load(handle)
        # Bounds here only sanity-check the spool's own bytes; the
        # server re-validates against its table.
        big = 1 << 62
        return report_from_wire(spec, big, big, spec.get("bugs", []))

    def remove(self, seed: int) -> None:
        """Forget an acknowledged report."""
        try:
            os.unlink(self._path(seed))
        except FileNotFoundError:
            pass

    def reject(self, seed: int, reason: str, detail: str) -> None:
        """Move a permanently rejected report into ``rejected/``."""
        rejected_dir = os.path.join(self.directory, REJECTED_DIR)
        os.makedirs(rejected_dir, exist_ok=True)
        name = os.path.basename(self._path(seed))
        source = self._path(seed)
        if os.path.exists(source):
            os.replace(source, os.path.join(rejected_dir, name))
        with open(
            os.path.join(rejected_dir, f"{name}.reason.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump({"reason": reason, "detail": detail}, handle, sort_keys=True)
            handle.write("\n")

    def __len__(self) -> int:
        return len(self.pending_seeds())


def run_and_spool(
    subject,
    program,
    plan,
    spool: ReportSpool,
    n_runs: int,
    seed: int = 0,
    steering_version: Optional[str] = None,
) -> int:
    """Execute seeded trials locally and spool their wire reports.

    Trials go through the exact shared
    :func:`repro.harness.runner.run_one_trial`, so a spooled report for
    seed ``s`` is byte-for-byte the record a local collection session
    would have produced for the same seed.  ``steering_version``
    stamps each report with the steering document the plan came from
    (None — the default — leaves the wire bytes identical to
    pre-steering clients).

    Returns the number of reports spooled.
    """
    entry = program.func(subject.entry)
    for i in range(n_runs):
        trial_seed = seed + i
        failed, site_obs, pred_true, stack, bugs = run_one_trial(
            subject, program, entry, plan, trial_seed
        )
        spool.save(
            RunReport(
                seed=trial_seed,
                failed=failed,
                site_obs=dict(site_obs),
                pred_true=dict(pred_true),
                stack=tuple(stack) if stack is not None else None,
                bugs=tuple(bugs),
                steering=steering_version,
            )
        )
    return n_runs


def _post(url: str, body: bytes, headers: Dict[str, str], timeout: float) -> dict:
    """One POST; returns the parsed JSON response or raises."""
    request = urllib.request.Request(url, data=body, headers=headers, method="POST")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def drain_spool(
    spool: ReportSpool,
    url: str,
    subject: str,
    table_sha: str,
    batch_size: int = 32,
    timeout: float = 10.0,
    max_attempts: int = 8,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
    jitter: float = 0.25,
    faults=None,
    rng: Optional[random.Random] = None,
    max_batches: Optional[int] = None,
) -> SubmitReport:
    """Upload every spooled report to ``url`` until the spool is empty.

    Entries leave the spool only on server acknowledgement, so killing
    this loop (or the server) at any instant loses nothing: the next
    drain re-sends whatever remains and the server deduplicates by seed.

    Args:
        spool: The local disk queue.
        url: Server base URL (e.g. ``http://127.0.0.1:8080``).
        subject: Subject name for the payload envelope.
        table_sha: Predicate-table signature for the payload envelope.
        batch_size: Reports per request.
        timeout: Per-request socket timeout in seconds.
        max_attempts: Attempts per batch before giving up.
        backoff_base: First-retry delay (doubles per retry).
        backoff_cap: Upper bound on the delay.
        jitter: Random extra fraction of the delay (decorrelates fleets).
        faults: Optional :class:`~repro.store.faults.FaultInjector`;
            ``net-refuse`` faults fire here by ``(batch_index, attempt)``.
        rng: RNG for jitter (defaults to a fresh ``random.Random()``).
        max_batches: Stop after this many batches even if the spool is
            not empty (used by kill-mid-session tests).

    Returns:
        A :class:`SubmitReport` tally.

    Raises:
        UploadError: A batch failed ``max_attempts`` times; the spool
            still holds everything unacknowledged.
    """
    from repro.store.faults import FaultInjector

    injector = faults if faults is not None else FaultInjector()
    rng = rng or random.Random()
    report = SubmitReport()
    endpoint = url.rstrip("/") + "/reports"
    batch_index = -1

    while True:
        pending = spool.pending_seeds()
        if not pending:
            break
        batch_index += 1
        if max_batches is not None and batch_index >= max_batches:
            break
        seeds = pending[:batch_size]
        batch = [spool.load(seed) for seed in seeds]
        body, headers = encode_batch(batch, subject, table_sha, compress=True)

        response = None
        for attempt in range(max_attempts):
            report.requests += 1
            if attempt:
                report.retries += 1
            try:
                if injector.fires("net-refuse", batch_index, attempt):
                    raise ConnectionRefusedError(
                        f"injected net-refuse@{batch_index}#{attempt}"
                    )
                response = _post(endpoint, body, headers, timeout)
                break
            except urllib.error.HTTPError as exc:
                if exc.code in (500, 502, 503, 504):
                    pass  # transient server-side failure: back off and retry
                else:
                    # Permanent protocol rejection: mirror the server's
                    # quarantine locally and move on to the next batch.
                    try:
                        detail = json.loads(exc.read().decode("utf-8"))
                    except Exception:
                        detail = {"error": f"http-{exc.code}", "detail": str(exc)}
                    for seed in seeds:
                        spool.reject(
                            seed,
                            str(detail.get("error", f"http-{exc.code}")),
                            str(detail.get("detail", "")),
                        )
                        report.rejected.append(seed)
                    response = {"accepted": [], "duplicate": []}
                    break
            except (
                urllib.error.URLError,
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ):
                pass  # transient transport failure: back off and retry
            if attempt + 1 >= max_attempts:
                raise UploadError(
                    f"batch of seeds {seeds[0]}..{seeds[-1]} failed "
                    f"{max_attempts} attempts against {endpoint}"
                )
            delay = min(backoff_cap, backoff_base * (2 ** attempt))
            time.sleep(delay * (1.0 + jitter * rng.random()))

        assert response is not None
        acked = set(response.get("accepted", [])) | set(response.get("duplicate", []))
        for seed in seeds:
            if seed in acked:
                spool.remove(seed)
        report.accepted.extend(
            seed for seed in response.get("accepted", []) if seed in set(seeds)
        )
        report.duplicate.extend(
            seed for seed in response.get("duplicate", []) if seed in set(seeds)
        )

    return report


def collect_and_submit(
    subject,
    program,
    plan,
    url: str,
    spool_dir: str,
    n_runs: int,
    seed: int = 0,
    batch_size: int = 32,
    **drain_kwargs,
) -> SubmitReport:
    """Run trials, spool them, and drain the spool to a server.

    The composition of :func:`run_and_spool` and :func:`drain_spool`
    most callers want; see those for the semantics.
    """
    spool = ReportSpool(spool_dir)
    run_and_spool(subject, program, plan, spool, n_runs, seed=seed)
    return drain_spool(
        spool,
        url,
        subject.name,
        program.table.signature(),
        batch_size=batch_size,
        **drain_kwargs,
    )


def steered_collect_and_submit(
    subject,
    program,
    url: str,
    spool_dir: str,
    n_runs: int,
    seed: int = 0,
    batch_size: int = 32,
    fallback_plan=None,
    timeout: float = 10.0,
    **drain_kwargs,
) -> SubmitReport:
    """One steered round: fetch ``/steering``, run under its rates, drain.

    When the server publishes a steering document, its per-site rate
    table becomes the trial plan and every spooled report is stamped
    with the document's version.  When the endpoint 404s (an
    old/unsteered server), ``fallback_plan`` runs instead with no stamp
    — byte-identical to the pre-steering client (old-server compat).

    Raises:
        ProtocolError: The served document targets a different
            predicate table than ``program`` was instrumented with.
    """
    from repro.serve.protocol import ProtocolError
    from repro.serve.steering import fetch_steering, plan_from_steering

    document = fetch_steering(url, timeout=timeout)
    if document is None:
        if fallback_plan is None:
            raise ValueError(
                "server does not publish steering and no fallback_plan given"
            )
        plan, version = fallback_plan, None
    else:
        table_sha = program.table.signature()
        if document.table_sha != table_sha:
            raise ProtocolError(
                "table-mismatch",
                f"steering document targets table {document.table_sha[:12]}..., "
                f"client is instrumented against {table_sha[:12]}...",
            )
        plan, version = plan_from_steering(document), document.version
    spool = ReportSpool(spool_dir)
    run_and_spool(
        subject, program, plan, spool, n_runs, seed=seed, steering_version=version
    )
    return drain_spool(
        spool,
        url,
        subject.name,
        program.table.signature(),
        batch_size=batch_size,
        timeout=timeout,
        **drain_kwargs,
    )


@dataclass
class ConvergenceReport:
    """What a ``submit --until-converged`` session did.

    Attributes:
        converged: Whether the daemon flipped its flag before the round
            budget ran out.
        rounds: Steered rounds executed.
        runs: Trials executed across all rounds.
        final_epoch: The last steering epoch observed (None when the
            server never served a document).
    """

    converged: bool
    rounds: int
    runs: int
    final_epoch: Optional[int] = None


def submit_until_converged(
    subject,
    program,
    url: str,
    spool_dir: str,
    runs_per_round: int,
    seed: int = 0,
    max_rounds: int = 50,
    batch_size: int = 32,
    fallback_plan=None,
    timeout: float = 10.0,
    **drain_kwargs,
) -> ConvergenceReport:
    """Steered rounds until the daemon reports convergence.

    Each round fetches the current steering document, runs
    ``runs_per_round`` trials under its rates (seeds stay contiguous
    across rounds), drains the spool, and re-checks the ``converged``
    flag.  Stops when the daemon converges, or after ``max_rounds``.
    """
    from repro.serve.steering import fetch_steering

    total = 0
    document = None
    for round_index in range(max_rounds):
        document = fetch_steering(url, timeout=timeout)
        if document is not None and document.converged:
            return ConvergenceReport(
                True, round_index, total, final_epoch=document.epoch
            )
        steered_collect_and_submit(
            subject,
            program,
            url,
            spool_dir,
            runs_per_round,
            seed=seed + total,
            batch_size=batch_size,
            fallback_plan=fallback_plan,
            timeout=timeout,
            **drain_kwargs,
        )
        total += runs_per_round
    document = fetch_steering(url, timeout=timeout)
    converged = document is not None and document.converged
    return ConvergenceReport(
        converged,
        max_rounds,
        total,
        final_epoch=document.epoch if document is not None else None,
    )


def fetch_scores(url: str, k: Optional[int] = None, timeout: float = 10.0) -> dict:
    """Fetch the live ``GET /scores`` document from a collection server."""
    target = url.rstrip("/") + "/scores"
    if k is not None:
        target += f"?k={k}"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def watched_from_scores(document: dict, k: int = 5) -> Dict[int, float]:
    """Turn a ``/scores`` document into an ``OnlineMonitor`` watch map.

    Returns the top-``k`` predicate indices mapped to the selected
    measure's value: the ``score`` field carries whichever measure the
    ``/scores`` query asked for, with the legacy ``importance`` field as
    the fallback for documents from pre-measure-registry servers.
    """
    return {
        int(entry["index"]): float(entry.get("score", entry.get("importance", 0.0)))
        for entry in document.get("predicates", [])[:k]
    }
