"""The collection daemon: ingestion, durability, and live scores.

Two layers, deliberately separated so the protocol logic is testable
without sockets:

* :class:`CollectionService` -- the HTTP-free core.  It validates
  payloads, acknowledges reports only after they are durable in a
  write-ahead ack log (``ingest_wal.jsonl`` in the store directory),
  batches them into contiguous seed ranges, and commits batches through
  :meth:`ShardStore.append_shard <repro.store.shards.ShardStore.append_shard>`
  -- the same crash-safe pending-file/manifest protocol the local
  collector uses, so a ``SIGKILL`` at any instant leaves the store
  recoverable *and* every acknowledged report replayable.
* :class:`FeedbackServer` -- a stdlib ``ThreadingHTTPServer`` wrapper
  exposing the service as ``POST /reports``, ``POST /flush``,
  ``GET /scores``, ``GET /steering``, ``GET /healthz`` and
  ``GET /metrics``, with
  deterministic server-side network-fault injection
  (:data:`repro.store.faults.NETWORK_FAULTS`) for the test suite.

Durability story (why acks cannot lose reports): a report is
acknowledged only after its wire record is appended and fsynced to the
WAL.  Commits remove reports from the WAL (it is compacted to the still
pending set after every batch), and a restarting service replays
WAL records whose seeds are not already inside committed manifest
ranges.  So at every instant each acknowledged report is either in a
committed shard or in the WAL -- the client may safely delete its spool
copy on ack, and a kill/restart cycle converges to the exact population
a fault-free session would have committed.

Live scores: the service maintains the store's
:class:`~repro.store.incremental.SufficientStats` incrementally (seeded
from the manifest at startup, one integer add per committed batch) and
scores them through the same
:meth:`AnalysisEngine.score_stats <repro.core.engine.AnalysisEngine.score_stats>`
path as ``repro-cbi analyze --stats-only``, so ``GET /scores`` is
bit-identical to running ``analyze`` on the store directory at the same
moment.

Steering (closed-loop adaptive collection): every ``refit_runs``
committed runs the service refits a per-site rate table and predicate
watchlist from the same live statistics and publishes them as a
versioned ``repro-steering/v1`` document behind ``GET /steering``
(:mod:`repro.serve.steering`).  The document is persisted store-locally
(``steering.json``) and each committed batch's steering provenance is
appended to ``steering_log.jsonl``; neither file is ever replicated by
federation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from repro.core.engine import AnalysisEngine
from repro.core.importance import importance_scores
from repro.core.reports import ReportBuilder
from repro.core.truth import GroundTruth
from repro.obs import span as _obs_span
from repro.obs.metrics import MetricsRegistry
from repro.core.stopping import StoppingPolicy
from repro.serve.batcher import BatcherFull, ReportBatcher
from repro.serve.protocol import (
    ProtocolError,
    RunReport,
    decode_body,
    report_from_wire,
    validate_payload,
)
from repro.serve.steering import (
    STEERING_LOG_NAME,
    SteeringDocument,
    fit_steering,
    save_steering,
)
from repro.store.faults import FaultInjector
from repro.store.incremental import SufficientStats

#: Write-ahead ack log filename, inside the store directory.
WAL_NAME = "ingest_wal.jsonl"

#: How long a ``net-slow`` fault stalls the handler (seconds).  Long
#: enough to trip a short client timeout, short enough for tests.
SLOW_SECONDS = 1.5


class CollectionService:
    """HTTP-free ingestion core over one subject's shard store.

    Args:
        store: An open :class:`~repro.store.ShardStore` whose predicate
            table is available (freshly created, or opened over at least
            one shard).
        subject: The :class:`~repro.subjects.base.Subject` being
            collected, for bug-id validation and ground-truth rebuild.
        batch_runs: Contiguous seeds per committed shard.
        max_buffered: Bound on pending (acknowledged, uncommitted)
            reports; past it, uploads get 503 until a batch commits.
        steering: Serve ``GET /steering``?  When False the endpoint
            404s and clients fall back to their local plans (the
            pre-steering behaviour, bit for bit).
        refit_runs: Refit the steering document every this many newly
            committed runs.
        watchlist_k: Watchlist length in the steering document.
        measure: Suspiciousness measure ordering the watchlist.
        stopping: Early-stopping thresholds for the ``converged`` flag.

    Thread safety: every public method takes the service lock, so the
    threaded HTTP front end can call in from concurrent handlers.
    """

    def __init__(
        self,
        store,
        subject,
        batch_runs: int = 200,
        max_buffered: int = 100_000,
        steering: bool = True,
        refit_runs: int = 100,
        watchlist_k: int = 10,
        measure: Optional[str] = None,
        stopping: Optional[StoppingPolicy] = None,
    ) -> None:
        from repro.core import measures as _measures

        self.store = store
        self.subject = subject
        self.table = store.table()
        self.lock = threading.RLock()
        self.metrics = MetricsRegistry()
        self.engine = AnalysisEngine(jobs=1)
        self.started_at = time.time()
        self._upload_counter = 0
        self.steering_enabled = steering
        self.refit_runs = refit_runs
        self.watchlist_k = watchlist_k
        self.steering_measure = measure or _measures.DEFAULT_MEASURE
        self.stopping = stopping or StoppingPolicy()
        self.steering_doc: Optional[SteeringDocument] = None
        self._refit_at_runs = -1

        store.recover()
        committed = tuple(
            (entry.seed_start, entry.seed_start + entry.n_runs)
            for entry in store.manifest.shards
            if entry.seed_start is not None
        )
        self.batcher = ReportBatcher(
            batch_runs=batch_runs, max_buffered=max_buffered, committed=committed
        )
        if store.n_shards:
            self.live_stats = store.sufficient_stats()
        else:
            self.live_stats = SufficientStats.zeros(self.table.n_predicates)
        # Per-site observation totals over the *committed* population,
        # the input to the steering refit's adaptive-rate fit.  Seeded
        # from the recovered shards before WAL replay (replay commits
        # batches, which increment these).
        self._site_totals = self._committed_site_totals()
        self._replay_wal()
        if self.steering_enabled:
            self._refit_steering()

    # ------------------------------------------------------------------
    # Write-ahead ack log
    # ------------------------------------------------------------------
    @property
    def wal_path(self) -> str:
        """Path of the ingest write-ahead log."""
        return os.path.join(self.store.directory, WAL_NAME)

    def _wal_append(self, reports: List[RunReport]) -> None:
        """Make ``reports`` durable before they are acknowledged."""
        with open(self.wal_path, "a", encoding="utf-8") as handle:
            for report in reports:
                handle.write(json.dumps(report.to_wire(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _wal_compact(self) -> None:
        """Rewrite the WAL to exactly the still-pending reports."""
        pending = self.batcher.pending_reports()
        tmp = self.wal_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for report in pending:
                handle.write(json.dumps(report.to_wire(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.wal_path)

    def _replay_wal(self) -> None:
        """Re-queue acknowledged-but-uncommitted reports after a restart.

        Tolerates a torn final line (a crash mid-append: that report was
        never acknowledged, so dropping it is correct) and skips records
        whose seeds already sit inside committed manifest ranges.
        """
        if not os.path.exists(self.wal_path):
            return
        replayed = 0
        with open(self.wal_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                spec = json.loads(line)
                report = report_from_wire(
                    spec,
                    self.table.n_sites,
                    self.table.n_predicates,
                    list(self.subject.bug_ids),
                )
            except (json.JSONDecodeError, ProtocolError) as exc:
                if index == len(lines) - 1:
                    self.store.log_event("serve-wal-torn-tail", detail=str(exc))
                    continue
                self.store.log_event(
                    "serve-wal-bad-record", line=index, detail=str(exc)
                )
                continue
            if self.batcher.offer(report) == "queued":
                replayed += 1
        if replayed:
            self.store.log_event("serve-wal-replay", reports=replayed)
            self.metrics.inc("serve.wal_replayed", replayed)
        self._wal_compact()
        self._commit_ready()

    # ------------------------------------------------------------------
    # Steering: the daemon refits rates + watchlist from committed runs
    # ------------------------------------------------------------------
    def _committed_site_totals(self):
        """Dense per-site observation totals over the committed shards."""
        import numpy as np

        totals = np.zeros(self.table.n_sites, dtype=np.int64)
        for reports, _ in self.store.iter_reports():
            totals += np.asarray(reports.site_counts.sum(axis=0)).ravel().astype(np.int64)
        return totals

    def _refit_steering(self) -> None:
        """Refit the steering document from the committed snapshot.

        Pure in the snapshot: the document is a function of the manifest
        (digested into ``manifest_sha``) plus the fit knobs, so a
        restarted daemon over the same store re-serves the same
        document (kill -9 acceptance contract).
        """
        with self.metrics.timer("serve.steering_refit"):
            document = fit_steering(
                self.store,
                self.store.manifest.subject,
                self._site_totals,
                watchlist_k=self.watchlist_k,
                measure=self.steering_measure,
                policy=self.stopping,
                stats=self.live_stats,
            )
        self.steering_doc = document
        self._refit_at_runs = self.store.n_runs
        save_steering(self.store.directory, document)
        self.metrics.inc("serve.steering_refits")
        self.metrics.gauge("serve.steering_epoch", float(document.epoch))
        self.metrics.gauge("serve.steering_converged", float(document.converged))
        self.store.log_event(
            "serve-steer",
            epoch=document.epoch,
            version=document.version,
            converged=document.converged,
            watchlist=len(document.watchlist),
        )

    def _maybe_refit_steering(self) -> None:
        if not self.steering_enabled:
            return
        if self.store.n_runs - self._refit_at_runs >= self.refit_runs:
            self._refit_steering()

    def _log_batch_steering(self, filename: str, seed_start: int, records) -> None:
        """Append one batch's steering provenance to the store-local log.

        Skipped entirely when steering is disabled: an unsteered daemon's
        store directory stays byte-for-byte the pre-steering layout.
        """
        if not self.steering_enabled:
            return
        versions = sorted({r.steering for r in records if r.steering is not None})
        path = os.path.join(self.store.directory, STEERING_LOG_NAME)
        record = {
            "filename": filename,
            "seed_start": seed_start,
            "n_runs": len(records),
            "versions": versions,
        }
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def steering_payload(self) -> Optional[dict]:
        """``GET /steering`` document, or None when steering is disabled."""
        with self.lock:
            if not self.steering_enabled:
                return None
            if self.steering_doc is None:
                self._refit_steering()
            self.metrics.inc("serve.steering_requests")
            return self.steering_doc.to_wire()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_body(
        self, body: bytes, content_encoding: Optional[str] = None
    ) -> Tuple[int, dict]:
        """Handle one ``POST /reports`` body.

        Returns:
            ``(http_status, response_document)``.  200 responses carry
            ``accepted`` and ``duplicate`` seed lists; 400 responses the
            protocol ``error`` code and ``detail`` (the payload is
            quarantined); 503 means the buffer is full -- retry later.
        """
        with self.lock:
            self.metrics.inc("serve.requests")
            self.metrics.inc("serve.bytes_received", len(body))
            with self.metrics.timer("serve.ingest"):
                with _obs_span("serve.ingest", bytes=len(body)):
                    return self._ingest_locked(body, content_encoding)

    def _ingest_locked(self, body: bytes, content_encoding: Optional[str]) -> Tuple[int, dict]:
        try:
            payload = decode_body(body, content_encoding)
            reports = validate_payload(
                payload,
                subject=self.store.manifest.subject,
                table_sha=self.store.manifest.table_sha,
                n_sites=self.table.n_sites,
                n_predicates=self.table.n_predicates,
                bug_ids=list(self.subject.bug_ids),
            )
        except ProtocolError as exc:
            self.metrics.inc("serve.reports_rejected")
            self._quarantine_upload(body, exc)
            return 400, {"error": exc.reason, "detail": exc.detail}

        accepted: List[RunReport] = []
        duplicate: List[int] = []
        try:
            for report in reports:
                if self.batcher.offer(report) == "queued":
                    accepted.append(report)
                else:
                    duplicate.append(report.seed)
        except BatcherFull as exc:
            # Roll back this request's partial acceptance: nothing was
            # WAL-logged yet, so un-queue what we just offered and let
            # the client retry the whole batch after a commit drains us.
            for report in accepted:
                self.batcher.discard(report.seed)
            self.metrics.inc("serve.requests_throttled")
            return 503, {"error": "buffer-full", "detail": str(exc)}

        if accepted:
            # Durability point: fsync the ack log *before* acknowledging,
            # so an acked report survives any kill until its shard commits.
            self._wal_append(accepted)
        self.metrics.inc("serve.reports_queued", len(accepted))
        self.metrics.inc("serve.reports_duplicate", len(duplicate))
        self.metrics.gauge("serve.queue_depth", float(self.batcher.queue_depth))
        response = {
            "accepted": [r.seed for r in accepted],
            "duplicate": duplicate,
        }
        self._commit_ready()
        return 200, response

    def _quarantine_upload(self, body: bytes, error: ProtocolError) -> None:
        """Park a rejected payload in the store's quarantine with a reason."""
        self._upload_counter += 1
        name = f"upload-{os.getpid()}-{self._upload_counter:06d}.json"
        path = os.path.join(self.store.directory, name)
        with open(path, "wb") as handle:
            handle.write(body)
        self.store.quarantine_file(name, f"upload-{error.reason}", error.detail)

    # ------------------------------------------------------------------
    # Batch commits
    # ------------------------------------------------------------------
    def _commit_ready(self) -> None:
        for seed_start, records in self.batcher.take_ready():
            self._commit_batch(seed_start, records)

    def _commit_batch(self, seed_start: int, records: List[RunReport]) -> None:
        builder = ReportBuilder(self.table)
        truth = GroundTruth(bug_ids=list(self.subject.bug_ids))
        for record in records:
            builder.add_run(
                record.failed,
                record.site_obs,
                record.pred_true,
                stack=record.stack,
                seed=record.seed,
            )
            truth.add_run(list(record.bugs))
        reports = builder.build()
        with self.metrics.timer("serve.commit_batch"):
            with _obs_span("serve.commit_batch", seed_start=seed_start, runs=len(records)):
                shard_path = self.store.append_shard(reports, truth, seed_start=seed_start)
        self.live_stats.add(SufficientStats.from_reports(reports))
        for record in records:
            for site, count in record.site_obs.items():
                self._site_totals[site] += count
        self.batcher.mark_committed(seed_start, len(records))
        self._wal_compact()
        self._log_batch_steering(os.path.basename(shard_path), seed_start, records)
        self.metrics.inc("serve.batches_committed")
        self.metrics.inc("serve.reports_committed", len(records))
        self.metrics.gauge("serve.queue_depth", float(self.batcher.queue_depth))
        self.store.log_event(
            "serve-commit",
            seed_start=seed_start,
            n_runs=reports.n_runs,
            num_failing=reports.num_failing,
        )
        self._maybe_refit_steering()

    def flush(self) -> int:
        """Commit every pending report (partial tail batches included).

        Returns the number of reports committed.
        """
        with self.lock:
            committed = 0
            for seed_start, records in self.batcher.take_all():
                self._commit_batch(seed_start, records)
                committed += len(records)
            return committed

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    def scores_payload(
        self, k: Optional[int] = None, measure: Optional[str] = None
    ) -> dict:
        """Top-``k`` predicates by a registered measure over committed runs.

        ``measure`` defaults to the paper's Importance
        (:data:`repro.core.measures.DEFAULT_MEASURE`).  Computed from the
        live statistics through the exact ``analyze --stats-only`` path
        (:meth:`AnalysisEngine.score_stats <repro.core.engine.AnalysisEngine.score_stats>`
        with the same measure + the CLI's ranking expression), so counts
        and floats agree bit for bit with the CLI run against the store
        directory at this moment.  Each predicate entry carries the
        selected measure's value as ``score``; ``importance`` stays
        populated for schema compatibility with older clients.

        Raises:
            repro.core.measures.UnknownMeasureError: For unknown names
                (the HTTP layer maps it to a 400).
        """
        from repro.core import measures as _measures

        measure_name = measure or _measures.DEFAULT_MEASURE
        _measures.get(measure_name)  # validate before taking the lock
        with self.lock:
            stats = self.live_stats
            n_runs = stats.num_failing + stats.num_successful
            document = {
                "schema": "repro-scores/v1",
                "subject": self.store.manifest.subject,
                "table_sha": self.store.manifest.table_sha,
                "n_runs": int(n_runs),
                "num_failing": int(stats.num_failing),
                "measure": measure_name,
                "predicates": [],
            }
            if n_runs == 0:
                return document
            scoring = self.engine.score_stats(stats, measure=measure_name)
            scores = scoring.scores
            values = scoring.measure_values
            imp = importance_scores(scores)
            order = sorted(
                scoring.pruning.kept_indices.tolist(),
                key=lambda i: values[i],
                reverse=True,
            )
            if k is not None:
                order = order[:k]
            document["predicates"] = [
                {
                    "index": int(i),
                    "name": self.table.predicates[i].name,
                    "score": float(values[i]),
                    "importance": float(imp.importance[i]),
                    "increase": float(scores.increase[i]),
                    "failure": float(scores.failure[i]),
                    "context": float(scores.context[i]),
                    "F": int(scores.F[i]),
                    "S": int(scores.S[i]),
                    "F_obs": int(scores.F_obs[i]),
                    "S_obs": int(scores.S_obs[i]),
                }
                for i in order
            ]
            return document

    def manifest_payload(self) -> dict:
        """``GET /manifest`` document (``repro-federate/v1``).

        The daemon's committed membership, exactly as a federation merge
        node needs it for manifest-diff sync: pending batches and WAL
        tail are *not* included -- federation replicates only what the
        commit protocol has made durable.
        """
        from repro.federate.sources import MANIFEST_SCHEMA

        with self.lock:
            self.metrics.inc("serve.manifest_requests")
            return {
                "schema": MANIFEST_SCHEMA,
                "manifest": self.store.manifest.to_json(),
            }

    def shard_file(self, filename: str):
        """The on-disk path and entry of one *committed* shard.

        Returns ``(path, entry)`` when ``filename`` is in the manifest,
        else ``None``.  Lookup goes through the manifest rather than the
        filesystem, so the endpoint can never serve pending files,
        quarantined shards or anything outside the store (path
        traversal resolves to no manifest entry).
        """
        with self.lock:
            entry = self.store.manifest.find(filename)
            if entry is None:
                return None
            return os.path.join(self.store.directory, filename), entry

    def health_payload(self) -> dict:
        """``GET /healthz`` document."""
        with self.lock:
            document = {
                "status": "ok",
                "subject": self.store.manifest.subject,
                "n_shards": self.store.n_shards,
                "n_runs": self.store.n_runs,
                "queue_depth": self.batcher.queue_depth,
                "uptime_seconds": time.time() - self.started_at,
                "steering": self.steering_enabled,
            }
            if self.steering_enabled and self.steering_doc is not None:
                document["steering_epoch"] = self.steering_doc.epoch
                document["steering_version"] = self.steering_doc.version
                document["converged"] = self.steering_doc.converged
            return document

    def metrics_payload(self) -> dict:
        """``GET /metrics`` document (``repro-metrics/v1``)."""
        with self.lock:
            self.metrics.gauge("serve.queue_depth", float(self.batcher.queue_depth))
            return self.metrics.to_document()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> int:
        """Finish the session; with ``drain`` commit everything pending.

        Returns the number of reports committed by the final drain.
        """
        with self.lock:
            committed = self.flush() if drain else 0
            self.store.log_event(
                "serve-close",
                drained=committed,
                pending=self.batcher.queue_depth,
                n_runs=self.store.n_runs,
            )
            return committed


class _IngestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the :class:`CollectionService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging goes through the store's event log instead

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        service: CollectionService = self.server.service  # type: ignore[attr-defined]
        if self.path == "/flush":
            committed = service.flush()
            self._send_json(200, {"committed": committed})
            return
        if self.path != "/reports":
            self._send_json(404, {"error": "not-found", "detail": self.path})
            return

        ordinal = self.server.next_post_ordinal()  # type: ignore[attr-defined]
        injector: FaultInjector = self.server.injector  # type: ignore[attr-defined]
        if injector.fires("net-slow", ordinal, 0):
            time.sleep(SLOW_SECONDS)
        if injector.fires("net-disconnect", ordinal, 0):
            # Abruptly drop the TCP connection before reading the body:
            # the client sees a reset mid-request and must retry.
            self.close_connection = True
            self.connection.close()
            return

        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length) if length else b""

        if injector.fires("net-500", ordinal, 0):
            self._send_json(500, {"error": "injected", "detail": f"net-500@{ordinal}"})
            return

        status, document = service.ingest_body(
            body, self.headers.get("Content-Encoding")
        )
        self._send_json(status, document)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        service: CollectionService = self.server.service  # type: ignore[attr-defined]
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send_json(200, service.health_payload())
            return
        if path == "/metrics":
            self._send_json(200, service.metrics_payload())
            return
        if path == "/scores":
            from repro.core.measures import UnknownMeasureError

            k: Optional[int] = None
            measure: Optional[str] = None
            for part in query.split("&"):
                if part.startswith("k="):
                    try:
                        k = int(part[2:])
                    except ValueError:
                        self._send_json(400, {"error": "bad-query", "detail": part})
                        return
                elif part.startswith("measure="):
                    measure = part[len("measure="):]
            try:
                self._send_json(200, service.scores_payload(k=k, measure=measure))
            except UnknownMeasureError as exc:
                self._send_json(400, {"error": "unknown-measure", "detail": str(exc)})
            return
        if path == "/steering":
            document = service.steering_payload()
            if document is None:
                self._send_json(
                    404, {"error": "not-found", "detail": "steering disabled"}
                )
            else:
                self._send_json(200, document)
            return
        if path == "/manifest":
            self._send_json(200, service.manifest_payload())
            return
        if path.startswith("/shards/"):
            self._send_shard(service, path[len("/shards/"):])
            return
        self._send_json(404, {"error": "not-found", "detail": path})

    def _send_shard(self, service: CollectionService, filename: str) -> None:
        """Stream one committed shard's bytes (``GET /shards/<name>``)."""
        located = service.shard_file(filename)
        if located is None:
            self._send_json(
                404, {"error": "not-found", "detail": f"no committed shard {filename}"}
            )
            return
        path, entry = located
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            self._send_json(
                410, {"error": "unreadable", "detail": f"{filename}: {exc}"}
            )
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        if entry.sha256 is not None:
            self.send_header("X-Repro-Sha256", entry.sha256)
        self.end_headers()
        self.wfile.write(data)
        service.metrics.inc("serve.shards_served")
        service.metrics.inc("serve.shard_bytes_served", len(data))


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class FeedbackServer:
    """The networked front end: a threaded HTTP server over one service.

    Args:
        service: The :class:`CollectionService` to expose.
        host: Bind address.
        port: Bind port; 0 picks a free one (see :attr:`port`).
        faults: Optional :class:`~repro.store.faults.FaultInjector`
            carrying ``net-*`` faults, fired by POST ordinal.
    """

    def __init__(
        self,
        service: CollectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.service = service
        self._http = _ThreadingServer((host, port), _IngestHandler)
        self._http.service = service  # type: ignore[attr-defined]
        self._http.injector = faults or FaultInjector()  # type: ignore[attr-defined]
        self._ordinal = -1
        self._ordinal_lock = threading.Lock()

        def next_post_ordinal() -> int:
            with self._ordinal_lock:
                self._ordinal += 1
                return self._ordinal

        self._http.next_post_ordinal = next_post_ordinal  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "FeedbackServer":
        """Serve in a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        self.service.store.log_event(
            "serve-start", host=self.host, port=self.port
        )
        return self

    def close(self, drain: bool = True) -> int:
        """Graceful shutdown: stop accepting, then drain and commit.

        Returns the number of reports the final drain committed.
        """
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        return self.service.close(drain=drain)
