"""Cooperative feedback ingestion service.

The paper's deployment model (Section 2) is a fleet of instrumented
programs each uploading one small feedback report to a central server
that aggregates them into the Section 3 statistics.  This package is
that network boundary, built entirely on the standard library:

* :mod:`repro.serve.protocol` -- the ``repro-report/v1`` wire format:
  schema-versioned, gzip-compressible JSON batches validated against the
  subject's predicate table.
* :mod:`repro.serve.batcher` -- a bounded in-memory buffer that groups
  acknowledged uploads into contiguous seed ranges sized for shard
  commits, with seed-based idempotency.
* :mod:`repro.serve.server` -- the collection daemon
  (:class:`~repro.serve.server.FeedbackServer`): ``POST /reports``
  ingestion with a write-ahead ack log, commits through the crash-safe
  :class:`~repro.store.ShardStore` protocol, live streaming
  ``GET /scores``, plus ``/healthz`` and ``/metrics``.
* :mod:`repro.serve.client` -- the uploader: a crash-safe disk spool
  drained with retry + exponential backoff + jitter, so injected or real
  network faults never lose a report.
* :mod:`repro.serve.steering` -- closed-loop adaptive collection: the
  daemon's periodically refit ``repro-steering/v1`` rate-table +
  watchlist document behind ``GET /steering``, applied by steered
  clients and stamped into their reports for end-to-end provenance.

The acceptance bar for the whole stack is *bit-identity*: a population
collected client -> server -> store analyses identically to the same
seed range collected locally by
:func:`repro.harness.parallel.run_trials_sharded`.
"""

from repro.serve.batcher import BatcherFull, ReportBatcher
from repro.serve.client import (
    ConvergenceReport,
    ReportSpool,
    SubmitReport,
    UploadError,
    collect_and_submit,
    drain_spool,
    fetch_scores,
    run_and_spool,
    steered_collect_and_submit,
    submit_until_converged,
    watched_from_scores,
)
from repro.serve.protocol import (
    REPORT_SCHEMA,
    ProtocolError,
    RunReport,
    decode_body,
    encode_batch,
    validate_payload,
)
from repro.serve.server import CollectionService, FeedbackServer
from repro.serve.steering import (
    STEERING_SCHEMA,
    STORE_LOCAL_FILES,
    SteeringDocument,
    fetch_steering,
    fit_steering,
    load_steering,
    manifest_digest,
    plan_from_steering,
    steering_from_wire,
)

__all__ = [
    "REPORT_SCHEMA",
    "ProtocolError",
    "RunReport",
    "decode_body",
    "encode_batch",
    "validate_payload",
    "ReportBatcher",
    "BatcherFull",
    "CollectionService",
    "FeedbackServer",
    "ReportSpool",
    "SubmitReport",
    "UploadError",
    "ConvergenceReport",
    "run_and_spool",
    "drain_spool",
    "collect_and_submit",
    "steered_collect_and_submit",
    "submit_until_converged",
    "fetch_scores",
    "watched_from_scores",
    "STEERING_SCHEMA",
    "STORE_LOCAL_FILES",
    "SteeringDocument",
    "fetch_steering",
    "fit_steering",
    "load_steering",
    "manifest_digest",
    "plan_from_steering",
    "steering_from_wire",
]
