"""The ``repro-steering/v1`` document: how the daemon steers clients.

The paper's Section 4 trains nonuniform per-site sampling rates
*offline* on 1,000 fully-sampled runs.  The serving daemon closes that
loop live: every ``refit_runs`` committed runs it refits

* a per-site rate table via :func:`repro.instrument.sampling.adaptive_rates`
  over the committed mean reach counts, and
* a top-k predicate **watchlist** from the live incremental statistics,

and publishes both as a versioned steering document behind
``GET /steering``.  Clients fetch the document between trials, apply the
rates through the ordinary :class:`~repro.instrument.sampling.SamplingPlan`
machinery, and stamp :func:`steering_version` into every report they
submit so provenance stays auditable end to end.

Determinism contract: the document is a pure function of the committed
store snapshot.  ``manifest_sha`` digests the canonical manifest JSON
and ``epoch`` is the committed run count at fit time, so two daemons
serving byte-identical stores publish byte-identical documents (pinned
by the Hypothesis suite).

Steering artifacts are **store-local**: they describe one daemon's live
fit over its own committed population and must never ride along when
stores federate.  :data:`STORE_LOCAL_FILES` names them and
``repro.federate.merge.plan_sync`` refuses any source that offers one.
"""

from __future__ import annotations

import hashlib
import json
import os
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.stopping import StoppingAssessment, StoppingCandidate, StoppingPolicy
from repro.instrument.sampling import (
    DEFAULT_TARGET_SAMPLES,
    MIN_ADAPTIVE_RATE,
    SamplingPlan,
)
from repro.serve.protocol import ProtocolError

#: Wire schema identifier for steering documents.
STEERING_SCHEMA = "repro-steering/v1"

#: Filename of the persisted current document inside a store directory.
STEERING_NAME = "steering.json"

#: Filename of the per-batch steering provenance log inside a store
#: directory (one JSON line per committed batch).
STEERING_LOG_NAME = "steering_log.jsonl"

#: Store-directory files that are local to one daemon and must never be
#: replicated between stores (the ingest WAL is likewise private).
STORE_LOCAL_FILES = frozenset({STEERING_NAME, STEERING_LOG_NAME, "ingest_wal.jsonl"})


def manifest_digest(manifest) -> str:
    """SHA-256 over the canonical JSON form of a shard manifest.

    Canonical means ``sort_keys`` plus compact separators, so the digest
    is independent of on-disk whitespace and key order.
    """
    payload = json.dumps(manifest.to_json(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WatchEntry:
    """One watchlist predicate: where to look, and how hard."""

    index: int
    name: str
    score: float

    def to_json(self) -> dict:
        return {"index": int(self.index), "name": self.name, "score": float(self.score)}

    @classmethod
    def from_json(cls, spec: dict) -> "WatchEntry":
        return cls(index=int(spec["index"]), name=str(spec["name"]), score=float(spec["score"]))


@dataclass(frozen=True)
class SteeringDocument:
    """A versioned fit of rates + watchlist over one store snapshot.

    Attributes:
        subject: Subject name the fit covers.
        table_sha: Site-table digest (clients refuse mismatches).
        epoch: Committed run count at fit time.
        manifest_sha: Digest of the committed manifest the fit saw.
        n_runs / num_failing: Population totals behind the fit.
        rates: Per-site sampling rates, dense, index-aligned with the
            site table.  Every value is in
            ``[MIN_ADAPTIVE_RATE, 1.0]`` by construction.
        target_samples / min_rate: The `adaptive_rates` knobs used.
        watchlist: Top-k predicates by ``measure``, highest first.
        measure: Registry key of the suspiciousness measure used for the
            watchlist ordering.
        converged: CI-based stopping verdict for this snapshot.
        stopping: Full :class:`StoppingAssessment` JSON detail.
        policy: The :class:`StoppingPolicy` the verdict used.
    """

    subject: str
    table_sha: str
    epoch: int
    manifest_sha: str
    n_runs: int
    num_failing: int
    rates: List[float]
    target_samples: float = DEFAULT_TARGET_SAMPLES
    min_rate: float = MIN_ADAPTIVE_RATE
    watchlist: List[WatchEntry] = field(default_factory=list)
    measure: str = "importance"
    converged: bool = False
    stopping: dict = field(default_factory=dict)
    policy: Optional[StoppingPolicy] = None

    @property
    def version(self) -> str:
        return steering_version_fields(self.manifest_sha, self.epoch)

    def to_wire(self) -> dict:
        doc = {
            "schema": STEERING_SCHEMA,
            "subject": self.subject,
            "table_sha": self.table_sha,
            "epoch": int(self.epoch),
            "manifest_sha": self.manifest_sha,
            "n_runs": int(self.n_runs),
            "num_failing": int(self.num_failing),
            "rates": [float(r) for r in self.rates],
            "target_samples": float(self.target_samples),
            "min_rate": float(self.min_rate),
            "watchlist": [w.to_json() for w in self.watchlist],
            "measure": self.measure,
            "converged": bool(self.converged),
            "stopping": self.stopping,
            "version": self.version,
        }
        if self.policy is not None:
            doc["policy"] = self.policy.to_json()
        return doc


def steering_version_fields(manifest_sha: str, epoch: int) -> str:
    """The compact version string stamped into report batches."""
    return f"{manifest_sha[:12]}/{int(epoch)}"


def _reject(reason: str, detail: str) -> ProtocolError:
    return ProtocolError(reason, detail)


def steering_from_wire(spec: dict) -> SteeringDocument:
    """Validate and decode a wire-form steering document.

    Raises:
        ProtocolError: On any structural or type violation.  Unknown
            keys are ignored for forward compatibility.
    """
    if not isinstance(spec, dict):
        raise _reject("bad-steering", "document must be an object")
    if spec.get("schema") != STEERING_SCHEMA:
        raise _reject("bad-schema", f"expected {STEERING_SCHEMA}, got {spec.get('schema')!r}")
    for key in ("subject", "table_sha", "manifest_sha", "measure"):
        if not isinstance(spec.get(key), str) or not spec[key]:
            raise _reject("bad-steering", f"{key} must be a non-empty string")
    for key in ("epoch", "n_runs", "num_failing"):
        value = spec.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise _reject("bad-steering", f"{key} must be a non-negative integer")
    rates = spec.get("rates")
    if not isinstance(rates, list) or not rates:
        raise _reject("bad-steering", "rates must be a non-empty list")
    for rate in rates:
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise _reject("bad-steering", "rates must be numbers")
        if not 0.0 < float(rate) <= 1.0:
            raise _reject("bad-steering", f"rate {rate!r} outside (0, 1]")
    for key in ("target_samples", "min_rate"):
        value = spec.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
            raise _reject("bad-steering", f"{key} must be a positive number")
    watchlist_spec = spec.get("watchlist")
    if not isinstance(watchlist_spec, list):
        raise _reject("bad-steering", "watchlist must be a list")
    try:
        watchlist = [WatchEntry.from_json(entry) for entry in watchlist_spec]
    except (KeyError, TypeError, ValueError) as exc:
        raise _reject("bad-steering", f"bad watchlist entry: {exc}") from None
    converged = spec.get("converged")
    if not isinstance(converged, bool):
        raise _reject("bad-steering", "converged must be a boolean")
    stopping = spec.get("stopping")
    if not isinstance(stopping, dict):
        raise _reject("bad-steering", "stopping must be an object")
    policy = None
    if "policy" in spec:
        try:
            policy = StoppingPolicy.from_json(spec["policy"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _reject("bad-steering", f"bad policy: {exc}") from None
    return SteeringDocument(
        subject=spec["subject"],
        table_sha=spec["table_sha"],
        epoch=spec["epoch"],
        manifest_sha=spec["manifest_sha"],
        n_runs=spec["n_runs"],
        num_failing=spec["num_failing"],
        rates=[float(r) for r in rates],
        target_samples=float(spec["target_samples"]),
        min_rate=float(spec["min_rate"]),
        watchlist=watchlist,
        measure=spec["measure"],
        converged=converged,
        stopping=stopping,
        policy=policy,
    )


def plan_from_steering(document: SteeringDocument) -> SamplingPlan:
    """Turn a steering document's rate table into a per-site plan.

    The result feeds the ordinary trial machinery unchanged, which is
    what makes steered collection with a pinned table bit-identical to
    local ``sampling="adaptive"`` collection over the same seeds.
    """
    return SamplingPlan.from_steering(document)


def fit_steering(
    store,
    subject_name: str,
    site_totals,
    *,
    watchlist_k: int = 10,
    measure: str = "importance",
    policy: StoppingPolicy = StoppingPolicy(),
    target_samples: float = DEFAULT_TARGET_SAMPLES,
    min_rate: float = MIN_ADAPTIVE_RATE,
    stats=None,
) -> SteeringDocument:
    """Fit a steering document from one committed store snapshot.

    Args:
        store: An open :class:`~repro.store.shards.ShardStore`.
        subject_name: Subject the store collects for.
        site_totals: Dense per-site observation-count totals over the
            committed runs (``sum`` of each run's reach counts).
        watchlist_k: Watchlist length.
        measure: Suspiciousness measure for watchlist ordering.
        policy: Early-stopping thresholds.
        target_samples / min_rate: ``adaptive_rates`` knobs.
        stats: Optional pre-computed SufficientStats for the committed
            population (recomputed from the store when omitted).

    Returns:
        A :class:`SteeringDocument` — a pure function of the snapshot.
    """
    import numpy as np

    from repro.core import measures as _measures
    from repro.core.stopping import assess_stats
    from repro.instrument.sampling import adaptive_rates

    _measures.get(measure)  # validate the name up front
    if stats is None:
        stats = store.sufficient_stats()
    n_runs = int(store.n_runs)
    # ravel: accepts np.matrix rows from sparse ``site_counts.sum(axis=0)``
    totals = np.asarray(site_totals, dtype=np.float64).ravel()
    if n_runs > 0:
        means = totals / float(n_runs)
    else:
        means = np.zeros_like(totals)
    rates = adaptive_rates(means, target_samples=target_samples, min_rate=min_rate)

    watchlist: List[WatchEntry] = []
    assessment: StoppingAssessment = StoppingAssessment(
        False, n_runs, int(stats.num_failing), reason="no committed runs"
    )
    if n_runs > 0:
        scores = stats.to_scores(confidence=policy.confidence)
        values = _measures.measure_values(scores, measure)
        indices = np.flatnonzero(np.isfinite(values) & (values > 0))
        order = indices[np.lexsort((indices, -values[indices]))][:watchlist_k]
        table = store.table()
        watchlist = [
            WatchEntry(
                index=int(i),
                name=table.predicates[int(i)].name,
                score=float(values[i]),
            )
            for i in order
        ]
        assessment = assess_stats(stats, policy)

    return SteeringDocument(
        subject=subject_name,
        table_sha=store.manifest.table_sha,
        epoch=n_runs,
        manifest_sha=manifest_digest(store.manifest),
        n_runs=n_runs,
        num_failing=int(stats.num_failing),
        rates=[float(r) for r in rates],
        target_samples=float(target_samples),
        min_rate=float(min_rate),
        watchlist=watchlist,
        measure=measure,
        converged=assessment.converged,
        stopping=assessment.to_json(),
        policy=policy,
    )


def save_steering(directory: str, document: SteeringDocument) -> str:
    """Atomically persist ``document`` as ``steering.json`` in a store dir."""
    path = os.path.join(directory, STEERING_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document.to_wire(), handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_steering(directory: str) -> Optional[SteeringDocument]:
    """Load the persisted steering document, or None when absent/invalid."""
    path = os.path.join(directory, STEERING_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            spec = json.load(handle)
    except (OSError, ValueError):
        return None
    try:
        return steering_from_wire(spec)
    except ProtocolError:
        return None


def fetch_steering(url: str, timeout: float = 10.0) -> Optional[SteeringDocument]:
    """GET ``/steering`` from a daemon; None when the endpoint is absent.

    A 404 means the server predates steering or runs with it disabled —
    callers fall back to their local plan, keeping old-server compat.

    Raises:
        ProtocolError: When the server answers with an invalid document.
    """
    request = urllib.request.Request(url.rstrip("/") + "/steering", method="GET")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            return None
        raise
    return steering_from_wire(json.loads(body.decode("utf-8")))


__all__ = [
    "STEERING_SCHEMA",
    "STEERING_NAME",
    "STEERING_LOG_NAME",
    "STORE_LOCAL_FILES",
    "SteeringDocument",
    "WatchEntry",
    "StoppingCandidate",
    "manifest_digest",
    "steering_version_fields",
    "steering_from_wire",
    "plan_from_steering",
    "fit_steering",
    "save_steering",
    "load_steering",
    "fetch_steering",
]
