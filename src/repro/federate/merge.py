"""Pull-based store-to-store replication and merge of committed shards.

The paper's deployment is a *fleet*: many independent ingestion points,
one analysis.  This module turns N daemon-owned stores into one merged
store without a coordinator, exploiting the property that makes the
whole reproduction incremental -- all scores are functions of integer
sufficient statistics that add exactly across disjoint seed ranges.
Replicating committed shard *bytes* (not reports, not counts) therefore
preserves every downstream result bit for bit: shard SHAs, streamed
statistics, scores, rankings.  The same property holds for every
registered suspiciousness measure (:mod:`repro.core.measures`):
``AnalysisEngine.federated_scores(stores, measure=...)`` scores the
un-materialised union of N stores bit-identically to scoring the merged
store this module produces, under any measure.

Protocol (manifest-diff sync):

1. read every source's manifest and the destination's;
2. :func:`plan_sync` diffs them into a deterministic pull plan --
   entries already committed in the destination are noted as present,
   byte-identical copies held by several sources collapse to one pull
   (dedup rule: candidates order by source label, smallest first), and
   *divergent* claims on overlapping seed ranges raise
   :class:`~repro.federate.errors.FederationError` (the
   seed-disjointness invariant: merging them would double-count runs);
3. pulls run in seed order; each fetched shard is verified end to end
   (SHA-256 against the source entry, archive parse, predicate-table
   signature, run counts) before the destination commits it through the
   store's crash-safe pending-file protocol
   (:meth:`~repro.store.shards.ShardStore.ingest_shard_bytes`);
4. a shard that keeps failing verification rotates through its
   byte-identical candidates and, if every attempt fails, is *skipped*
   with an audited reason (a quarantine record in the destination plus
   a ``federate-skip`` log event) -- damaged source data degrades the
   merge, never corrupts it;
5. :func:`cross_audit` closes the loop: a full destination audit plus a
   per-source replication check (every healthy source shard present in
   the destination with the same digest).

Determinism: the plan depends only on the *set* of (manifest, label)
pairs -- not the order sources were given -- and commits happen in seed
order, so federating the same fleet in any order, any grouping, or any
number of passes produces byte-identical manifests and shard files.
``tests/federate/`` proves order-insensitivity, idempotence and
associativity as Hypothesis properties, and bit-equality against a
single-daemon collection at fleet scale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.io import ArchiveError, load_shard_stats
from repro.federate.errors import FederationError, FederationFetchError
from repro.federate.sources import StoreSource
from repro.obs import (
    enabled as _obs_enabled,
    inc as _obs_inc,
    span as _obs_span,
    timer as _obs_timer,
)
from repro.store.faults import FaultInjector
from repro.store.manifest import ShardEntry, ShardManifest
from repro.store.shards import AuditReport, QuarantineRecord, ShardStore


@dataclass
class PullItem:
    """One shard the destination is missing.

    Attributes:
        entry: The canonical membership entry (from the smallest-label
            holder; byte-identical across all candidates).
        sources: Every source holding this exact shard, ordered by
            label -- the pull rotates through them on retry, so one
            damaged copy does not lose the seed range.
    """

    entry: ShardEntry
    sources: List[StoreSource]


@dataclass
class SyncPlan:
    """The manifest diff: what to pull, what collapsed, what's there.

    Attributes:
        pulls: Missing shards in seed order.
        duplicates: ``(filename, source label)`` pairs deduped because a
            byte-identical copy is already planned or committed.
        present: Filenames already committed in the destination.
    """

    pulls: List[PullItem] = field(default_factory=list)
    duplicates: List[Tuple[str, str]] = field(default_factory=list)
    present: List[str] = field(default_factory=list)


@dataclass
class FederationReport:
    """Outcome of one :func:`federate_stores` pass.

    Attributes:
        pulled: Filenames committed into the destination, in commit
            (seed) order.
        deduped: ``(filename, source label)`` pairs collapsed by the
            dedup rule.
        present: Filenames that were already committed.
        skipped: Seed ranges lost to unrecoverable source damage, with
            audited reasons (also recorded in the destination's
            quarantine and collection log).
        runs_merged: Runs the pulled shards added.
        bytes_pulled: Total shard bytes fetched and committed.
        retries: Fetch attempts beyond each shard's first.
    """

    pulled: List[str] = field(default_factory=list)
    deduped: List[Tuple[str, str]] = field(default_factory=list)
    present: List[str] = field(default_factory=list)
    skipped: List[QuarantineRecord] = field(default_factory=list)
    runs_merged: int = 0
    bytes_pulled: int = 0
    retries: int = 0

    @property
    def clean(self) -> bool:
        """True when no seed range was skipped."""
        return not self.skipped


@dataclass
class SourceAudit:
    """One source's replication status against the destination.

    Attributes:
        label: The source's identity.
        replicated: Source shards present in the destination with the
            same digest.
        missing: Source shards absent from the destination (skipped
            during federation, or never federated).
        diverged: Seed ranges where source and destination hold
            different bytes -- never produced by a clean federation.
    """

    label: str
    replicated: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    diverged: List[str] = field(default_factory=list)


@dataclass
class FederationAudit:
    """Outcome of one :func:`cross_audit` pass."""

    dest: AuditReport
    sources: List[SourceAudit] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Destination audit clean and every source fully replicated."""
        return self.dest.clean and not any(
            s.missing or s.diverged for s in self.sources
        )


def _require_compatible(
    dest_manifest: ShardManifest, label: str, manifest: ShardManifest
) -> None:
    for attr, what in (
        ("subject", "subject"),
        ("table_sha", "predicate table"),
        ("config_sha", "instrumentation config"),
    ):
        ours, theirs = getattr(dest_manifest, attr), getattr(manifest, attr)
        if ours != theirs:
            raise FederationError(
                f"source {label} was collected with a different {what} "
                f"({theirs!r} vs {ours!r}); merging would mis-attribute counters"
            )


def plan_sync(
    dest_manifest: ShardManifest,
    sources: Sequence[Tuple[StoreSource, ShardManifest]],
) -> SyncPlan:
    """Diff source manifests against the destination into a pull plan.

    Deterministic in the *set* of sources: candidates are considered in
    label order, so permuting the input changes nothing.  Enforces the
    seed-disjointness invariant -- every entry must be seeded, and two
    entries may share a seed range only when they are byte-identical
    (same range *and* same SHA-256), in which case the extra copies
    dedup to fallback candidates.  Anything else (partial overlap, same
    range with different or unknown digests) raises
    :class:`FederationError`: no dedup rule can merge diverging claims
    on the same seeds without double-counting or guessing.
    """
    plan = SyncPlan()
    chosen: Dict[Tuple[int, int], PullItem] = {}
    counted_present: set = set()

    # Steering artifacts (and the ingest WAL) are local to one daemon's
    # live session: they describe *that* store's fit over *its* committed
    # population and must never be replicated.  A manifest offering one
    # is structurally broken — refuse rather than silently skip.
    from repro.serve.steering import STORE_LOCAL_FILES

    for source, manifest in sorted(sources, key=lambda pair: pair[0].label):
        _require_compatible(dest_manifest, source.label, manifest)
        for entry in manifest.shards:
            if os.path.basename(entry.filename) in STORE_LOCAL_FILES:
                raise FederationError(
                    f"source {source.label} manifest lists store-local file "
                    f"{entry.filename}; steering documents and ingest WALs "
                    "are never replicated between stores"
                )
            if entry.seed_start is None:
                raise FederationError(
                    f"source {source.label} shard {entry.filename} has no "
                    "seed provenance; federation cannot prove disjointness "
                    "for unseeded shards"
                )
            key = (entry.seed_start, entry.n_runs)

            # Against the destination's committed membership.
            dest_same = next(
                (
                    e
                    for e in dest_manifest.shards
                    if (e.seed_start, e.n_runs) == key
                ),
                None,
            )
            if dest_same is not None:
                if (
                    entry.sha256 is not None
                    and dest_same.sha256 is not None
                    and entry.sha256 == dest_same.sha256
                ):
                    if dest_same.filename not in counted_present:
                        counted_present.add(dest_same.filename)
                        plan.present.append(dest_same.filename)
                    else:
                        plan.duplicates.append((entry.filename, source.label))
                    continue
                raise FederationError(
                    f"source {source.label} shard {entry.filename} claims seeds "
                    f"[{entry.seed_start}, {entry.seed_start + entry.n_runs}) "
                    f"already committed as {dest_same.filename} with different "
                    "content; refusing to merge diverging claims on one seed range"
                )
            dest_clash = dest_manifest.overlapping(entry)
            if dest_clash is not None:
                raise FederationError(
                    f"source {source.label} shard {entry.filename} "
                    f"[{entry.seed_start}, {entry.seed_start + entry.n_runs}) "
                    f"overlaps committed shard {dest_clash.filename} "
                    f"[{dest_clash.seed_start}, "
                    f"{dest_clash.seed_start + dest_clash.n_runs}); merging "
                    "would double-count runs"
                )

            # Against what earlier (smaller-label) sources contributed.
            if key in chosen:
                item = chosen[key]
                if (
                    entry.sha256 is not None
                    and item.entry.sha256 is not None
                    and entry.sha256 == item.entry.sha256
                ):
                    item.sources.append(source)
                    plan.duplicates.append((entry.filename, source.label))
                    continue
                raise FederationError(
                    f"sources {item.sources[0].label} and {source.label} both "
                    f"claim seeds [{entry.seed_start}, "
                    f"{entry.seed_start + entry.n_runs}) with different content "
                    f"({item.entry.filename}); refusing to pick one"
                )
            clash_item = next(
                (i for i in chosen.values() if i.entry.overlaps(entry)), None
            )
            if clash_item is not None:
                raise FederationError(
                    f"source {source.label} shard {entry.filename} "
                    f"[{entry.seed_start}, {entry.seed_start + entry.n_runs}) "
                    f"overlaps {clash_item.entry.filename} "
                    f"[{clash_item.entry.seed_start}, "
                    f"{clash_item.entry.seed_start + clash_item.entry.n_runs}) "
                    f"from source {clash_item.sources[0].label}; merging would "
                    "double-count runs"
                )
            chosen[key] = PullItem(entry=entry, sources=[source])

    plan.pulls = sorted(
        chosen.values(), key=lambda item: (item.entry.seed_start, item.entry.filename)
    )
    return plan


def _flip_middle(data: bytes, n_bytes: int = 32) -> bytes:
    """Invert bytes in the middle of a payload (fed-corrupt-fetch)."""
    offset = max(0, len(data) // 2 - n_bytes // 2)
    block = data[offset : offset + n_bytes]
    return data[:offset] + bytes(b ^ 0xFF for b in block) + data[offset + len(block):]


def _verify_bytes(
    dest: ShardStore, entry: ShardEntry, data: bytes
) -> Optional[Tuple[str, str]]:
    """Full end-to-end check of fetched shard bytes.

    Returns ``None`` when the bytes are exactly the shard the source
    manifest committed, else ``(reason, detail)`` in the audit
    vocabulary.
    """
    actual = hashlib.sha256(data).hexdigest()
    if entry.sha256 is not None and actual != entry.sha256:
        return (
            "checksum-mismatch",
            f"fetched bytes hash to {actual[:12]}..., source entry says "
            f"{entry.sha256[:12]}...",
        )
    fd, tmp = tempfile.mkstemp(prefix=".fetch-", dir=dest.directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        try:
            _, _, _, _, num_failing, num_successful, table_sha = load_shard_stats(tmp)
        except ArchiveError as exc:
            return ("unreadable", str(exc))
        if table_sha is not None and table_sha != dest.manifest.table_sha:
            return (
                "table-mismatch",
                f"shard carries table signature {table_sha[:12]}..., "
                f"destination expects {dest.manifest.table_sha[:12]}...",
            )
        if num_failing + num_successful != entry.n_runs:
            return (
                "count-mismatch",
                f"archive holds {num_failing + num_successful} runs, "
                f"source entry says {entry.n_runs}",
            )
    finally:
        os.unlink(tmp)
    return None


def federate_stores(
    sources: Sequence[StoreSource],
    dest: ShardStore,
    faults: Optional[FaultInjector] = None,
    max_attempts: int = 3,
    backoff_base: float = 0.05,
    backoff_cap: float = 0.5,
    sleep=time.sleep,
) -> FederationReport:
    """Replicate every committed source shard into ``dest``.

    See the module docstring for the protocol.  Transient pull failures
    (and the ``fed-*`` injectable faults) retry up to ``max_attempts``
    times per shard with exponential backoff, rotating through
    byte-identical candidate sources; a shard failing every attempt is
    skipped with an audited reason rather than aborting the merge.

    Raises:
        FederationError: Structural incompatibility -- see
            :func:`plan_sync`.
    """
    injector = faults or FaultInjector()
    plan = plan_sync(dest.manifest, [(src, src.manifest()) for src in sources])
    report = FederationReport(
        deduped=list(plan.duplicates), present=list(plan.present)
    )

    with _obs_span(
        "federate.sync",
        sources=len(sources),
        pulls=len(plan.pulls),
        dest=dest.directory,
    ):
        for ordinal, item in enumerate(plan.pulls):
            entry = item.entry
            outcome: Optional[Tuple[str, str]] = None
            delivered: Optional[StoreSource] = None
            data = b""
            for attempt in range(max_attempts):
                if attempt:
                    report.retries += 1
                    sleep(min(backoff_cap, backoff_base * (2 ** (attempt - 1))))
                source = item.sources[attempt % len(item.sources)]
                try:
                    if injector.fires("fed-fetch-error", ordinal, attempt):
                        raise FederationFetchError(
                            source.label, entry.filename,
                            f"injected fed-fetch-error@{ordinal}#{attempt}",
                        )
                    with _obs_timer("federate.pull_shard"):
                        data = source.fetch(entry)
                    if injector.fires("fed-corrupt-fetch", ordinal, attempt):
                        data = _flip_middle(data)
                except FederationFetchError as exc:
                    outcome = (exc.reason, exc.detail)
                    continue
                outcome = _verify_bytes(dest, entry, data)
                if outcome is None:
                    delivered = source
                    break

            if delivered is None:
                assert outcome is not None
                record = dest.quarantine_file(
                    entry.filename,
                    outcome[0],
                    f"skipped during federation: {outcome[1]}",
                    n_runs=entry.n_runs,
                    num_failing=entry.num_failing,
                    seed_start=entry.seed_start,
                )
                report.skipped.append(record)
                dest.log_event(
                    "federate-skip",
                    filename=entry.filename,
                    reason=outcome[0],
                    detail=outcome[1],
                    sources=[s.label for s in item.sources],
                    attempts=max_attempts,
                )
                if _obs_enabled():
                    _obs_inc("federate.shards_skipped")
                continue

            committed = dataclasses.replace(
                entry,
                sha256=hashlib.sha256(data).hexdigest(),
                source=delivered.label,
            )
            dest.ingest_shard_bytes(data, committed)
            dest.log_event(
                "federate-pull",
                filename=entry.filename,
                source=delivered.label,
                n_runs=entry.n_runs,
                sha256=committed.sha256,
            )
            report.pulled.append(entry.filename)
            report.runs_merged += entry.n_runs
            report.bytes_pulled += len(data)
            if _obs_enabled():
                _obs_inc("federate.shards_pulled")
                _obs_inc("federate.bytes_pulled", len(data))
                _obs_inc("federate.runs_merged", entry.n_runs)

    if report.pulled:
        # Canonical membership order: seed ranges ascending.  A one-pass
        # federation commits in this order anyway; re-sorting makes
        # *multi-pass* federation land on the identical manifest (the
        # associativity the property suite pins), and matches the order
        # a single daemon collecting the same seeds would have written.
        dest.manifest.shards.sort(
            key=lambda e: (e.seed_start is None, e.seed_start or 0, e.filename)
        )
        dest.manifest.save(dest.manifest_path)

    if _obs_enabled():
        _obs_inc("federate.shards_deduped", len(report.deduped))
        _obs_inc("federate.retries", report.retries)
    dest.log_event(
        "federate",
        sources=sorted(s.label for s in sources),
        pulled=len(report.pulled),
        deduped=len(report.deduped),
        present=len(report.present),
        skipped=len(report.skipped),
        runs_merged=report.runs_merged,
    )
    return report


def cross_audit(
    dest: ShardStore, sources: Sequence[StoreSource]
) -> FederationAudit:
    """Audit the destination *and* its coverage of every source.

    Runs a full :meth:`~repro.store.shards.ShardStore.audit` on the
    destination, then checks each source's current manifest against it:
    every source shard should be present with the same digest
    (``replicated``); ``missing`` means a skipped or never-federated
    seed range, ``diverged`` means the two stores hold different bytes
    for the same seeds -- a state a clean federation never produces.
    """
    with _obs_span("federate.cross_audit", sources=len(sources)):
        audit = FederationAudit(dest=dest.audit())
        by_range = {
            (e.seed_start, e.n_runs): e
            for e in dest.manifest.shards
            if e.seed_start is not None
        }
        for source in sorted(sources, key=lambda s: s.label):
            result = SourceAudit(label=source.label)
            for entry in source.manifest().shards:
                committed = by_range.get((entry.seed_start, entry.n_runs))
                if committed is None:
                    result.missing.append(entry.filename)
                elif (
                    entry.sha256 is not None
                    and committed.sha256 is not None
                    and entry.sha256 != committed.sha256
                ):
                    result.diverged.append(entry.filename)
                else:
                    result.replicated.append(entry.filename)
            audit.sources.append(result)
    return audit
