"""Typed errors for store-to-store federation."""

from __future__ import annotations

from repro.store.errors import StoreError


class FederationError(StoreError):
    """A federation cannot proceed as asked.

    Raised for structural problems the pull loop must not paper over:
    incompatible source stores (different subject, predicate table or
    instrumentation config), shards without seed provenance, and --
    the paper-level invariant -- two stores claiming *overlapping* seed
    ranges with different content, which no dedup rule can merge
    without double-counting or guessing.  Transient per-shard failures
    (unreachable daemon, damaged bytes) are NOT this error; they are
    retried and, if persistent, skipped with an audited reason.
    """


class FederationFetchError(StoreError):
    """One shard pull failed; transient, retried by the pull loop.

    Carries the source label, shard filename and a machine-readable
    ``reason`` code (``fetch-error`` or ``missing-file``) so exhausted
    retries produce a precise skip record.
    """

    def __init__(
        self, source: str, filename: str, detail: str, reason: str = "fetch-error"
    ) -> None:
        super().__init__(f"pull of {filename} from {source} failed: {detail}")
        self.source = source
        self.filename = filename
        self.detail = detail
        self.reason = reason

    def __reduce__(self):
        # BaseException pickles as ``cls(*self.args)``; spell out the
        # real constructor arguments (see repro.store.errors).
        return (type(self), (self.source, self.filename, self.detail, self.reason))
