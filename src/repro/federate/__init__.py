"""Federated multi-daemon ingestion: merge N shard stores into one.

Public API:

* :func:`~repro.federate.merge.federate_stores` -- pull every committed
  shard from a set of sources into a destination store, bit-identically;
* :func:`~repro.federate.merge.plan_sync` -- the manifest diff behind it;
* :func:`~repro.federate.merge.cross_audit` -- verify the merge end to
  end (destination audit plus per-source replication check);
* :func:`~repro.federate.sources.open_source` and the
  :class:`~repro.federate.sources.StoreSource` transports (local
  directory, live daemon over HTTP).

See :mod:`repro.federate.merge` for the protocol and its determinism
argument.
"""

from repro.federate.errors import FederationError, FederationFetchError
from repro.federate.merge import (
    FederationAudit,
    FederationReport,
    PullItem,
    SourceAudit,
    SyncPlan,
    cross_audit,
    federate_stores,
    plan_sync,
)
from repro.federate.sources import (
    MANIFEST_SCHEMA,
    HTTPSource,
    LocalSource,
    StoreSource,
    open_source,
)

__all__ = [
    "FederationError",
    "FederationFetchError",
    "FederationAudit",
    "FederationReport",
    "PullItem",
    "SourceAudit",
    "SyncPlan",
    "cross_audit",
    "federate_stores",
    "plan_sync",
    "MANIFEST_SCHEMA",
    "HTTPSource",
    "LocalSource",
    "StoreSource",
    "open_source",
]
