"""Where federated shards come from: local store directories or daemons.

A :class:`StoreSource` answers exactly two questions -- "what committed
shards do you hold?" (:meth:`~StoreSource.manifest`) and "give me that
shard's bytes" (:meth:`~StoreSource.fetch`) -- which is all the
pull-based sync in :mod:`repro.federate.merge` needs.  Two transports:

* :class:`LocalSource` reads another store directory on the same
  filesystem (``repro-cbi federate src-store/ ... dest-store/``);
* :class:`HTTPSource` talks to a live collection daemon's federation
  endpoints (``GET /manifest`` and ``GET /shards/<filename>``, see
  :mod:`repro.serve.server`), so a merge node can drain daemons it has
  no disk access to.

Both are read-only: federation never mutates a source.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

from repro.federate.errors import FederationError, FederationFetchError
from repro.store.manifest import ShardEntry, ShardManifest
from repro.store.shards import MANIFEST_NAME

#: Schema tag of the ``GET /manifest`` response document.
MANIFEST_SCHEMA = "repro-federate/v1"


class StoreSource:
    """One read-only source of committed shards.

    Attributes:
        label: Stable identity string (path or URL).  Used for
            deterministic dedup ordering and recorded as provenance in
            the destination manifest, so it must not depend on the
            order sources were passed in.
    """

    label: str

    def manifest(self) -> ShardManifest:
        """The source's current membership record."""
        raise NotImplementedError

    def fetch(self, entry: ShardEntry) -> bytes:
        """The raw committed bytes of one shard.

        Raises:
            FederationFetchError: The shard could not be read; carries
                a ``reason`` the skip record uses (``missing-file`` when
                the source no longer has the file, ``fetch-error`` for
                transport failures).
        """
        raise NotImplementedError


class LocalSource(StoreSource):
    """A shard-store directory on the local filesystem."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.label = os.path.abspath(directory)

    def manifest(self) -> ShardManifest:
        path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.exists(path):
            raise FederationError(
                f"{self.directory} has no {MANIFEST_NAME}; not a shard store"
            )
        return ShardManifest.load(path)

    def fetch(self, entry: ShardEntry) -> bytes:
        path = os.path.join(self.directory, entry.filename)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError as exc:
            raise FederationFetchError(
                self.label, entry.filename, "file is missing at the source",
                reason="missing-file",
            ) from exc
        except OSError as exc:
            raise FederationFetchError(
                self.label, entry.filename, str(exc)
            ) from exc

    def __repr__(self) -> str:
        return f"LocalSource({self.directory!r})"


class HTTPSource(StoreSource):
    """A live collection daemon's federation endpoints."""

    def __init__(self, url: str, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.label = self.url
        self.timeout = timeout

    def manifest(self) -> ShardManifest:
        try:
            with urllib.request.urlopen(
                f"{self.url}/manifest", timeout=self.timeout
            ) as response:
                document = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            raise FederationError(
                f"cannot read manifest from {self.url}: {exc}"
            ) from exc
        if document.get("schema") != MANIFEST_SCHEMA:
            raise FederationError(
                f"{self.url}/manifest answered schema "
                f"{document.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
            )
        return ShardManifest.from_json(document["manifest"])

    def fetch(self, entry: ShardEntry) -> bytes:
        try:
            with urllib.request.urlopen(
                f"{self.url}/shards/{entry.filename}", timeout=self.timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            reason = "missing-file" if exc.code in (404, 410) else "fetch-error"
            raise FederationFetchError(
                self.label, entry.filename, f"HTTP {exc.code}", reason=reason
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise FederationFetchError(
                self.label, entry.filename, str(exc)
            ) from exc

    def __repr__(self) -> str:
        return f"HTTPSource({self.url!r})"


def open_source(spec: str, timeout: float = 10.0) -> StoreSource:
    """A source for a CLI spec: a daemon URL or a store directory."""
    if spec.startswith("http://") or spec.startswith("https://"):
        return HTTPSource(spec, timeout=timeout)
    return LocalSource(spec)
