"""The simulated heap: layout-sensitive buffers with C failure modes.

Address-space model (one cell = one "word"):

::

    ... [H][ data of allocation k ][ pad ][H][ data of k+1 ][ pad ] ...

Each allocation is preceded by one header cell ``H`` (the allocator
metadata).  Padding gap sizes are drawn from the heap's RNG, so layout --
and therefore the effect of any out-of-bounds access -- varies from run to
run, exactly like a real C runtime ("buffer overrun bugs ... may or may
not cause the program to crash depending on runtime system decisions about
how data is laid out in memory").

Failure semantics:

* write inside padding: silent (the lucky case);
* write inside another live allocation: silently corrupts that data;
* write on a header cell: poisons the neighbouring allocation's metadata;
  the crash surfaces later, when that allocation is freed or when the
  allocator walks the heap for a new block -- far from the overrun;
* read/write outside the mapped heap, through ``NULL``, or through a
  freed buffer: immediate :class:`~repro.simmem.errors.SimSegfault`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.simmem.errors import SimDoubleFree, SimOutOfMemory, SimSegfault

#: Maximum padding cells inserted after each allocation.
_DEFAULT_MAX_PAD = 3

#: Garbage value returned when reading uninitialised or padding cells.
_GARBAGE_RANGE = (-(2 ** 15), 2 ** 15)


class _Null:
    """The NULL pointer.  Any dereference is an immediate segfault."""

    def read(self, index: int):
        raise SimSegfault("null pointer read")

    def write(self, index: int, value) -> None:
        raise SimSegfault("null pointer write")

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL"


#: The singleton null pointer returned by a failing ``malloc``.
NULL = _Null()


class SimBuffer:
    """A pointer to one heap allocation.

    All access goes through :meth:`read` / :meth:`write`; index arithmetic
    may run past either end, with layout-dependent consequences.
    """

    __slots__ = ("heap", "alloc_id", "base", "size")

    def __init__(self, heap: "SimHeap", alloc_id: int, base: int, size: int) -> None:
        self.heap = heap
        self.alloc_id = alloc_id
        self.base = base
        self.size = size

    def read(self, index: int):
        """Read the cell at ``index`` (OOB reads hit whatever is there)."""
        return self.heap._read(self, index)

    def write(self, index: int, value) -> None:
        """Write the cell at ``index`` (OOB writes hit whatever is there)."""
        self.heap._write(self, index, value)

    def fill(self, value, start: int = 0, count: Optional[int] = None) -> None:
        """memset-style fill of ``count`` cells starting at ``start``."""
        if count is None:
            count = self.size - start
        for i in range(start, start + count):
            self.write(i, value)

    def to_list(self) -> List:
        """Snapshot the in-bounds cells (a debugging convenience)."""
        return [self.read(i) for i in range(self.size)]

    def __len__(self) -> int:
        return self.size

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SimBuffer(id={self.alloc_id}, base={self.base}, size={self.size})"


class SimHeap:
    """A flat simulated address space with randomised allocation layout.

    Args:
        seed: RNG seed controlling layout and garbage values (one heap per
            run gives run-to-run layout variation).
        max_pad: Maximum random padding after each allocation.
        oom_rate: Probability that any single ``malloc`` call returns
            ``NULL``, for injecting out-of-memory conditions (the MOSS
            missing-OOM-check bug); 0 disables injection.
        capacity: Total cells available (a backstop against runaway
            subject allocation loops).
    """

    def __init__(
        self,
        seed: int = 0,
        max_pad: int = _DEFAULT_MAX_PAD,
        oom_rate: float = 0.0,
        capacity: int = 1_000_000,
    ) -> None:
        self.rng = random.Random(seed)
        self.max_pad = max_pad
        self.oom_rate = oom_rate
        self.capacity = capacity
        self._cells: Dict[int, object] = {}
        #: alloc_id -> (base, size, alive, header_ok)
        self._allocs: Dict[int, List] = {}
        #: ascending (base, alloc_id) for address->owner lookup
        self._index: List[Tuple[int, int]] = []
        self._next_addr = 0
        self._next_id = 1
        self._deferred_fault: Optional[str] = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def malloc(self, size: int, can_fail: bool = False):
        """Allocate ``size`` cells; may return :data:`NULL` under injection.

        Out-of-memory injection (``oom_rate``) only applies to call sites
        that pass ``can_fail=True``; robust allocation sites in subject
        programs use the default and never observe ``NULL``, so only the
        seeded missing-check bugs feel the injection.

        A deferred metadata fault (from an earlier header overwrite) is
        raised here, modelling allocators that crash while walking a
        corrupted heap.
        """
        self._check_deferred()
        if size < 0:
            raise SimSegfault(f"malloc of negative size {size}")
        if can_fail and self.oom_rate > 0.0 and self.rng.random() < self.oom_rate:
            return NULL
        if self._next_addr + size + 1 + self.max_pad > self.capacity:
            raise SimOutOfMemory(
                f"simulated heap exhausted ({self._next_addr} cells in use)"
            )
        header = self._next_addr
        base = header + 1
        alloc_id = self._next_id
        self._next_id += 1
        self._allocs[alloc_id] = [base, size, True, True]
        self._index.append((base, alloc_id))
        pad = self.rng.randint(0, self.max_pad)
        self._next_addr = base + size + pad
        return SimBuffer(self, alloc_id, base, size)

    def calloc(self, size: int):
        """Allocate and zero-fill (never returns garbage on read)."""
        buf = self.malloc(size)
        if buf is NULL:
            return NULL
        for i in range(size):
            self._cells[buf.base + i] = 0
        return buf

    def free(self, buf) -> None:
        """Release an allocation.

        Raises:
            SimSegfault: If the allocation's metadata was corrupted by an
                earlier out-of-bounds write (the deferred crash), or when
                freeing ``NULL`` is fine but freeing garbage is not.
            SimDoubleFree: If the allocation was already freed.
        """
        if buf is NULL:
            return
        if not isinstance(buf, SimBuffer):
            raise SimSegfault(f"free of non-pointer {buf!r}")
        rec = self._allocs.get(buf.alloc_id)
        if rec is None:
            raise SimSegfault("free of unknown pointer")
        if not rec[3]:
            raise SimSegfault("heap metadata corrupted (detected at free)")
        if not rec[2]:
            raise SimDoubleFree(f"double free of allocation {buf.alloc_id}")
        rec[2] = False

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _record_of(self, buf: SimBuffer) -> List:
        rec = self._allocs.get(buf.alloc_id)
        if rec is None:
            raise SimSegfault("dereference of unknown pointer")
        if not rec[2]:
            raise SimSegfault("use after free")
        return rec

    def _read(self, buf: SimBuffer, index: int):
        rec = self._record_of(buf)
        addr = rec[0] + index
        if 0 <= index < rec[1]:
            return self._cells.get(addr, self._garbage())
        return self._oob_read(addr)

    def _write(self, buf: SimBuffer, index: int, value) -> None:
        rec = self._record_of(buf)
        addr = rec[0] + index
        if 0 <= index < rec[1]:
            self._cells[addr] = value
            return
        self._oob_write(addr, value)

    def _oob_read(self, addr: int):
        if addr < 0 or addr >= self._next_addr + 64:
            raise SimSegfault(f"wild read at address {addr}")
        owner = self._owner_of(addr)
        if owner is not None:
            base, _size, alive, _ok = self._allocs[owner]
            if alive:
                return self._cells.get(addr, self._garbage())
        return self._garbage()

    def _oob_write(self, addr: int, value) -> None:
        if addr < 0 or addr >= self._next_addr + 64:
            raise SimSegfault(f"wild write at address {addr}")
        # Header cell of some allocation?  Headers sit at base-1.
        victim = self._header_owner(addr)
        if victim is not None:
            self._allocs[victim][3] = False
            self._deferred_fault = (
                f"heap metadata of allocation {victim} overwritten at {addr}"
            )
            return
        owner = self._owner_of(addr)
        if owner is not None and self._allocs[owner][2]:
            # Silent corruption of a neighbouring live allocation.
            self._cells[addr] = value
            return
        # Padding or dead space: the lucky, silent case.

    def _owner_of(self, addr: int) -> Optional[int]:
        """Return the alloc_id whose data region contains ``addr``."""
        import bisect

        pos = bisect.bisect_right(self._index, (addr, float("inf"))) - 1
        if pos < 0:
            return None
        base, alloc_id = self._index[pos]
        size = self._allocs[alloc_id][1]
        if base <= addr < base + size:
            return alloc_id
        return None

    def _header_owner(self, addr: int) -> Optional[int]:
        """Return the alloc_id whose header cell is ``addr``, if any."""
        import bisect

        pos = bisect.bisect_left(self._index, (addr + 1, -1))
        if pos < len(self._index) and self._index[pos][0] == addr + 1:
            return self._index[pos][1]
        return None

    def _garbage(self):
        return self.rng.randint(*_GARBAGE_RANGE)

    def _check_deferred(self) -> None:
        if self._deferred_fault is not None:
            msg = self._deferred_fault
            self._deferred_fault = None
            raise SimSegfault(msg)

    # ------------------------------------------------------------------
    # Introspection (for tests)
    # ------------------------------------------------------------------
    def live_allocations(self) -> int:
        """Number of allocations not yet freed."""
        return sum(1 for rec in self._allocs.values() if rec[2])

    def metadata_intact(self) -> bool:
        """True when no allocation header has been overwritten."""
        return all(rec[3] for rec in self._allocs.values()) and (
            self._deferred_fault is None
        )


def memcpy(dst, src, count: int) -> None:
    """Copy ``count`` cells from ``src`` to ``dst``.

    Either argument being :data:`NULL`, a freed buffer, or a non-pointer
    raises :class:`~repro.simmem.errors.SimSegfault` -- this models the
    EXIF crash, where an uninitialised ``entries[i].data`` pointer reaches
    ``memcpy`` in the save path.
    """
    if dst is NULL or src is NULL:
        raise SimSegfault("memcpy through null pointer")
    if not isinstance(dst, SimBuffer) or not isinstance(src, SimBuffer):
        raise SimSegfault(f"memcpy of non-pointer ({dst!r}, {src!r})")
    for i in range(count):
        dst.write(i, src.read(i))
