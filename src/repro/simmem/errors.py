"""Crash exceptions raised by the simulated heap.

These play the role of hardware traps: subject programs never catch them,
so the experiment runner observes them as failing runs, exactly as the
paper's runs were labelled by crashes.
"""

from __future__ import annotations


class SimMemoryError(Exception):
    """Base class for simulated memory faults."""


class SimSegfault(SimMemoryError):
    """A simulated segmentation fault (bad pointer dereference).

    Raised for null-pointer dereferences, use-after-free, reads/writes far
    outside the heap, and deferred heap-metadata corruption discovered by
    the allocator.
    """


class SimDoubleFree(SimMemoryError):
    """An allocation was freed twice."""


class SimOutOfMemory(SimMemoryError):
    """The simulated address space is exhausted.

    Note: the *injected* out-of-memory condition used by subject bugs is a
    ``NULL`` return from ``malloc``, not this exception; this exception
    only signals that a test configured an unreasonably small heap.
    """
