"""A simulated C heap for realistic memory-bug behaviour.

The paper's evaluation programs are C programs whose most interesting bugs
are buffer overruns that "may or may not cause the program to crash
depending on runtime system decisions about how data is laid out in
memory", sometimes crashing "long after the overrun occurs" with "no
useful information on the stack" (the BC case study).  Python cannot
corrupt its own heap, so subject programs allocate from this simulated
heap instead:

* :class:`~repro.simmem.heap.SimHeap` lays allocations out in a flat
  address space with randomised padding gaps and per-allocation header
  cells (the "metadata").
* Out-of-bounds writes land wherever the layout puts them: in a padding
  gap (silent), in a neighbouring buffer (silent data corruption), or on
  a header (deferred crash at a later ``free``/``malloc``).
* Null and dangling pointers raise
  :class:`~repro.simmem.errors.SimSegfault` on dereference.

This reproduces exactly the non-determinism the statistical debugging
algorithm is designed for: the *cause* predicate is true in every bad run,
but the crash is probabilistic and far away.
"""

from repro.simmem.errors import (
    SimDoubleFree,
    SimMemoryError,
    SimOutOfMemory,
    SimSegfault,
)
from repro.simmem.heap import NULL, SimBuffer, SimHeap, memcpy

__all__ = [
    "SimHeap",
    "SimBuffer",
    "NULL",
    "memcpy",
    "SimMemoryError",
    "SimSegfault",
    "SimDoubleFree",
    "SimOutOfMemory",
]
