"""Command-line interface: run a bug-isolation experiment and print tables.

Examples::

    repro-cbi list
    repro-cbi run --subject moss --runs 2000 --sampling adaptive
    repro-cbi run --subject exif --runs 3000 --strategy 2 --top 8
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Type

from repro.core.elimination import DiscardStrategy
from repro.core.truth import cooccurrence_table
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.tables import format_predictor_table, format_summary_table
from repro.subjects.base import Subject
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject

#: All registered subjects, keyed by CLI name.
SUBJECTS: Dict[str, Type[Subject]] = {
    "moss": MossSubject,
    "ccrypt": CcryptSubject,
    "bc": BcSubject,
    "exif": ExifSubject,
    "rhythmbox": RhythmboxSubject,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cbi",
        description="Scalable Statistical Bug Isolation (PLDI 2005) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available subject programs")

    run = sub.add_parser("run", help="run one bug-isolation experiment")
    run.add_argument("--subject", choices=sorted(SUBJECTS), required=True)
    run.add_argument("--runs", type=int, default=2000, help="number of trials")
    run.add_argument(
        "--sampling",
        choices=["uniform", "adaptive", "full"],
        default="adaptive",
        help="sampling regime (paper default: adaptive nonuniform)",
    )
    run.add_argument("--rate", type=float, default=0.01, help="uniform sampling rate")
    run.add_argument(
        "--training-runs", type=int, default=200, help="adaptive training set size"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--strategy",
        type=int,
        choices=[1, 2, 3],
        default=1,
        help="elimination discard strategy (Section 5)",
    )
    run.add_argument("--top", type=int, default=15, help="max predictors to report")
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for trial collection (bit-identical to serial)",
    )
    run.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write an interactive-style HTML report",
    )
    run.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="save the collected feedback reports (+ ground truth) as .npz",
    )

    analyze = sub.add_parser(
        "analyze", help="re-analyse a saved feedback-report archive"
    )
    analyze.add_argument("archive", help="path written by `run --save`")
    analyze.add_argument("--top", type=int, default=15)
    analyze.add_argument(
        "--strategy", type=int, choices=[1, 2, 3], default=1,
        help="elimination discard strategy (Section 5)",
    )
    analyze.add_argument(
        "--method", choices=["interval", "ztest"], default="interval",
        help="pruning filter (Section 3.1 interval or Section 3.2 z-test)",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(SUBJECTS):
            subject = SUBJECTS[name]()
            print(f"{name:<12} bugs: {', '.join(subject.bug_ids)}")
        return 0

    if args.command == "analyze":
        return _analyze(args)

    subject = SUBJECTS[args.subject]()
    config = Experiment(
        subject=subject,
        n_runs=args.runs,
        sampling=args.sampling,
        rate=args.rate,
        training_runs=args.training_runs,
        seed=args.seed,
        strategy=DiscardStrategy(args.strategy),
        max_predictors=args.top,
        jobs=args.jobs,
    )
    print(f"running {args.runs} trials of {args.subject} "
          f"({args.sampling} sampling)...", file=sys.stderr)
    result = run_experiment(config)

    print(format_summary_table([result.summary()]))
    print()
    co = cooccurrence_table(
        result.reports,
        result.truth,
        [s.predicate.index for s in result.elimination.selected],
    )
    print(
        format_predictor_table(
            result.elimination, co, bug_ids=list(subject.bug_ids)
        )
    )
    if args.html:
        from repro.harness.report import write_report

        write_report(result, args.html)
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    if args.save:
        from repro.core.io import save_reports

        save_reports(args.save, result.reports, result.truth)
        print(f"saved feedback reports to {args.save}", file=sys.stderr)
    return 0


def _analyze(args) -> int:
    """Re-run the analysis half of the pipeline on a saved archive."""
    from repro.core.elimination import eliminate
    from repro.core.io import load_reports
    from repro.core.pruning import prune_predicates

    reports, truth = load_reports(args.archive)
    print(
        f"loaded {reports.n_runs} runs ({reports.num_failing} failing), "
        f"{reports.n_predicates} predicates",
        file=sys.stderr,
    )
    pruning = prune_predicates(reports, method=args.method)
    elimination = eliminate(
        reports,
        candidates=pruning.kept,
        strategy=DiscardStrategy(args.strategy),
        max_predictors=args.top,
    )
    co = None
    bug_ids = None
    if truth is not None and truth.bug_ids:
        bug_ids = list(truth.bug_ids)
        co = cooccurrence_table(
            reports, truth, [s.predicate.index for s in elimination.selected]
        )
    print(
        f"pruning kept {pruning.n_kept}/{pruning.n_initial} predicates; "
        f"elimination selected {len(elimination)}"
    )
    print(format_predictor_table(elimination, co, bug_ids=bug_ids))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
