"""Command-line interface: run a bug-isolation experiment and print tables.

Examples::

    repro-cbi list
    repro-cbi run --subject moss --runs 2000 --sampling adaptive
    repro-cbi run --subject exif --runs 3000 --strategy 2 --top 8

Large populations split collection from analysis: ``collect`` appends
on-disk shards (written directly by worker processes) to a store
directory, and ``analyze`` pointed at that directory scores it -- the
pruning pass streams per-shard sufficient statistics, so it never holds
more than one shard's matrices::

    repro-cbi collect --subject moss --runs 5000 --out moss-store/
    repro-cbi collect --subject moss --runs 5000 --out moss-store/  # appends
    repro-cbi analyze moss-store/
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from repro.core import measures
from repro.core.elimination import DiscardStrategy
from repro.core.truth import cooccurrence_table
from repro.factory.subjects import corpus_subjects
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.tables import format_predictor_table, format_summary_table
from repro.subjects.base import Subject
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject

#: All registered subjects, keyed by CLI name: the five hand-built
#: analogues plus every factory-made corpus bug.  Values are zero-arg
#: constructors (classes for the builtins, corpus entries for the
#: factory), so ``SUBJECTS[name]()`` is uniform.
SUBJECTS: Dict[str, Callable[[], Subject]] = {
    "moss": MossSubject,
    "ccrypt": CcryptSubject,
    "bc": BcSubject,
    "exif": ExifSubject,
    "rhythmbox": RhythmboxSubject,
}
SUBJECTS.update(corpus_subjects())


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cbi",
        description="Scalable Statistical Bug Isolation (PLDI 2005) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lister = sub.add_parser("list", help="list available subject programs")
    lister.add_argument(
        "--json", action="store_true",
        help="machine-readable output: one JSON document with name, kind "
        "(builtin or factory), bug ids, mutation class, site/predicate "
        "counts and default trial budget per subject",
    )

    run = sub.add_parser("run", help="run one bug-isolation experiment")
    run.add_argument("--subject", choices=sorted(SUBJECTS), required=True)
    run.add_argument(
        "--runs", type=int, default=None,
        help="number of trials (default: the subject's trial budget, "
        "see `list --json`)",
    )
    run.add_argument(
        "--sampling",
        choices=["uniform", "adaptive", "full"],
        default="adaptive",
        help="sampling regime (paper default: adaptive nonuniform)",
    )
    run.add_argument("--rate", type=float, default=0.01, help="uniform sampling rate")
    run.add_argument(
        "--training-runs", type=int, default=200, help="adaptive training set size"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--strategy",
        type=int,
        choices=[1, 2, 3],
        default=1,
        help="elimination discard strategy (Section 5)",
    )
    run.add_argument("--top", type=int, default=15, help="max predictors to report")
    run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1, unified across subcommands; "
        "output is bit-identical for every value)",
    )
    run.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write an interactive-style HTML report",
    )
    run.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="save the collected feedback reports (+ ground truth) as .npz",
    )

    collect = sub.add_parser(
        "collect",
        help="collect feedback-report shards into a store directory",
    )
    collect.add_argument("--subject", choices=sorted(SUBJECTS), required=True)
    collect.add_argument(
        "--out", metavar="DIR", required=True,
        help="shard-store directory (created on first use, appended after)",
    )
    collect.add_argument(
        "--runs", type=int, default=None,
        help="number of trials (default: the subject's trial budget, "
        "see `list --json`)",
    )
    collect.add_argument(
        "--sampling",
        choices=["uniform", "adaptive", "full"],
        default="adaptive",
        help="sampling regime (paper default: adaptive nonuniform)",
    )
    collect.add_argument("--rate", type=float, default=0.01, help="uniform sampling rate")
    collect.add_argument(
        "--training-runs", type=int, default=200, help="adaptive training set size"
    )
    collect.add_argument(
        "--seed", type=int, default=None,
        help="base trial seed; defaults to the store's next free seed, so "
        "repeated collect sessions extend the population contiguously",
    )
    collect.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1, unified across subcommands; "
        "each writes its shards directly to disk, bit-identical for "
        "every value)",
    )
    collect.add_argument(
        "--chunk-size", type=int, default=200, help="trials per shard"
    )
    collect.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per chunk before the collection gives up",
    )
    collect.add_argument(
        "--chunk-timeout", type=float, default=None,
        help="seconds before a hung chunk worker is killed and retried",
    )
    collect.add_argument(
        "--testing", action="store_true",
        help="enable testing-only options such as --inject-fault",
    )
    collect.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="inject a collection fault (testing only; requires --testing); "
        "SPEC is kind@chunk[#attempt], e.g. kill-worker@1 or flip-bytes@2; "
        "kinds: kill-worker, hang-worker, truncate-shard, flip-bytes, "
        "duplicate-shard, stale-manifest",
    )
    collect.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write collection metrics (counters/timers/gauges, merged "
        "across workers) to PATH as a repro-metrics/v1 JSON document",
    )
    collect.add_argument(
        "--trace", metavar="PATH", default=None,
        help="append Chrome-compatible trace spans to PATH as JSONL; "
        "convert with `python -m repro.obs.trace PATH` for chrome://tracing",
    )

    analyze = sub.add_parser(
        "analyze",
        help="re-analyse a saved feedback-report archive or a shard store",
    )
    analyze.add_argument(
        "archive",
        help="archive written by `run --save`, or a directory written by `collect`",
    )
    analyze.add_argument("--top", type=int, default=15)
    analyze.add_argument(
        "--strategy", type=int, choices=[1, 2, 3], default=1,
        help="elimination discard strategy (Section 5)",
    )
    analyze.add_argument(
        "--method", choices=["interval", "ztest"], default="interval",
        help="pruning filter (Section 3.1 interval or Section 3.2 z-test)",
    )
    analyze.add_argument(
        "--stats-only", action="store_true",
        help="shard stores only: rank by streaming sufficient statistics "
        "without materialising the population (skips elimination)",
    )
    analyze.add_argument(
        "--no-audit", action="store_true",
        help="shard stores only: skip the integrity audit (checksum "
        "verification and quarantine of damaged shards) before analysis",
    )
    analyze.add_argument(
        "--profile", action="store_true",
        help="print a timer/counter profile of the analysis to stderr",
    )
    analyze.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1, unified across subcommands; "
        "output is bit-identical for every value)",
    )
    analyze.add_argument(
        "--measure", choices=list(measures.available()),
        default=measures.DEFAULT_MEASURE,
        help="suspiciousness measure ranking the --stats-only output "
        "(default: the paper's Importance; see docs/MEASURES.md). "
        "Elimination always follows the paper's Importance.",
    )

    serve = sub.add_parser(
        "serve",
        help="run the cooperative collection daemon over a store directory",
    )
    serve.add_argument(
        "store",
        help="shard-store directory to serve (created on first use; an "
        "existing store pins the subject)",
    )
    serve.add_argument(
        "--subject", choices=sorted(SUBJECTS), default=None,
        help="subject to collect (required for a new store; must match "
        "an existing store's manifest)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port; 0 picks a free one (printed on startup)",
    )
    serve.add_argument(
        "--batch-runs", type=int, default=200,
        help="contiguous seeds per committed shard",
    )
    serve.add_argument(
        "--max-buffered", type=int, default=100_000,
        help="pending-report bound; uploads past it get 503",
    )
    serve.add_argument(
        "--sampling", choices=["uniform", "adaptive", "full"], default="adaptive",
        help="sampling plan recorded when creating a new store",
    )
    serve.add_argument("--rate", type=float, default=0.01, help="uniform sampling rate")
    serve.add_argument(
        "--training-runs", type=int, default=200, help="adaptive training set size"
    )
    serve.add_argument(
        "--no-steering", action="store_true",
        help="do not publish GET /steering (clients fall back to their "
        "local sampling plans, the pre-steering behaviour)",
    )
    serve.add_argument(
        "--refit-runs", type=int, default=100,
        help="refit the steering document every N committed runs",
    )
    serve.add_argument(
        "--watchlist-k", type=int, default=10,
        help="predicates on the steering watchlist",
    )
    serve.add_argument(
        "--measure", choices=list(measures.available()),
        default=measures.DEFAULT_MEASURE,
        help="suspiciousness measure ordering the steering watchlist",
    )
    serve.add_argument(
        "--stop-epsilon", type=float, default=0.1,
        help="early stopping: maximum Increase half-interval width for "
        "the top predictors before the subject converges",
    )
    serve.add_argument(
        "--stop-min-runs", type=int, default=100,
        help="early stopping: minimum committed runs before convergence",
    )
    serve.add_argument(
        "--stop-min-failing", type=int, default=10,
        help="early stopping: minimum committed failing runs before "
        "convergence",
    )
    serve.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="also write final serve metrics to PATH on shutdown",
    )
    serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="append Chrome-compatible trace spans to PATH as JSONL",
    )
    serve.add_argument(
        "--testing", action="store_true",
        help="enable testing-only options such as --inject-fault",
    )
    serve.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="inject a server-side network fault (testing only); SPEC is "
        "kind@ordinal, e.g. net-500@1 or net-disconnect@2; the ordinal "
        "counts POST /reports requests; kinds: net-500, net-disconnect, "
        "net-slow",
    )

    submit = sub.add_parser(
        "submit",
        help="run trials locally, spool the reports, and upload them to a "
        "collection daemon",
    )
    submit.add_argument("--subject", choices=sorted(SUBJECTS), required=True)
    submit.add_argument(
        "--url", required=True, help="server base URL, e.g. http://127.0.0.1:8080"
    )
    submit.add_argument(
        "--runs", type=int, default=None,
        help="trials to run and spool before draining (default: the "
        "subject's trial budget); 0 drains an existing spool only",
    )
    submit.add_argument("--seed", type=int, default=0, help="base trial seed")
    submit.add_argument(
        "--spool", metavar="DIR", required=True,
        help="local disk spool; reports persist here until acknowledged",
    )
    submit.add_argument(
        "--batch-size", type=int, default=32, help="reports per upload request"
    )
    submit.add_argument(
        "--sampling", choices=["uniform", "adaptive", "full"], default="adaptive",
        help="sampling regime (must match what the server's store expects)",
    )
    submit.add_argument("--rate", type=float, default=0.01, help="uniform sampling rate")
    submit.add_argument(
        "--training-runs", type=int, default=200, help="adaptive training set size"
    )
    submit.add_argument(
        "--timeout", type=float, default=10.0, help="per-request timeout in seconds"
    )
    submit.add_argument(
        "--max-attempts", type=int, default=8,
        help="attempts per batch before the drain gives up",
    )
    submit.add_argument(
        "--steered", action="store_true",
        help="fetch the server's GET /steering rate table, run trials "
        "under it, and stamp its version into every report; falls back "
        "to the local --sampling plan when the server has no steering",
    )
    submit.add_argument(
        "--until-converged", action="store_true",
        help="steered rounds of --runs trials until the daemon reports "
        "convergence (implies --steered)",
    )
    submit.add_argument(
        "--max-rounds", type=int, default=50,
        help="round budget for --until-converged",
    )
    submit.add_argument(
        "--top", type=int, default=0,
        help="after draining, fetch and print the top-K live scores",
    )
    submit.add_argument(
        "--testing", action="store_true",
        help="enable testing-only options such as --inject-fault",
    )
    submit.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="inject a client-side network fault (testing only); SPEC is "
        "net-refuse@batch[#attempt]",
    )

    federate = sub.add_parser(
        "federate",
        help="replicate committed shards from N source stores or daemons "
        "into one merged store, bit-identical to single-store collection",
    )
    federate.add_argument(
        "sources", nargs="+", metavar="SRC",
        help="source store directory or daemon URL (http://host:port)",
    )
    federate.add_argument(
        "dest", metavar="DEST",
        help="destination store directory (created if absent)",
    )
    federate.add_argument(
        "--max-attempts", type=int, default=3,
        help="pull attempts per shard before it is skipped with an "
        "audited reason",
    )
    federate.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-request timeout for daemon sources, in seconds",
    )
    federate.add_argument(
        "--no-audit", action="store_true",
        help="skip the closing cross-store audit",
    )
    federate.add_argument(
        "--testing", action="store_true",
        help="enable testing-only options such as --inject-fault",
    )
    federate.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="inject a federation fault (testing only); SPEC is "
        "fed-fetch-error@pull[#attempt] or fed-corrupt-fetch@pull[#attempt]",
    )

    bench = sub.add_parser(
        "bench",
        help="run the standard benchmark scenarios and append the results "
        "to BENCH_collection.json / BENCH_analysis.json",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small trial counts for CI smoke runs (entries are marked quick)",
    )
    bench.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="directory holding the BENCH_*.json trajectory files",
    )
    bench.add_argument(
        "--label", default=None,
        help="free-form label recorded with this bench entry (e.g. a commit)",
    )
    bench.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply every scenario's trial count by this factor",
    )

    bakeoff = sub.add_parser(
        "bakeoff",
        help="grade every registered suspiciousness measure against the "
        "subjects' ground-truth bug sites",
    )
    bakeoff.add_argument(
        "--subject", action="append", default=None, choices=sorted(SUBJECTS),
        metavar="NAME", dest="subjects",
        help="subject to grade (repeatable; default: all subjects)",
    )
    bakeoff.add_argument(
        "--measure", action="append", default=None,
        choices=list(measures.available()), metavar="NAME", dest="measures",
        help="measure to grade (repeatable; default: every registered measure)",
    )
    bakeoff.add_argument(
        "--runs", type=int, default=None,
        help="deterministic full-observation trials per subject "
        "(default: 400)",
    )
    bakeoff.add_argument("--seed", type=int, default=0, help="base trial seed")
    bakeoff.add_argument(
        "--jobs", type=int, default=1,
        help="scoring worker processes (matrix is identical for every value)",
    )
    bakeoff.add_argument(
        "--json", action="store_true",
        help="emit the repro-bakeoff/v1 document on stdout instead of a table",
    )
    bakeoff.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON document to PATH",
    )
    bakeoff.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare the Importance row against a committed baseline "
        "document; exit 1 if rank-of-first-faulty-site regressed",
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        if args.json:
            import json

            document = []
            for name in sorted(SUBJECTS):
                subject = SUBJECTS[name]()
                program = subject.build_program()
                document.append(
                    {
                        "name": name,
                        "kind": subject.kind,
                        "bug_ids": list(subject.bug_ids),
                        "bug_count": len(subject.bug_ids),
                        "trial_budget": subject.trial_budget,
                        "n_sites": program.table.n_sites,
                        "n_predicates": program.table.n_predicates,
                        "mutation_class": getattr(subject, "mutation_class", None),
                    }
                )
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        for name in sorted(SUBJECTS):
            subject = SUBJECTS[name]()
            print(f"{name:<16} kind: {subject.kind:<8} bugs: {', '.join(subject.bug_ids)}")
        return 0

    if args.command == "bench":
        from repro.obs.bench import run_bench

        collection_path, analysis_path = run_bench(
            out_dir=args.out_dir,
            quick=args.quick,
            scale=args.scale,
            label=args.label,
        )
        print(f"wrote {collection_path}")
        print(f"wrote {analysis_path}")
        return 0

    if args.command == "bakeoff":
        return _bakeoff(args)

    if args.command == "analyze":
        from repro import obs

        if args.profile:
            obs.configure()
        try:
            if os.path.isdir(args.archive):
                code = _analyze_store(args)
            else:
                code = _analyze(args)
            if args.profile:
                obs.print_profile()
            return code
        finally:
            obs.shutdown()

    if args.command == "collect":
        return _collect(args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "submit":
        return _submit(args)

    if args.command == "federate":
        return _federate(args)

    subject = SUBJECTS[args.subject]()
    if args.runs is None:
        args.runs = subject.trial_budget
    config = Experiment(
        subject=subject,
        n_runs=args.runs,
        sampling=args.sampling,
        rate=args.rate,
        training_runs=args.training_runs,
        seed=args.seed,
        strategy=DiscardStrategy(args.strategy),
        max_predictors=args.top,
        jobs=args.jobs,
    )
    print(f"running {args.runs} trials of {args.subject} "
          f"({args.sampling} sampling)...", file=sys.stderr)
    result = run_experiment(config)

    print(format_summary_table([result.summary()]))
    print()
    co = cooccurrence_table(
        result.reports,
        result.truth,
        [s.predicate.index for s in result.elimination.selected],
    )
    print(
        format_predictor_table(
            result.elimination, co, bug_ids=list(subject.bug_ids)
        )
    )
    if args.html:
        from repro.harness.report import write_report

        write_report(result, args.html)
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    if args.save:
        from repro.core.io import save_reports

        save_reports(args.save, result.reports, result.truth)
        print(f"saved feedback reports to {args.save}", file=sys.stderr)
    return 0


def _cli_faults(args):
    """Parse ``--inject-fault`` specs behind the ``--testing`` gate.

    Returns ``(exit_code, faults)``; a non-zero code means the command
    must refuse (faults requested without ``--testing``).
    """
    from repro.store import parse_faults

    if not args.inject_fault:
        return 0, None
    if not args.testing:
        print(
            "error: --inject-fault is a testing-only option; "
            "pass --testing to acknowledge",
            file=sys.stderr,
        )
        return 2, None
    return 0, tuple(
        fault for spec in args.inject_fault for fault in parse_faults(spec)
    )


def _serve(args) -> int:
    """Run the cooperative collection daemon until SIGTERM/SIGINT."""
    import signal
    import threading

    from repro import obs
    from repro.harness.experiment import build_plan
    from repro.serve import CollectionService, FeedbackServer
    from repro.store import ShardStore
    from repro.store.faults import FaultInjector
    from repro.store.shards import MANIFEST_NAME

    code, faults = _cli_faults(args)
    if code:
        return code

    subject_name = args.subject
    manifest_path = os.path.join(args.store, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        stored_subject = ShardStore.open(args.store).manifest.subject
        if subject_name is not None and subject_name != stored_subject:
            print(
                f"error: store {args.store} holds subject "
                f"{stored_subject!r}, not {subject_name!r}",
                file=sys.stderr,
            )
            return 2
        subject_name = stored_subject
    if subject_name is None:
        print(
            "error: --subject is required when creating a new store",
            file=sys.stderr,
        )
        return 2

    subject = SUBJECTS[subject_name]()
    program = subject.build_program()
    plan = build_plan(
        subject,
        program,
        args.sampling,
        rate=args.rate,
        training_runs=args.training_runs,
        seed=0,
    )
    store = ShardStore.open_or_create(
        args.store, subject.name, program.table, plan
    )

    obs_on = bool(args.trace)
    if obs_on:
        obs.configure(trace_path=args.trace)
    from repro.core.stopping import StoppingPolicy

    service = CollectionService(
        store,
        subject,
        batch_runs=args.batch_runs,
        max_buffered=args.max_buffered,
        steering=not args.no_steering,
        refit_runs=args.refit_runs,
        watchlist_k=args.watchlist_k,
        measure=args.measure,
        stopping=StoppingPolicy(
            epsilon=args.stop_epsilon,
            min_runs=args.stop_min_runs,
            min_failing=args.stop_min_failing,
        ),
    )
    server = FeedbackServer(
        service,
        host=args.host,
        port=args.port,
        faults=FaultInjector(faults or ()),
    )
    server.start()
    # The smoke tests parse this line to find the bound port; keep its
    # shape (and the flush) stable.
    print(f"serving {subject.name} on {server.url} (store {args.store})", flush=True)

    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        drained = server.close(drain=True)
        if args.metrics:
            service.metrics.write(args.metrics)
            print(f"wrote metrics to {args.metrics}", file=sys.stderr)
        if obs_on:
            obs.shutdown()
        print(
            f"drained {drained} pending reports; store now holds "
            f"{store.n_shards} shards, {store.n_runs} runs "
            f"({store.num_failing} failing)",
            flush=True,
        )
    return 0


def _submit(args) -> int:
    """Run trials, spool their reports, and drain the spool to a server."""
    from repro.harness.experiment import build_plan
    from repro.serve import (
        ReportSpool,
        drain_spool,
        fetch_scores,
        run_and_spool,
        steered_collect_and_submit,
        submit_until_converged,
    )
    from repro.store.faults import FaultInjector

    code, faults = _cli_faults(args)
    if code:
        return code

    subject = SUBJECTS[args.subject]()
    runs = args.runs if args.runs is not None else subject.trial_budget
    program = subject.build_program()
    plan = build_plan(
        subject,
        program,
        args.sampling,
        rate=args.rate,
        training_runs=args.training_runs,
        seed=args.seed,
    )
    injector = FaultInjector(faults or ())
    if args.until_converged:
        session = submit_until_converged(
            subject,
            program,
            args.url,
            args.spool,
            runs_per_round=runs or subject.trial_budget,
            seed=args.seed,
            max_rounds=args.max_rounds,
            batch_size=args.batch_size,
            fallback_plan=plan,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            faults=injector,
        )
        print(
            f"{'converged' if session.converged else 'round budget exhausted'} "
            f"after {session.rounds} rounds ({session.runs} trials, "
            f"steering epoch {session.final_epoch})"
        )
    elif args.steered:
        result = steered_collect_and_submit(
            subject,
            program,
            args.url,
            args.spool,
            runs,
            seed=args.seed,
            batch_size=args.batch_size,
            fallback_plan=plan,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            faults=injector,
        )
        print(
            f"submitted: {len(result.accepted)} accepted, "
            f"{len(result.duplicate)} duplicate, {len(result.rejected)} rejected "
            f"({result.requests} requests, {result.retries} retries)"
        )
    else:
        spool = ReportSpool(args.spool)
        if runs:
            run_and_spool(subject, program, plan, spool, runs, seed=args.seed)
            print(
                f"spooled {runs} reports (seeds {args.seed}.."
                f"{args.seed + runs - 1}) to {args.spool}",
                file=sys.stderr,
            )
        result = drain_spool(
            spool,
            args.url,
            subject.name,
            program.table.signature(),
            batch_size=args.batch_size,
            timeout=args.timeout,
            max_attempts=args.max_attempts,
            faults=injector,
        )
        print(
            f"submitted: {len(result.accepted)} accepted, "
            f"{len(result.duplicate)} duplicate, {len(result.rejected)} rejected "
            f"({result.requests} requests, {result.retries} retries)"
        )
    if args.top:
        scores = fetch_scores(args.url, k=args.top, timeout=args.timeout)
        print(
            f"live scores over {scores['n_runs']} runs "
            f"({scores['num_failing']} failing):"
        )
        for entry in scores["predicates"]:
            value = entry.get("score", entry.get("importance", 0.0))
            print(
                f"{value:>10.3f}  {entry['increase']:>8.3f}  "
                f"{entry['F']:>6}  {entry['S']:>6}  {entry['name']}"
            )
    return 0


def _federate(args) -> int:
    """Merge N source stores/daemons into one destination store.

    Exit codes: 0 for a clean merge (and, unless ``--no-audit``, a clean
    cross-store audit); 1 when shards were skipped or the audit found
    problems; 2 for structural refusals (incompatible stores, diverging
    seed-range claims).
    """
    from repro.federate import (
        FederationError,
        cross_audit,
        federate_stores,
        open_source,
    )
    from repro.store import ShardStore
    from repro.store.faults import FaultInjector
    from repro.store.shards import MANIFEST_NAME

    code, faults = _cli_faults(args)
    if code:
        return code

    try:
        sources = [open_source(spec, timeout=args.timeout) for spec in args.sources]
        if os.path.exists(os.path.join(args.dest, MANIFEST_NAME)):
            dest = ShardStore.open(args.dest)
        else:
            dest = ShardStore.create_like(args.dest, sources[0].manifest())
        report = federate_stores(
            sources,
            dest,
            faults=FaultInjector(faults or ()),
            max_attempts=args.max_attempts,
        )
    except FederationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(
        f"federated {len(sources)} sources into {args.dest}: "
        f"{len(report.pulled)} shards pulled ({report.runs_merged} runs, "
        f"{report.bytes_pulled} bytes), {len(report.deduped)} deduped, "
        f"{len(report.present)} already present, {len(report.skipped)} skipped"
        + (f", {report.retries} retries" if report.retries else "")
    )
    for record in report.skipped:
        print(
            f"skipped {record.filename} ({record.reason}): {record.detail}",
            file=sys.stderr,
        )

    clean = report.clean
    if not args.no_audit:
        audit = cross_audit(dest, sources)
        for src_audit in audit.sources:
            status = "fully replicated" if not (
                src_audit.missing or src_audit.diverged
            ) else (
                f"{len(src_audit.missing)} missing, "
                f"{len(src_audit.diverged)} diverged"
            )
            print(
                f"audit {src_audit.label}: {len(src_audit.replicated)} "
                f"replicated, {status}"
            )
        if not audit.clean:
            clean = False
            print("cross-store audit found problems", file=sys.stderr)

    print(
        f"store {args.dest} now holds {dest.n_shards} shards, "
        f"{dest.n_runs} runs ({dest.num_failing} failing)"
    )
    return 0 if clean else 1


def _collect(args) -> int:
    """Append shards for a subject to a store directory."""
    from repro.harness.experiment import build_plan
    from repro.harness.parallel import run_trials_sharded
    from repro.store import ShardStore

    code, faults = _cli_faults(args)
    if code:
        return code

    subject = SUBJECTS[args.subject]()
    if args.runs is None:
        args.runs = subject.trial_budget
    program = subject.build_program()
    plan = build_plan(
        subject,
        program,
        args.sampling,
        rate=args.rate,
        training_runs=args.training_runs,
        seed=args.seed if args.seed is not None else 0,
    )
    seed = args.seed
    if seed is None:
        try:
            seed = ShardStore.open(args.out).next_seed
        except FileNotFoundError:
            seed = 0
    print(
        f"collecting {args.runs} trials of {args.subject} into {args.out} "
        f"(seeds {seed}..{seed + args.runs - 1}, {args.sampling} sampling)...",
        file=sys.stderr,
    )
    from repro import obs

    obs_on = bool(args.metrics or args.trace)
    if obs_on:
        obs.configure(trace_path=args.trace)
    try:
        store = run_trials_sharded(
            subject,
            args.runs,
            plan,
            args.out,
            seed=seed,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            max_attempts=args.max_attempts,
            chunk_timeout=args.chunk_timeout,
            faults=faults,
        )
        if args.metrics:
            obs.write_metrics(args.metrics)
            print(f"wrote metrics to {args.metrics}", file=sys.stderr)
        if args.trace:
            print(f"wrote trace spans to {args.trace}", file=sys.stderr)
    finally:
        if obs_on:
            obs.shutdown()
    report = getattr(store, "last_collection", None)
    if report is not None and report.retries:
        print(
            f"supervision: {report.attempts} attempts for {report.n_chunks} "
            f"chunks ({report.retries} retries: {report.worker_deaths} dead "
            f"workers, {report.timeouts} timeouts, {report.corrupt_shards} "
            "corrupt shards quarantined)",
            file=sys.stderr,
        )
    print(
        f"store now holds {store.n_shards} shards, {store.n_runs} runs "
        f"({store.num_failing} failing)"
    )
    return 0


def _bakeoff(args) -> int:
    """Run the measure bake-off matrix and report / gate the results."""
    import json

    from repro.harness.bakeoff import compare_to_baseline, run_bakeoff
    from repro.harness.tables import format_bakeoff_table

    document = run_bakeoff(
        SUBJECTS,
        subject_names=args.subjects,
        measure_names=args.measures,
        runs=args.runs,
        seed=args.seed,
        jobs=args.jobs,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(format_bakeoff_table(document))
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare_to_baseline(document, baseline)
        for reg in regressions:
            print(f"baseline: {reg}", file=sys.stderr)
        if regressions:
            return 1
        print(
            f"baseline: importance row matches or improves on {args.baseline}",
            file=sys.stderr,
        )
    return 0


def _analyze_store(args) -> int:
    """Analyse a shard store: streaming pruning, then (optionally) elimination."""
    from repro.core.engine import AnalysisEngine
    from repro.store import ShardStore

    store = ShardStore.open(args.archive)
    print(
        f"opened shard store: {store.n_shards} shards, {store.n_runs} runs "
        f"({store.num_failing} failing), subject {store.manifest.subject}",
        file=sys.stderr,
    )
    if not args.no_audit:
        audit = store.audit()
        for name in audit.rolled_forward:
            print(f"audit: recovered committed shard {name}", file=sys.stderr)
        if audit.quarantined:
            for rec in audit.quarantined:
                print(
                    f"audit: quarantined {rec.filename} [{rec.reason}] "
                    f"({rec.n_runs} runs lost"
                    + (
                        f", seeds {rec.seed_start}.."
                        f"{rec.seed_start + rec.n_runs - 1}"
                        if rec.seed_start is not None and rec.n_runs
                        else ""
                    )
                    + f"): {rec.detail}",
                    file=sys.stderr,
                )
            print(
                f"audit: {audit.runs_lost} of "
                f"{audit.runs_lost + store.n_runs} runs lost to quarantine; "
                f"analysis continues over the {store.n_runs} surviving runs",
                file=sys.stderr,
            )
        if audit.orphans:
            print(
                "audit: ignoring unregistered shard files: "
                + ", ".join(audit.orphans),
                file=sys.stderr,
            )
        if store.n_shards == 0:
            print("audit left no usable shards; nothing to analyse", file=sys.stderr)
            return 1
    # All analysis goes through the engine -- at --jobs 1 the same
    # partitioned code path runs inline, so serial and parallel output
    # cannot drift apart.  Pruning needs only the sufficient statistics,
    # streamed shard by shard; no run matrix is materialised for it.
    engine = AnalysisEngine(jobs=args.jobs)
    analysis = engine.analyze_store(
        store,
        method=args.method,
        strategy=DiscardStrategy(args.strategy),
        max_predictors=args.top,
        stats_only=args.stats_only,
        measure=getattr(args, "measure", measures.DEFAULT_MEASURE),
    )
    scores = analysis.scores
    pruning = analysis.pruning
    print(
        f"pruning kept {pruning.n_kept}/{pruning.n_initial} predicates "
        "(scored incrementally)"
    )

    if args.stats_only:
        # Rank the pruning survivors under the selected registry measure.
        # Python's sort is stable, so equal values keep ascending
        # predicate-index order -- for the default measure this is the
        # exact historical Importance ordering (the registry entry
        # delegates to importance_scores).
        table = store.table()
        values = analysis.measure_values
        order = sorted(
            pruning.kept_indices.tolist(),
            key=lambda i: values[i],
            reverse=True,
        )[: args.top]
        label = analysis.measure.capitalize()
        width = max(10, len(label))
        print(f"{label:>{width}}  {'Increase':>8}  {'F':>6}  {'S':>6}  predicate")
        for i in order:
            print(
                f"{values[i]:>{width}.3f}  {scores.increase[i]:>8.3f}  "
                f"{int(scores.F[i]):>6}  {int(scores.S[i]):>6}  "
                f"{table.predicates[i].name}"
            )
        return 0

    reports, truth = analysis.reports, analysis.truth
    elimination = analysis.elimination
    co = None
    bug_ids = None
    if truth is not None and truth.bug_ids:
        bug_ids = list(truth.bug_ids)
        co = cooccurrence_table(
            reports, truth, [s.predicate.index for s in elimination.selected]
        )
    print(f"elimination selected {len(elimination)}")
    print(format_predictor_table(elimination, co, bug_ids=bug_ids))
    return 0


def _analyze(args) -> int:
    """Re-run the analysis half of the pipeline on a saved archive."""
    from repro.core.engine import AnalysisEngine
    from repro.core.io import load_reports

    reports, truth = load_reports(args.archive)
    print(
        f"loaded {reports.n_runs} runs ({reports.num_failing} failing), "
        f"{reports.n_predicates} predicates",
        file=sys.stderr,
    )
    analysis = AnalysisEngine(jobs=args.jobs).analyze_reports(
        reports,
        truth=truth,
        method=args.method,
        strategy=DiscardStrategy(args.strategy),
        max_predictors=args.top,
        measure=getattr(args, "measure", measures.DEFAULT_MEASURE),
    )
    pruning = analysis.pruning
    elimination = analysis.elimination
    co = None
    bug_ids = None
    if truth is not None and truth.bug_ids:
        bug_ids = list(truth.bug_ids)
        co = cooccurrence_table(
            reports, truth, [s.predicate.index for s in elimination.selected]
        )
    print(
        f"pruning kept {pruning.n_kept}/{pruning.n_initial} predicates; "
        f"elimination selected {len(elimination)}"
    )
    print(format_predictor_table(elimination, co, bug_ids=bug_ids))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
