"""Table 4: predictors for CCRYPT.

Paper shape: a one-bug subject yields a very short predictor list (the
paper got two predicates, the first a sub-bug predictor of the second,
recognisable from its affinity list), all pointing at the single
input-validation bug, which is deterministic.
"""

from repro.core.affinity import affinity_list
from repro.core.truth import cooccurrence_table, dominant_bug
from repro.harness.tables import format_predictor_table

from benchmarks.conftest import write_result


def test_table4_ccrypt(benchmark, ccrypt_bench):
    reports, truth = ccrypt_bench.reports, ccrypt_bench.truth
    elimination = ccrypt_bench.elimination
    selected = [s.predicate.index for s in elimination.selected]
    assert 1 <= len(selected) <= 6

    # Every selected predictor points at the single bug.
    for idx in selected:
        dom = dominant_bug(reports, truth, idx)
        assert dom is not None and dom[0] == "ccrypt1"

    # The bug is deterministic with respect to its top predictor:
    # Failure(P) = 1.0 (S = 0).
    top = elimination.selected[0]
    assert top.effective.row.S == 0
    assert top.effective.row.failure == 1.0

    # Affinity: when several predicates are selected, the later ones are
    # related to the first (the paper's sub-bug identification); the
    # anchor's removal must deflate them heavily.
    entries = benchmark.pedantic(
        lambda: affinity_list(reports, selected[0], top=10),
        rounds=2,
        iterations=1,
    )
    if len(selected) > 1:
        related = {e.predicate.index for e in entries}
        assert selected[1] in related

    co = cooccurrence_table(reports, truth, selected)
    write_result(
        "table4.txt",
        format_predictor_table(elimination, co, bug_ids=list(truth.bug_ids)),
    )
