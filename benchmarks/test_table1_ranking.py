"""Table 1: comparison of ranking strategies for MOSS (no elimination).

The paper's qualitative claims, which these benches assert:

(a) sorting by F(P) surfaces predicates true in many failing *and* many
    successful runs (huge white bands, tiny Increase);
(b) sorting by Increase(P) surfaces near-deterministic predicates with
    tiny failure counts (sub-bug predictors);
(c) the harmonic mean surfaces predicates with both high Increase and
    substantial failure counts.
"""

import pytest

from repro.core.ranking import RankingStrategy, rank_predicates
from repro.harness.tables import format_ranking_table

from benchmarks.conftest import write_result


@pytest.fixture(scope="module")
def rankings(moss_bench):
    reports = moss_bench.reports
    return {
        strategy: rank_predicates(reports, strategy, top=200)
        for strategy in RankingStrategy
    }


def test_table1a_sort_by_failure_count(benchmark, moss_bench, rankings):
    reports = moss_bench.reports
    result = benchmark.pedantic(
        lambda: rank_predicates(reports, RankingStrategy.BY_FAILURE_COUNT, top=10),
        rounds=3,
        iterations=1,
    )
    top = rankings[RankingStrategy.BY_FAILURE_COUNT].entries[:10]
    assert top, "ranking must be non-empty"
    # High-F predicates are weakly correlated: most carry many
    # successful runs too (the large white band).
    with_successes = sum(1 for e in top if e.row.S > e.row.F * 0.5)
    assert with_successes >= 5
    # And their Increase scores are far from 1.0.
    assert sum(1 for e in top if e.row.increase < 0.5) >= 5
    write_result(
        "table1a.txt",
        format_ranking_table(rankings[RankingStrategy.BY_FAILURE_COUNT], "Table 1(a)"),
    )


def test_table1b_sort_by_increase(benchmark, moss_bench, rankings):
    reports = moss_bench.reports
    benchmark.pedantic(
        lambda: rank_predicates(reports, RankingStrategy.BY_INCREASE, top=10),
        rounds=3,
        iterations=1,
    )
    top = rankings[RankingStrategy.BY_INCREASE].entries[:10]
    assert top
    # Near-deterministic thermometers ...
    assert all(e.row.increase > 0.5 for e in top)
    # ... but tiny failure counts relative to the population (sub-bug
    # predictors): compare against strategy (c)'s coverage.
    best_f_by_importance = max(
        e.row.F for e in rankings[RankingStrategy.BY_IMPORTANCE].entries[:10]
    )
    median_f = sorted(e.row.F for e in top)[len(top) // 2]
    assert median_f <= best_f_by_importance
    write_result(
        "table1b.txt",
        format_ranking_table(rankings[RankingStrategy.BY_INCREASE], "Table 1(b)"),
    )


def test_table1c_harmonic_mean(benchmark, moss_bench, rankings):
    reports = moss_bench.reports
    benchmark.pedantic(
        lambda: rank_predicates(reports, RankingStrategy.BY_IMPORTANCE, top=10),
        rounds=3,
        iterations=1,
    )
    top = rankings[RankingStrategy.BY_IMPORTANCE].entries[:10]
    assert top
    # Balanced: good Increase AND meaningful failure coverage.
    assert all(e.row.increase > 0.2 for e in top[:5])
    assert sum(e.row.F for e in top[:5]) >= 40
    write_result(
        "table1c.txt",
        format_ranking_table(rankings[RankingStrategy.BY_IMPORTANCE], "Table 1(c)"),
    )
