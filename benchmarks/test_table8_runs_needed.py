"""Table 8: minimum number of runs needed to isolate each bug predictor.

Methodology (Section 4.3): for each isolated bug take its predictor P,
compute ``Importance_N(P)`` over run prefixes, and report the smallest N
whose importance is within 0.2 of the full-population importance, along
with F(P) over those N runs.

Shape claims:

* every isolated bug converges with a handful-to-tens of observed
  failing runs (the paper: 10-40);
* required N varies by an order of magnitude or more across bugs;
* rarer bugs need more total runs -- "results degrade gracefully with
  fewer runs, with the predictors for rare bugs dropping out first".
"""

import numpy as np

from repro.core.runs_needed import runs_needed
from repro.core.truth import dominant_bug
from repro.harness.tables import format_runs_needed_table

from benchmarks.conftest import write_result


def _chosen_predictors(exp):
    """One predictor per bug: the highest-ranked selection dominating it."""
    chosen = {}
    for sel in exp.elimination.selected:
        dom = dominant_bug(exp.reports, exp.truth, sel.predicate.index)
        if dom is None:
            continue
        chosen.setdefault(dom[0], sel.predicate.index)
    return chosen


def test_table8_runs_needed(benchmark, all_benches):
    schedule = list(range(100, 1000, 100)) + list(range(1000, 26000, 1000))

    results = {}
    bug_rarity = {}
    for name, exp in all_benches.items():
        chosen = _chosen_predictors(exp)
        per_bug = {}
        for bug, pred in chosen.items():
            per_bug[bug] = runs_needed(exp.reports, pred, schedule=schedule)
            bug_rarity[(name, bug)] = int(exp.truth.bug_profile(bug, exp.reports).sum())
        results[name] = per_bug

    # Benchmark one representative convergence computation.
    moss = all_benches["moss"]
    moss_chosen = _chosen_predictors(moss)
    some_pred = next(iter(moss_chosen.values()))
    benchmark.pedantic(
        lambda: runs_needed(moss.reports, some_pred, schedule=schedule),
        rounds=2,
        iterations=1,
    )

    converged = {
        (name, bug): res
        for name, per_bug in results.items()
        for bug, res in per_bug.items()
        if res.runs_needed is not None
    }
    assert len(converged) >= 6, "most predictors must converge in-population"

    # F(P) at convergence is small: tens of failing observations suffice.
    f_values = [res.failing_true_at_n for res in converged.values()]
    assert all(f <= 120 for f in f_values)
    assert any(f <= 40 for f in f_values)

    # Required N spans a wide range across bugs.
    n_values = [res.runs_needed for res in converged.values()]
    assert max(n_values) >= 4 * min(n_values), n_values

    # Rarer bugs (smaller profiles) tend to need more runs: compare each
    # experiment's rarest and commonest converged bug.
    for name, per_bug in results.items():
        conv = {
            b: r for b, r in per_bug.items() if r.runs_needed is not None
        }
        if len(conv) < 2:
            continue
        rarest = min(conv, key=lambda b: bug_rarity[(name, b)])
        commonest = max(conv, key=lambda b: bug_rarity[(name, b)])
        if bug_rarity[(name, rarest)] * 3 <= bug_rarity[(name, commonest)]:
            assert conv[rarest].runs_needed >= conv[commonest].runs_needed, (
                name,
                rarest,
                commonest,
            )

    write_result("table8.txt", format_runs_needed_table(results))
