"""Table 9: L1-regularised logistic regression on MOSS.

The paper's striking finding: "all selected predicates are either
sub-bug or super-bug predictors" -- the baseline's top-10 contains none
of the balanced per-bug predictors the elimination algorithm finds.
"""

from repro.baselines.logistic import l1_logistic_regression
from repro.core.truth import classify_predictor
from repro.harness.tables import format_logistic_table

from benchmarks.conftest import write_result


def test_table9_logistic_regression(benchmark, moss_bench):
    reports, truth = moss_bench.reports, moss_bench.truth

    result = benchmark.pedantic(
        lambda: l1_logistic_regression(reports, lam=0.02, max_iter=400),
        rounds=1,
        iterations=1,
    )
    ranked = result.top_predicates(reports, k=10)
    assert ranked, "the baseline must select something"

    classes = [
        classify_predictor(reports, truth, pred.index) for pred, _coef in ranked
    ]

    # The paper's claim, softened for our scale: the list is dominated
    # by sub-bug and super-bug predictors rather than balanced per-bug
    # predictors.
    degenerate = sum(1 for c in classes if c in ("sub-bug", "super-bug", "none"))
    assert degenerate >= len(classes) * 0.6, list(zip([p.name for p, _ in ranked], classes))

    # Contrast: the elimination algorithm's top picks are mostly proper
    # per-bug predictors.
    cbi_classes = [
        classify_predictor(reports, truth, s.predicate.index)
        for s in moss_bench.elimination.selected[:6]
    ]
    assert cbi_classes.count("bug") > 0
    assert cbi_classes.count("bug") >= classes.count("bug")

    lines = format_logistic_table(ranked)
    annotated = lines + "\nclasses: " + ", ".join(classes)
    write_result("table9.txt", annotated)
