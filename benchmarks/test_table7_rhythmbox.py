"""Table 7: predictors for RHYTHMBOX.

Paper shape: an event-driven system where stacks are useless (every
crash bottoms out in the main loop), yet the predictor list isolates the
timer race and the unsafe view-disposal pattern as distinct bugs.
"""

from repro.core.truth import cooccurrence_table, dominant_bug
from repro.harness.tables import format_predictor_table

from benchmarks.conftest import write_result


def test_table7_rhythmbox(benchmark, rhythmbox_bench):
    reports, truth = rhythmbox_bench.reports, rhythmbox_bench.truth
    elimination = rhythmbox_bench.elimination
    selected = [s.predicate.index for s in elimination.selected]
    assert selected

    def analyse():
        dominated = {}
        for idx in selected:
            dom = dominant_bug(reports, truth, idx)
            if dom is not None:
                dominated.setdefault(dom[0], idx)
        return dominated

    dominated = benchmark.pedantic(analyse, rounds=2, iterations=1)
    assert "rb1" in dominated, "the timer race must be isolated"
    assert "rb2" in dominated, "the disposal pattern must be isolated"

    # Stack uselessness: every crash goes through the unchanging event
    # loop, so distinct bugs share the loop frames.
    stacks = [s for s in reports.stacks if s]
    assert stacks
    assert all("main_loop" in s for s in stacks)
    # ... and the number of distinct signatures is small relative to the
    # number of crashes.
    assert len(set(stacks)) <= max(len(stacks) // 4, 8)

    co = cooccurrence_table(reports, truth, selected)
    write_result(
        "table7.txt",
        format_predictor_table(elimination, co, bug_ids=list(truth.bug_ids)),
    )
