"""Section 4's sampling validation: sampled vs. unsampled results.

"We have validated this approach by comparing the results for each
experiment with results obtained with no sampling at all ... The results
are identical except for [minor differences]: sometimes a different but
logically equivalent predicate is chosen, the ranking of predictors of
different bugs is slightly different, or one or the other version has a
few extra, weak predictors at the tail end of the list."

We compare which *bugs* the two configurations isolate, which is the
invariant the paper cares about.
"""

import pytest

from repro.core.elimination import eliminate
from repro.core.truth import dominant_bug
from repro.harness.experiment import Experiment, run_experiment
from repro.subjects.moss import MossSubject

from benchmarks.conftest import bench_runs, write_result

_RUNS = max(bench_runs("moss") // 2, 600)


@pytest.fixture(scope="module")
def adaptive_result():
    return run_experiment(
        Experiment(
            subject=MossSubject(),
            n_runs=_RUNS,
            sampling="adaptive",
            training_runs=120,
            seed=42,
        )
    )


@pytest.fixture(scope="module")
def full_result():
    return run_experiment(
        Experiment(
            subject=MossSubject(),
            n_runs=_RUNS,
            sampling="full",
            training_runs=0,
            seed=42,
        )
    )


def _dominated(exp, top=10):
    out = set()
    for sel in exp.elimination.selected[:top]:
        dom = dominant_bug(exp.reports, exp.truth, sel.predicate.index)
        if dom is not None:
            out.add(dom[0])
    return out


def test_sampled_and_unsampled_agree_on_bugs(benchmark, adaptive_result, full_result):
    benchmark.pedantic(
        lambda: eliminate(
            adaptive_result.reports,
            candidates=adaptive_result.pruning.kept,
            max_predictors=10,
        ),
        rounds=2,
        iterations=1,
    )

    sampled_bugs = _dominated(adaptive_result)
    full_bugs = _dominated(full_result)
    assert sampled_bugs and full_bugs

    # The two configurations must agree on the substantial bugs; minor
    # tail differences are expected (the paper saw them too).
    core = {b for b in full_bugs if int(
        full_result.truth.bug_profile(b, full_result.reports).sum()) >= 20}
    missing = core - sampled_bugs
    assert len(missing) <= 1, (
        f"sampling lost bugs {missing}; sampled={sampled_bugs}, full={full_bugs}"
    )

    write_result(
        "sampling_validation.txt",
        "adaptive sampling isolated: " + ", ".join(sorted(sampled_bugs))
        + "\nfull observation isolated: " + ", ".join(sorted(full_bugs)),
    )


def test_sampling_reduces_observation_volume(benchmark, adaptive_result, full_result):
    """Sampling's point: far fewer observations per run."""
    sampled_volume = adaptive_result.reports.site_counts.sum()
    full_volume = full_result.reports.site_counts.sum()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert sampled_volume < full_volume * 0.8
