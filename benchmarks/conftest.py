"""Shared benchmark fixtures: one experiment per subject, paper-scale-ish.

Data collection (running thousands of instrumented trials) happens once
per session in these fixtures; the ``benchmark`` fixture then times the
*analysis* (the paper's algorithm), which is the part the paper claims
scales.  Every bench writes its rendered table to
``benchmarks/results/``, which is what EXPERIMENTS.md quotes.

Run counts are chosen so each subject's rarest triggered bug appears in
at least a handful of failing runs; they can be scaled with the
``REPRO_BENCH_SCALE`` environment variable (a float multiplier).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.elimination import DiscardStrategy
from repro.harness.experiment import Experiment, run_experiment
from repro.subjects.bc import BcSubject
from repro.subjects.ccrypt import CcryptSubject
from repro.subjects.exif import ExifSubject
from repro.subjects.moss import MossSubject
from repro.subjects.rhythmbox import RhythmboxSubject

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Baseline run counts per subject (paper: ~32,000 each; these are sized
#: for a laptop while keeping every bug's failure count isolable).
BASE_RUNS = {
    "moss": 2500,
    "ccrypt": 2000,
    "bc": 1500,
    "exif": 5000,
    "rhythmbox": 2000,
}

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_runs(subject: str) -> int:
    """Scaled run count for a subject."""
    return max(int(BASE_RUNS[subject] * _SCALE), 200)


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")


def _experiment(subject, n_runs, **kwargs):
    config = Experiment(
        subject=subject,
        n_runs=n_runs,
        sampling=kwargs.pop("sampling", "adaptive"),
        training_runs=kwargs.pop("training_runs", 150),
        seed=kwargs.pop("seed", 0),
        strategy=kwargs.pop("strategy", DiscardStrategy.DISCARD_ALL),
        max_predictors=kwargs.pop("max_predictors", 20),
        **kwargs,
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def moss_bench():
    """The Section 4.1 validation experiment (Tables 1, 3, 9)."""
    return _experiment(MossSubject(), bench_runs("moss"))


@pytest.fixture(scope="session")
def ccrypt_bench():
    return _experiment(CcryptSubject(), bench_runs("ccrypt"))


@pytest.fixture(scope="session")
def bc_bench():
    return _experiment(BcSubject(), bench_runs("bc"))


@pytest.fixture(scope="session")
def exif_bench():
    return _experiment(ExifSubject(), bench_runs("exif"))


@pytest.fixture(scope="session")
def rhythmbox_bench():
    return _experiment(RhythmboxSubject(), bench_runs("rhythmbox"))


@pytest.fixture(scope="session")
def all_benches(moss_bench, ccrypt_bench, bc_bench, exif_bench, rhythmbox_bench):
    """All five experiments, keyed by subject name (Table 2, Table 8)."""
    return {
        "moss": moss_bench,
        "ccrypt": ccrypt_bench,
        "bc": bc_bench,
        "exif": exif_bench,
        "rhythmbox": rhythmbox_bench,
    }
