"""Extension bench: on-line failure prediction (Section 5).

After learning predictors offline, monitor fresh runs and measure how
often a crash is preceded by an in-flight alert (recall) and how often
alerts are raised in runs that then succeed (false-alarm rate).  For
CCRYPT's deterministic bug the predictor *is* the cause condition, so
recall should be essentially perfect with near-zero false alarms.
"""

import random

from repro.core.online import monitor_from_elimination
from repro.instrument.sampling import SamplingPlan
from repro.subjects import base as subject_base

from benchmarks.conftest import write_result

_FRESH_RUNS = 400


def test_online_prediction_quality(benchmark, ccrypt_bench):
    subject = ccrypt_bench.config.subject
    program = ccrypt_bench.program
    monitor = monitor_from_elimination(
        program.runtime, ccrypt_bench.elimination, top=3
    )

    def replay():
        monitor.install()
        rng = random.Random(424242)
        predicted = missed = false_alarm = clean = 0
        try:
            for i in range(_FRESH_RUNS):
                job = subject.generate_input(rng)
                monitor.reset()
                subject_base.begin_truth_capture()
                program.begin_run(SamplingPlan.full(), seed=5_000_000 + i)
                crashed = False
                try:
                    program.func(subject.entry)(job)
                except Exception:
                    crashed = True
                program.end_run()
                subject_base.end_truth_capture()
                if crashed and monitor.fired:
                    predicted += 1
                elif crashed:
                    missed += 1
                elif monitor.fired:
                    false_alarm += 1
                else:
                    clean += 1
        finally:
            monitor.uninstall()
        return predicted, missed, false_alarm, clean

    predicted, missed, false_alarm, clean = benchmark.pedantic(
        replay, rounds=1, iterations=1
    )

    crashes = predicted + missed
    assert crashes > 0, "the fresh population must contain failures"
    recall = predicted / crashes
    assert recall >= 0.9, f"in-flight recall {recall:.2f}"
    successes = false_alarm + clean
    assert false_alarm <= successes * 0.05

    write_result(
        "online_prediction.txt",
        (
            f"fresh runs: {_FRESH_RUNS}\n"
            f"crashes predicted in-flight: {predicted}/{crashes} "
            f"(recall {recall:.2%})\n"
            f"false alarms: {false_alarm}/{successes} successful runs"
        ),
    )
