"""Table 3: MOSS failure predictors under nonuniform (adaptive) sampling.

The validation experiment of Section 4.1.  Shape claims:

* the selected predictors each spike at one bug (strong dominant-bug
  co-occurrence);
* together the top predictors cover every bug that actually caused
  failures and is predicable at all;
* the never-triggered bug (moss8) cannot appear;
* the harmless overrun (moss7) gets no dedicated predictor;
* selection is low-redundancy: far fewer predictors than pruning
  survivors.
"""

import numpy as np
import pytest

from repro.core.elimination import eliminate
from repro.core.truth import bugs_covered, cooccurrence_table, dominant_bug
from repro.harness.tables import format_predictor_table

from benchmarks.conftest import write_result


def test_table3_moss_validation(benchmark, moss_bench):
    reports, truth = moss_bench.reports, moss_bench.truth
    candidates = moss_bench.pruning.kept

    elimination = benchmark.pedantic(
        lambda: eliminate(reports, candidates=candidates, max_predictors=20),
        rounds=2,
        iterations=1,
    )
    selected = [s.predicate.index for s in elimination.selected]
    assert selected

    co = cooccurrence_table(reports, truth, selected)

    # Each top predictor spikes at one bug: its dominant bug accounts
    # for a majority of its failing runs (allowing overlap noise).
    spikes = 0
    dominated = set()
    for idx in selected[:8]:
        row = co[idx]
        total = sum(row.values())
        if total == 0:
            continue
        bug, count = max(row.items(), key=lambda kv: kv[1])
        if count >= total * 0.5:
            spikes += 1
            dominated.add(bug)
    assert spikes >= 4, f"expected strong per-bug spikes, got {spikes}"

    # Coverage: every triggered bug with a meaningful profile is
    # represented among the selections (Lemma 3.1 in the field).
    covered = bugs_covered(reports, truth, selected)
    for bug in truth.triggered_bugs(reports):
        profile = int(truth.bug_profile(bug, reports).sum())
        if profile >= 10:
            assert bug in covered, f"{bug} ({profile} failures) uncovered"

    # moss8 never triggers; moss7 never earns a dedicated predictor.
    assert not truth.bug_profile("moss8", reports).any()
    assert "moss8" not in dominated
    assert "moss7" not in dominated

    # Low redundancy: the list is much shorter than the pruned set.
    assert len(selected) <= max(int(candidates.sum()) // 3, 8)

    write_result(
        "table3.txt",
        format_predictor_table(elimination, co, bug_ids=list(truth.bug_ids)),
    )
