"""Section 5's elimination variants: the three run-discard strategies.

Claims reproduced:

* all three strategies still cover the same substantial bugs;
* strategy (1) discards the most runs, (3) discards none;
* after selecting P under any strategy, the complement of P does not
  retain a negative Increase score (the Section 5 theorem).
"""

from repro.core.elimination import DiscardStrategy, eliminate
from repro.core.scores import compute_scores
from repro.core.truth import dominant_bug

from benchmarks.conftest import write_result


def _dominated(exp, elimination, top=10):
    out = set()
    for sel in elimination.selected[:top]:
        dom = dominant_bug(exp.reports, exp.truth, sel.predicate.index)
        if dom is not None:
            out.add(dom[0])
    return out


def test_discard_strategy_variants(benchmark, moss_bench):
    reports = moss_bench.reports
    candidates = moss_bench.pruning.kept

    results = {}
    for strategy in DiscardStrategy:
        results[strategy] = eliminate(
            reports, candidates=candidates, strategy=strategy, max_predictors=15
        )

    benchmark.pedantic(
        lambda: eliminate(
            reports,
            candidates=candidates,
            strategy=DiscardStrategy.RELABEL,
            max_predictors=15,
        ),
        rounds=2,
        iterations=1,
    )

    bug_sets = {s: _dominated(moss_bench, r) for s, r in results.items()}

    # Substantial bugs are found under every strategy.
    substantial = {
        b
        for b in moss_bench.truth.bug_ids
        if int(moss_bench.truth.bug_profile(b, reports).sum()) >= 25
    }
    for strategy, bugs in bug_sets.items():
        missing = substantial - bugs
        assert len(missing) <= 1, f"{strategy}: missed {missing}"

    # Strategy 1 is the most aggressive discarder; strategy 3 discards
    # nothing.
    discarded_1 = sum(s.runs_discarded for s in results[DiscardStrategy.DISCARD_ALL].selected)
    discarded_2 = sum(
        s.runs_discarded for s in results[DiscardStrategy.DISCARD_FAILING].selected
    )
    discarded_3 = sum(s.runs_discarded for s in results[DiscardStrategy.RELABEL].selected)
    assert discarded_1 >= discarded_2 >= discarded_3 == 0

    # Section 5 theorem: after strategy-1 selection of P, Increase(~P)
    # is non-negative where defined.
    first = results[DiscardStrategy.DISCARD_ALL].selected[0].predicate
    comp = reports.table.complement(first.index)
    if comp is not None:
        remaining = ~reports.true_mask(first.index)
        after = compute_scores(reports, run_mask=remaining)
        if after.defined[comp]:
            assert after.increase[comp] >= -1e-9

    lines = []
    for strategy, result in results.items():
        bugs = ", ".join(sorted(bug_sets[strategy]))
        lines.append(
            f"{strategy.name}: {len(result)} predictors, bugs: {bugs}"
        )
    write_result("discard_strategies.txt", "\n".join(lines))
