"""Table 6: predictors for EXIF.

Paper shape: three predicates, each predicting a distinct previously
unknown crashing bug ("i < 0", "maxlen > 1900", "o + s > buf_size is
TRUE"), including the worked example whose crash site (the save-path
memcpy) is far from the cause (the load-path early return).
"""

from repro.core.truth import cooccurrence_table, dominant_bug
from repro.harness.tables import format_predictor_table

from benchmarks.conftest import write_result


def test_table6_exif(benchmark, exif_bench):
    reports, truth = exif_bench.reports, exif_bench.truth
    elimination = exif_bench.elimination
    selected = [s.predicate.index for s in elimination.selected]
    assert selected

    def analyse():
        dominated = {}
        for idx in selected:
            dom = dominant_bug(reports, truth, idx)
            if dom is not None:
                dominated.setdefault(dom[0], idx)
        return dominated

    dominated = benchmark.pedantic(analyse, rounds=2, iterations=1)

    # The two common bugs must each own a predictor; the rare exif3 must
    # too whenever it produced enough failures to be isolable at all.
    assert "exif1" in dominated
    assert "exif2" in dominated
    exif3_failures = int(truth.bug_profile("exif3", reports).sum())
    if exif3_failures >= 8:
        assert "exif3" in dominated, (
            f"exif3 had {exif3_failures} failures but no predictor"
        )

    # The exif3 predictor, when present, is the paper's o+s>buf_size
    # condition from the *load* phase -- not the memcpy crash site.
    if "exif3" in dominated:
        name = reports.table.predicates[dominated["exif3"]].name
        assert "buf_size" in name or "o +" in name or "s >" in name, name

    # The predictors for different bugs are distinct predicates.
    assert len(set(dominated.values())) == len(dominated)

    co = cooccurrence_table(reports, truth, selected)
    write_result(
        "table6.txt",
        format_predictor_table(elimination, co, bug_ids=list(truth.bug_ids)),
    )
