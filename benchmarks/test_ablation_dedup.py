"""Ablation: intra-site logical redundancy elimination (Section 3.4).

"We studied an optimization in which we eliminated logically redundant
predicates within instrumentation sites prior to running the iterative
algorithm.  However, the elimination algorithm proved to be
sufficiently powerful that we obtained nearly identical experimental
results with and without this optimization, indicating it is
unnecessary."

This bench measures both configurations on MOSS and asserts the paper's
finding: substantial predicate-count reduction up front, nearly
identical isolated-bug outcome.
"""

from repro.core.dedup import intra_site_dedup
from repro.core.elimination import eliminate
from repro.core.truth import dominant_bug

from benchmarks.conftest import write_result


def _dominated(exp, elimination, top=12):
    out = set()
    for sel in elimination.selected[:top]:
        dom = dominant_bug(exp.reports, exp.truth, sel.predicate.index)
        if dom is not None:
            out.add(dom[0])
    return out


def test_ablation_intra_site_dedup(benchmark, moss_bench):
    reports = moss_bench.reports
    candidates = moss_bench.pruning.kept

    dedup = benchmark.pedantic(
        lambda: intra_site_dedup(reports), rounds=2, iterations=1
    )
    # The schemes are heavily redundant within sites (6 sign predicates
    # over one value): deduplication removes a large share outright.
    assert dedup.n_removed > reports.n_predicates * 0.3

    without = eliminate(reports, candidates=candidates, max_predictors=15)
    with_dedup = eliminate(
        reports,
        candidates=candidates & dedup.representative,
        max_predictors=15,
    )

    bugs_without = _dominated(moss_bench, without)
    bugs_with = _dominated(moss_bench, with_dedup)

    # "Nearly identical results": the same bugs are isolated, up to one
    # weak tail bug.
    assert len(bugs_without ^ bugs_with) <= 1, (bugs_without, bugs_with)

    write_result(
        "ablation_dedup.txt",
        (
            f"predicates: {reports.n_predicates}, intra-site duplicates "
            f"removed: {dedup.n_removed} ({dedup.n_classes} classes)\n"
            f"bugs without dedup: {', '.join(sorted(bugs_without))}\n"
            f"bugs with dedup:    {', '.join(sorted(bugs_with))}"
        ),
    )
