"""Section 2's performance claim: sampling keeps overhead low.

"We have found that a sampling rate of 1/100 in most applications keeps
the performance overhead of instrumentation low."  In C the transformed
fast path costs a counter decrement; in Python every observation
opportunity still pays a call, so our absolute overheads are larger —
the *ordering* is what we assert: uninstrumented < sparsely sampled <
fully observed.
"""

import random
import time

from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.subjects import base as subject_base
from repro.subjects.moss import MossSubject
from repro.subjects.moss import program as moss_program
from repro.subjects.moss.generator import generate_job

from benchmarks.conftest import write_result

_JOBS = 40


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_sampling_overhead_ordering(benchmark):
    subject = MossSubject()
    rng = random.Random(7)
    jobs = [generate_job(rng) for _ in range(_JOBS)]

    def run_uninstrumented():
        for job in jobs:
            subject_base.begin_truth_capture()
            try:
                moss_program.main(job)
            except Exception:
                pass
            subject_base.end_truth_capture()

    program = instrument_source(subject.source(), "moss-overhead")
    entry = program.func("main")

    def run_instrumented(plan):
        def inner():
            for i, job in enumerate(jobs):
                subject_base.begin_truth_capture()
                program.begin_run(plan, seed=i)
                try:
                    entry(job)
                except Exception:
                    pass
                program.end_run()
                subject_base.end_truth_capture()
        return inner

    base_s = min(_timed(run_uninstrumented) for _ in range(2))
    sparse_s = min(_timed(run_instrumented(SamplingPlan.uniform(0.01))) for _ in range(2))
    full_s = min(_timed(run_instrumented(SamplingPlan.full())) for _ in range(2))

    benchmark.pedantic(run_instrumented(SamplingPlan.uniform(0.01)), rounds=1, iterations=1)

    assert base_s < sparse_s < full_s
    sparse_over = sparse_s / base_s
    full_over = full_s / base_s
    # Sparse sampling must recover a substantial share of the full
    # observation cost.
    assert sparse_over < full_over * 0.9

    write_result(
        "instrumentation_overhead.txt",
        (
            f"{_JOBS} MOSS jobs\n"
            f"uninstrumented: {base_s * 1000:8.1f} ms\n"
            f"sampled 1/100:  {sparse_s * 1000:8.1f} ms ({sparse_over:4.1f}x)\n"
            f"full observ.:   {full_s * 1000:8.1f} ms ({full_over:4.1f}x)\n"
            "(Python pays per-opportunity call overhead that C's "
            "fast path avoids; the ordering is the reproduced claim)"
        ),
    )


def test_fast_sampler_noop_floor_not_regressed(benchmark):
    """The inlined fast path may not cost more than the legacy sampler.

    The raw-speed pass inlined the "not sampled" countdown decrement
    into every observation helper precisely to lower the per-opportunity
    floor that dominates sparse deployments.  This gate holds that
    floor: at a near-zero rate, where essentially every call takes the
    no-op branch, the fast path must stay within a generous noise
    margin of the legacy dispatch sampler it replaced (it is typically
    measurably *under* it; `BENCH_collection.json`'s `sampler_overhead`
    scenario records the trajectory).
    """
    from repro.core.predicates import PredicateTable, Scheme
    from repro.instrument.runtime import Runtime

    n_obs = 100_000

    def floor_ns(sampler: str) -> float:
        table = PredicateTable()
        site = table.add_site(Scheme.BRANCHES, "bench", 1, "x")
        runtime = Runtime(table, sampler=sampler)
        runtime.begin_run(SamplingPlan.uniform(1e-6), seed=0)
        branch = runtime.branch
        index = site.index

        def loop():
            for _ in range(n_obs):
                branch(index, True)

        best = min(_timed(loop) for _ in range(3))
        runtime.end_run()
        return best / n_obs * 1e9

    fast_ns = floor_ns("fast")
    legacy_ns = floor_ns("legacy")

    benchmark.pedantic(lambda: floor_ns("fast"), rounds=1, iterations=1)

    # Generous margin: the gate only catches a real regression (the fast
    # path growing a per-call allocation or an extra dispatch), not
    # scheduler jitter on a loaded CI host.
    assert fast_ns < legacy_ns * 1.25, (
        f"fast no-op floor {fast_ns:.0f} ns/obs vs legacy {legacy_ns:.0f} ns/obs"
    )

    write_result(
        "sampler_noop_floor.txt",
        (
            f"{n_obs} observations at uniform rate 1e-6\n"
            f"fast sampler:   {fast_ns:8.1f} ns/obs\n"
            f"legacy sampler: {legacy_ns:8.1f} ns/obs\n"
            f"speedup:        {legacy_ns / fast_ns:8.2f}x"
        ),
    )


def test_observability_off_is_a_shared_noop(benchmark):
    """The `repro.obs` hooks on the hot paths must be free when disabled.

    The disabled facade hands back one shared no-op context manager --
    no allocation, no branching beyond a module-global check -- so the
    collection/analysis numbers above are unchanged by the hooks'
    existence (docs/OBSERVABILITY.md pins this file for that claim).
    """
    from repro import obs
    from repro.obs.metrics import NULL_TIMER

    assert not obs.enabled()
    assert obs.timer("hot.path") is NULL_TIMER
    assert obs.span("hot.path", chunk=0) is NULL_TIMER

    def disabled_hooks():
        for _ in range(100_000):
            with obs.span("hot.path"):
                pass
            obs.inc("hot.counter")

    benchmark.pedantic(disabled_hooks, rounds=3, iterations=1)
