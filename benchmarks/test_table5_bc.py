"""Table 5: predictors for BC.

Paper shape: a short list pointing at the ``more_arrays`` overrun, whose
predicates relate the scalar-variable and array counts ("a_names <
v_names", "old_count == 32"); and "this bug causes a crash long after
the overrun occurs and there is no useful information on the stack".
"""

from collections import Counter

from repro.core.truth import cooccurrence_table, dominant_bug
from repro.harness.tables import format_predictor_table

from benchmarks.conftest import write_result


def test_table5_bc(benchmark, bc_bench):
    reports, truth = bc_bench.reports, bc_bench.truth
    elimination = bc_bench.elimination
    selected = [s.predicate.index for s in elimination.selected]
    assert selected

    def analyse():
        return [dominant_bug(reports, truth, idx) for idx in selected]

    dominants = benchmark.pedantic(analyse, rounds=2, iterations=1)
    for dom in dominants:
        assert dom is not None and dom[0] == "bc1"

    # The predictors relate storage counts, like the paper's
    # "a_names < v_names": scalar-pair predicates over count variables.
    names = " | ".join(
        reports.table.predicates[idx].name for idx in selected[:4]
    )
    count_tokens = ("count", "cap", "v_", "a_", "slot", "new_cap", "i")
    assert any(tok in names for tok in count_tokens), names

    # Crash long after the overrun: the top-of-stack function at crash
    # time is usually NOT more_arrays.
    stacks = [s for s in reports.stacks if s]
    assert stacks
    tops = Counter(s[-2] if len(s) >= 2 else s[-1] for s in stacks)
    assert tops.get("more_arrays", 0) < len(stacks) * 0.5

    co = cooccurrence_table(reports, truth, selected)
    write_result(
        "table5.txt",
        format_predictor_table(elimination, co, bug_ids=list(truth.bug_ids)),
    )
