"""Section 6's stack-trace study: how often do stacks isolate the bug?

"Across all of our experiments, in about half the cases the stack is
useful in isolating the cause of a bug; in the other half the stack
contains essentially no information about the bug's cause."  In MOSS
only the most deterministic bugs had truly unique signature stacks;
RHYTHMBOX and BC crashed so far from the bad behaviour that stacks were
of limited or no use.
"""

from repro.baselines.stacktrace import stack_study
from repro.harness.tables import format_stack_table

from benchmarks.conftest import write_result


def test_stack_signature_usefulness(benchmark, all_benches):
    moss = all_benches["moss"]
    study_by_subject = {}
    for name, exp in all_benches.items():
        study_by_subject[name] = stack_study(exp.reports, exp.truth)

    benchmark.pedantic(
        lambda: stack_study(moss.reports, moss.truth), rounds=3, iterations=1
    )

    triggered = 0
    useful = 0
    for name, study in study_by_subject.items():
        for bug, stats in study.per_bug.items():
            if stats.failing_runs == 0:
                continue
            triggered += 1
            if stats.has_unique_signature:
                useful += 1

    fraction = useful / triggered
    # "about half": anywhere in the broad middle reproduces the claim
    # that stacks are neither useless nor sufficient.
    assert 0.2 <= fraction <= 0.85, f"stack usefulness {fraction:.2f}"

    # CCRYPT's deterministic bug has a unique stack (like MOSS bugs 2/5).
    assert study_by_subject["ccrypt"].per_bug["ccrypt1"].has_unique_signature

    text = "\n\n".join(
        f"=== {name} ===\n" + format_stack_table(study)
        for name, study in study_by_subject.items()
    ) + f"\n\noverall: stacks useful for {useful}/{triggered} triggered bugs"
    write_result("stack_study.txt", text)
