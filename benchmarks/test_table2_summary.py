"""Table 2: summary statistics for all five bug isolation experiments.

Shape claims reproduced from the paper:

* the ``Increase > 0`` test discards the overwhelming majority of
  predicates (RHYTHMBOX: 857,384 -> 537, a 99.9% reduction; every
  subject shows 2+ orders of magnitude);
* elimination reduces the survivors to a handful;
* each subject's instrumentation yields predicates roughly proportional
  to its size.
"""

from repro.core.pruning import prune_predicates
from repro.harness.tables import format_summary_table

from benchmarks.conftest import write_result


def test_table2_summary(benchmark, all_benches):
    summaries = [exp.summary() for exp in all_benches.values()]

    # Benchmark the pruning pass on the largest population.
    moss = all_benches["moss"]
    benchmark.pedantic(
        lambda: prune_predicates(moss.reports), rounds=3, iterations=1
    )

    for summary in summaries:
        initial = summary["initial_predicates"]
        kept = summary["after_increase_pruning"]
        final = summary["after_elimination"]
        # 2+ orders of magnitude from the Increase test (>= 95% here,
        # our populations being smaller than the paper's 32k runs).
        assert kept <= initial * 0.05, summary
        # Elimination ends with a short list.
        assert final <= 25, summary
        assert final <= kept or kept == 0
        # Both outcomes occur in every experiment.
        assert summary["successful_runs"] > 0
        assert summary["failing_runs"] > 0

    # Bigger programs have more sites (MOSS vs CCRYPT, as in the paper).
    by_name = {s["subject"]: s for s in summaries}
    assert by_name["moss"]["sites"] > by_name["ccrypt"]["sites"]

    write_result("table2.txt", format_summary_table(summaries))
