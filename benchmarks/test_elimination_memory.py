"""Elimination memory: per-round cost no longer scales with the matrix.

The pre-engine ``eliminate()`` materialised a fresh working copy of the
report population every round (a full O(nnz) sparse-matrix copy), so
peak memory grew with the number of selection rounds and with matrix
size.  The rewrite keeps two persistent boolean bitsets (active runs,
working failure labels) and scores each round through masked matvecs,
so a round allocates only O(runs + predicates) scratch.

Two assertions pin the contract:

* peak traced allocation during elimination stays well under the size
  of the run matrices themselves (one old-style per-round copy alone
  would exceed it);
* peak at many rounds matches peak at few rounds -- rounds-independence.
"""

import random
import tracemalloc

from repro.core.elimination import eliminate

from benchmarks.conftest import write_result
from tests.helpers import make_reports

_N_BUGS = 12
_RUNS_PER_BUG = 60
_N_NOISE_PREDS = 120
_N_SUCC = 1500


def _population():
    """~12 disjoint bugs, each with a dedicated predictor, plus noise
    predicates so the matrices carry realistic bulk."""
    n_preds = _N_BUGS + _N_NOISE_PREDS
    rng = random.Random(1234)
    runs = []
    for bug in range(_N_BUGS):
        for _ in range(_RUNS_PER_BUG):
            true = {bug}
            true.update(
                _N_BUGS + rng.randrange(_N_NOISE_PREDS) for _ in range(8)
            )
            runs.append((True, true, None))
    for _ in range(_N_SUCC):
        true = {
            _N_BUGS + rng.randrange(_N_NOISE_PREDS) for _ in range(rng.randrange(6))
        }
        runs.append((False, true, None))
    return make_reports(n_preds, runs)


def _matrix_bytes(reports) -> int:
    total = 0
    for mat in (
        reports.true_counts,
        reports.site_counts,
        reports.true_indicator(),
        reports.site_indicator(),
    ):
        total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
    return total


def _peak_during_eliminate(reports, max_predictors) -> tuple:
    tracemalloc.start()
    result = eliminate(reports, max_predictors=max_predictors)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, result


def test_elimination_memory_rounds_independent():
    reports = _population()
    # Warm every lazy cache (indicator matrices, CSC views, scipy
    # internals) so tracemalloc sees only per-call allocations.
    eliminate(reports, max_predictors=_N_BUGS)
    matrix_bytes = _matrix_bytes(reports)

    peak_few, few = _peak_during_eliminate(reports, max_predictors=2)
    peak_many, many = _peak_during_eliminate(reports, max_predictors=_N_BUGS)

    # The workload is real: the many-round pass did many more rounds.
    assert few.iterations <= 3
    assert many.iterations >= 8
    assert many.iterations > few.iterations + 4

    # (a) No per-round matrix copies: one old-style working copy alone
    # would cost ~matrix_bytes, so peak must sit far below it.
    assert peak_many < matrix_bytes / 2, (
        f"peak {peak_many} vs matrices {matrix_bytes}: elimination is "
        "copying run matrices again"
    )

    # (b) Rounds-independence: 6x the rounds must not move the peak by
    # more than round-local scratch (bitsets + score vectors).
    slack = 512 * 1024
    assert peak_many <= peak_few * 1.5 + slack, (
        f"peak grew with rounds: {peak_few} -> {peak_many} "
        f"({few.iterations} -> {many.iterations} rounds)"
    )

    write_result(
        "elimination_memory.txt",
        "\n".join(
            [
                "elimination memory (tracemalloc peak during eliminate())",
                f"  matrices resident: {matrix_bytes / 1e6:.2f} MB",
                f"  {few.iterations:>2} rounds: peak {peak_few / 1e3:.1f} KB",
                f"  {many.iterations:>2} rounds: peak {peak_many / 1e3:.1f} KB",
                "  contract: peak independent of round count; no per-round",
                "  matrix copies (two persistent bitsets + masked matvecs)",
            ]
        ),
    )
