"""Unit tests for the metrics registry and the module-level facade."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import METRICS_SCHEMA, NULL_TIMER, MetricsRegistry, format_metrics


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 5, "b": 2}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.5)
        assert reg.snapshot()["gauges"] == {"g": 7.5}

    def test_timer_records_count_total_min_max(self):
        reg = MetricsRegistry()
        reg.observe("t", 0.5)
        reg.observe("t", 1.5)
        timers = reg.snapshot()["timers"]
        assert timers["t"]["count"] == 2
        assert timers["t"]["total_seconds"] == pytest.approx(2.0)
        assert timers["t"]["min_seconds"] == pytest.approx(0.5)
        assert timers["t"]["max_seconds"] == pytest.approx(1.5)

    def test_timer_context_manager_measures(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        timers = reg.snapshot()["timers"]
        assert timers["t"]["count"] == 1
        assert timers["t"]["total_seconds"] >= 0.0

    def test_merge_adds_counters_and_timers(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.observe("t", 1.0)
        b.observe("t", 3.0)
        b.gauge("g", 9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["timers"]["t"]["count"] == 2
        assert snap["timers"]["t"]["total_seconds"] == pytest.approx(4.0)
        assert snap["timers"]["t"]["max_seconds"] == pytest.approx(3.0)
        assert snap["gauges"]["g"] == 9.0

    def test_merge_is_associative_on_counters(self):
        parts = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.inc("n", i + 1)
            parts.append(reg.snapshot())
        left = MetricsRegistry()
        for snap in parts:
            left.merge(snap)
        right = MetricsRegistry()
        for snap in reversed(parts):
            right.merge(snap)
        assert left.snapshot()["counters"] == right.snapshot()["counters"] == {"n": 6}

    def test_reset_zeroes_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1.0)
        reg.observe("t", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "timers": {}}

    def test_snapshot_is_json_clean(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("t", 0.25)
        json.dumps(reg.snapshot())  # must not raise

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["n"] == 4000

    def test_document_carries_schema(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("a")
        path = tmp_path / "METRICS.json"
        reg.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["counters"] == {"a": 1}
        assert {"created_unix", "pid", "gauges", "timers"} <= set(doc)


class TestFacade:
    def test_disabled_is_default_and_noop(self):
        assert not obs.enabled()
        obs.inc("x")  # all no-ops, no error
        obs.gauge("g", 1.0)
        assert obs.snapshot() is None

    def test_disabled_timer_is_shared_null_singleton(self):
        # The zero-overhead contract: no allocation on the disabled path.
        assert obs.timer("anything") is NULL_TIMER
        assert obs.span("anything", k=1) is NULL_TIMER
        with obs.timer("anything"):
            pass

    def test_configure_enables_and_shutdown_disables(self):
        reg = obs.configure()
        assert obs.enabled() and obs.registry() is reg
        obs.inc("x", 2)
        assert obs.snapshot()["counters"]["x"] == 2
        obs.shutdown()
        assert not obs.enabled()
        assert obs.snapshot() is None

    def test_configure_twice_keeps_registry(self):
        reg = obs.configure()
        obs.inc("x")
        assert obs.configure() is reg
        assert obs.snapshot()["counters"]["x"] == 1

    def test_span_without_tracer_still_times(self):
        obs.configure()
        with obs.span("phase", detail=1):
            pass
        assert obs.snapshot()["timers"]["phase"]["count"] == 1

    def test_write_metrics_requires_configuration(self, tmp_path):
        with pytest.raises(RuntimeError):
            obs.write_metrics(str(tmp_path / "M.json"))

    def test_merge_snapshot_folds_worker_deltas(self):
        obs.configure()
        obs.inc("n", 1)
        obs.merge_snapshot({"counters": {"n": 4}, "gauges": {}, "timers": {}})
        assert obs.snapshot()["counters"]["n"] == 5

    def test_format_metrics_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("runs", 7)
        reg.gauge("rate", 0.25)
        reg.observe("phase", 0.125)
        text = format_metrics(reg.snapshot())
        assert "runs" in text and "rate" in text and "phase" in text
