"""Observability under the supervised sharded collector.

Forked workers reset the inherited registry, trace their chunk, and ship
a snapshot back on the result queue; the parent merges snapshots only
for accepted attempts.  These tests pin the two contracts that matter:
the merged counters describe exactly the committed population, and
turning observability on does not perturb the collected data at all
(shard checksums stay bit-identical).
"""

from __future__ import annotations

import os

from repro import obs
from repro.harness.parallel import run_trials_sharded
from repro.instrument.sampling import SamplingPlan
from repro.obs.trace import read_trace
from repro.subjects.ccrypt import CcryptSubject

N_RUNS = 40
CHUNK = 10


def _collect(store_dir: str) -> object:
    return run_trials_sharded(
        CcryptSubject(),
        N_RUNS,
        SamplingPlan.uniform(0.01),
        store_dir,
        seed=0,
        jobs=2,
        chunk_size=CHUNK,
    )


class TestMergedMetrics:
    def test_worker_counters_cover_exactly_the_committed_runs(self, tmp_path):
        obs.configure()
        _collect(str(tmp_path / "store"))
        snap = obs.snapshot()
        counters = snap["counters"]
        # Every committed trial began exactly one uniform-sampled run in
        # some worker; the parent's throwaway instrumentation run is the
        # only `full` one, so `uniform` counts the population exactly.
        assert counters["runtime.begin_run.uniform"] == N_RUNS
        assert counters["collect.chunks"] == N_RUNS // CHUNK
        assert counters["collect.attempts"] == N_RUNS // CHUNK
        assert counters["collect.retries"] == 0
        assert counters["store.shards_committed"] == N_RUNS // CHUNK
        assert counters["store.runs_committed"] == N_RUNS
        # Worker timers merged in: one worker_chunk span per chunk.
        assert snap["timers"]["collect.worker_chunk"]["count"] == N_RUNS // CHUNK

    def test_trace_spans_come_from_distinct_processes(self, tmp_path):
        trace_path = str(tmp_path / "TRACE.jsonl")
        obs.configure(trace_path=trace_path)
        _collect(str(tmp_path / "store"))
        events = read_trace(trace_path)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        sessions = by_name["collect.session"]
        assert len(sessions) == 1
        assert sessions[0]["pid"] == os.getpid()
        chunks = by_name["collect.worker_chunk"]
        assert len(chunks) == N_RUNS // CHUNK
        worker_pids = {event["pid"] for event in chunks}
        # Each chunk ran in its own forked worker, none of them the parent.
        assert os.getpid() not in worker_pids
        assert len(worker_pids) == N_RUNS // CHUNK


class TestBitIdentity:
    def test_shard_checksums_identical_with_and_without_obs(self, tmp_path):
        plain = _collect(str(tmp_path / "plain"))
        obs.configure(trace_path=str(tmp_path / "TRACE.jsonl"))
        try:
            observed = _collect(str(tmp_path / "observed"))
            obs.write_metrics(str(tmp_path / "METRICS.json"))
        finally:
            obs.shutdown()
        plain_shas = [entry.sha256 for entry in plain.manifest.shards]
        observed_shas = [entry.sha256 for entry in observed.manifest.shards]
        assert plain_shas == observed_shas
        assert plain.n_runs == observed.n_runs == N_RUNS
