"""Unit tests for the JSONL trace writer and its chrome://tracing converter."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    REQUIRED_EVENT_KEYS,
    TraceWriter,
    main,
    read_trace,
    to_chrome_json,
)


class TestWriter:
    def test_empty_trace_is_valid(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        TraceWriter(path)
        assert os.path.exists(path)
        assert read_trace(path) == []

    def test_span_emits_complete_event(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        with writer.span("phase", chunk=3):
            pass
        (event,) = read_trace(path)
        assert event["name"] == "phase"
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["pid"] == os.getpid()
        assert event["args"] == {"chunk": 3}

    def test_span_feeds_registry_timer(self, tmp_path):
        writer = TraceWriter(str(tmp_path / "t.jsonl"))
        reg = MetricsRegistry()
        with writer.span("phase", registry=reg):
            pass
        assert reg.snapshot()["timers"]["phase"]["count"] == 1

    def test_instant_emits_point_event(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        writer.instant("retry", chunk=1, reason="timeout")
        (event,) = read_trace(path)
        assert event["ph"] == "i"
        assert event["args"]["reason"] == "timeout"
        assert set(REQUIRED_EVENT_KEYS) <= set(event)

    def test_each_event_is_one_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        for i in range(3):
            writer.instant("tick", i=i)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 3
        for line in lines:
            json.loads(line)  # every line parses on its own


class TestReadTrace:
    def test_rejects_invalid_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_trace(str(path))

    def test_rejects_missing_required_keys(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"name": "x", "ph": "i"}) + "\n")
        with pytest.raises(ValueError, match="required keys"):
            read_trace(str(path))

    def test_rejects_complete_event_without_dur(self, tmp_path):
        path = tmp_path / "t.jsonl"
        event = {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
        path.write_text(json.dumps(event) + "\n")
        with pytest.raises(ValueError, match="dur"):
            read_trace(str(path))


class TestConverter:
    def test_to_chrome_json_wraps_events(self, tmp_path):
        src = str(tmp_path / "t.jsonl")
        dst = str(tmp_path / "t.json")
        writer = TraceWriter(src)
        with writer.span("a"):
            pass
        writer.instant("b")
        assert to_chrome_json(src, dst) == 2
        with open(dst, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == 2
        assert doc["displayTimeUnit"] == "ms"

    def test_cli_defaults_output_next_to_input(self, tmp_path, capsys):
        src = str(tmp_path / "t.jsonl")
        TraceWriter(src).instant("b")
        assert main([src]) == 0
        assert os.path.exists(str(tmp_path / "t.json"))
        assert "wrote 1 events" in capsys.readouterr().out
