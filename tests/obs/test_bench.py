"""Tests for the ``repro-cbi bench`` schema, appenders and docs gate."""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.obs import bench
from repro.obs.bench import (
    ANALYSIS_FILE,
    BENCH_SCHEMA,
    COLLECTION_FILE,
    BenchSchemaError,
    append_entry,
    check_against_docs,
    documented_examples,
    make_entry,
    run_bench,
    validate_bench_document,
    validate_file,
)

DOCS_PAGE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "docs",
    "OBSERVABILITY.md",
)


def _scenario(name="collection_throughput"):
    return {
        "name": name,
        "subject": "ccrypt",
        "params": {"runs": 40},
        "metrics": {"wall_seconds": 1.5, "runs_per_sec": 26.7},
    }


def _document(kind="collection"):
    return {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "entries": [make_entry([_scenario()], quick=True, label="test")],
    }


class TestValidation:
    def test_valid_document_passes(self):
        validate_bench_document(_document())

    def test_rejects_wrong_schema(self):
        doc = _document()
        doc["schema"] = "repro-bench/v0"
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_bench_document(doc)

    def test_rejects_unknown_kind(self):
        doc = _document()
        doc["kind"] = "misc"
        with pytest.raises(BenchSchemaError, match="kind"):
            validate_bench_document(doc)

    def test_rejects_empty_scenarios(self):
        doc = _document()
        doc["entries"][0]["scenarios"] = []
        with pytest.raises(BenchSchemaError, match="scenarios"):
            validate_bench_document(doc)

    def test_rejects_boolean_metric(self):
        doc = _document()
        doc["entries"][0]["scenarios"][0]["metrics"]["ok"] = True
        with pytest.raises(BenchSchemaError, match="must be a number"):
            validate_bench_document(doc)

    def test_rejects_non_numeric_metric(self):
        doc = _document()
        doc["entries"][0]["scenarios"][0]["metrics"]["wall_seconds"] = "fast"
        with pytest.raises(BenchSchemaError, match="must be a number"):
            validate_bench_document(doc)

    def test_rejects_missing_environment_key(self):
        doc = _document()
        del doc["entries"][0]["environment"]["cpu_count"]
        with pytest.raises(BenchSchemaError, match="cpu_count"):
            validate_bench_document(doc)


class TestAppendEntry:
    def test_creates_then_appends(self, tmp_path):
        path = str(tmp_path / COLLECTION_FILE)
        append_entry(path, "collection", make_entry([_scenario()], True, "a"))
        doc = append_entry(path, "collection", make_entry([_scenario()], True, "b"))
        assert [e["label"] for e in doc["entries"]] == ["a", "b"]
        assert validate_file(path)["kind"] == "collection"

    def test_refuses_kind_mismatch(self, tmp_path):
        path = str(tmp_path / COLLECTION_FILE)
        append_entry(path, "collection", make_entry([_scenario()], True, "a"))
        with pytest.raises(BenchSchemaError, match="refusing to append"):
            append_entry(path, "analysis", make_entry([_scenario()], True, "b"))

    def test_refuses_corrupt_existing_document(self, tmp_path):
        path = tmp_path / COLLECTION_FILE
        path.write_text(json.dumps({"schema": "other", "entries": []}))
        with pytest.raises(BenchSchemaError):
            append_entry(str(path), "collection", make_entry([_scenario()], True, "a"))


class TestDocsGate:
    def test_docs_page_documents_both_kinds(self):
        examples = documented_examples(DOCS_PAGE)
        kinds = {example["kind"] for example in examples}
        assert kinds == {"collection", "analysis"}
        for example in examples:
            validate_bench_document(example)

    def test_documented_examples_agree_with_their_own_skeleton(self):
        for example in documented_examples(DOCS_PAGE):
            check_against_docs(example, DOCS_PAGE)

    def test_structural_drift_is_caught(self):
        example = copy.deepcopy(documented_examples(DOCS_PAGE)[0])
        example["entries"][0]["git_sha"] = "abc123"  # undocumented field
        with pytest.raises(BenchSchemaError, match="diverges"):
            check_against_docs(example, DOCS_PAGE)

    def test_page_without_example_is_an_error(self, tmp_path):
        page = tmp_path / "EMPTY.md"
        page.write_text("# nothing here\n")
        with pytest.raises(BenchSchemaError, match="no repro-bench"):
            check_against_docs(_document(), str(page))


class TestCli:
    def test_check_accepts_valid_file(self, tmp_path, capsys):
        path = str(tmp_path / COLLECTION_FILE)
        append_entry(path, "collection", make_entry([_scenario()], True, "a"))
        assert bench.main(["--check", path, "--docs", DOCS_PAGE]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "BAD.json"
        path.write_text(json.dumps({"schema": "nope"}))
        assert bench.main(["--check", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().err


class TestRoundTrip:
    def test_tiny_bench_emits_documented_schema(self, tmp_path):
        """End-to-end: run the real scenarios at minimum scale, then hold
        the emitted documents to the same gate CI applies."""
        collection_path, analysis_path = run_bench(
            out_dir=str(tmp_path), quick=True, scale=0.01, label="roundtrip"
        )
        assert os.path.basename(collection_path) == COLLECTION_FILE
        assert os.path.basename(analysis_path) == ANALYSIS_FILE
        for path, kind in ((collection_path, "collection"), (analysis_path, "analysis")):
            doc = validate_file(path)
            assert doc["kind"] == kind
            assert doc["entries"][0]["label"] == "roundtrip"
            check_against_docs(doc, DOCS_PAGE)
        names = {s["name"] for s in validate_file(collection_path)["entries"][0]["scenarios"]}
        assert {"collection_throughput", "sharded_collection_throughput"} <= names
        names = {s["name"] for s in validate_file(analysis_path)["entries"][0]["scenarios"]}
        assert {"scoring_latency", "streaming_merge"} <= names
