"""Tests for the stack-trace bucketing study."""

from repro.baselines.stacktrace import signature_of, stack_study
from repro.core.truth import GroundTruth

from tests.helpers import make_reports


def _population():
    """Bug 'a' always crashes at the same place (unique signature);
    bug 'b' crashes at two places, one of which bug 'c' also hits."""
    stacks = [
        ("main", "fa", "SimSegfault"),   # a
        ("main", "fa", "SimSegfault"),   # a
        ("main", "fb1", "SimSegfault"),  # b
        ("main", "shared", "SimSegfault"),  # b
        ("main", "shared", "SimSegfault"),  # c
        None,  # successful run
    ]
    reports = make_reports(
        1,
        [
            (True, set(), None),
            (True, set(), None),
            (True, set(), None),
            (True, set(), None),
            (True, set(), None),
            (False, set(), None),
        ],
        stacks=stacks,
    )
    truth = GroundTruth(bug_ids=["a", "b", "c", "untriggered"])
    for bugs in (["a"], ["a"], ["b"], ["b"], ["c"], []):
        truth.add_run(bugs)
    return reports, truth


class TestSignature:
    def test_full_and_top_only(self):
        stack = ("main", "outer", "inner", "SimSegfault")
        assert signature_of(stack) == stack
        assert signature_of(stack, top_only=True) == ("inner",)

    def test_missing_stack(self):
        assert signature_of(None) is None
        assert signature_of(()) is None


class TestStudy:
    def test_unique_signature_detection(self):
        reports, truth = _population()
        study = stack_study(reports, truth)
        assert study.per_bug["a"].has_unique_signature
        # b has one unique signature (fb1) even though 'shared' is shared.
        assert study.per_bug["b"].has_unique_signature
        # c only ever crashes at the shared location.
        assert not study.per_bug["c"].has_unique_signature

    def test_useful_fraction_counts_triggered_bugs_only(self):
        reports, truth = _population()
        study = stack_study(reports, truth)
        assert study.useful_fraction == 2 / 3

    def test_dominant_share(self):
        reports, truth = _population()
        study = stack_study(reports, truth)
        assert study.per_bug["a"].dominant_share == 1.0
        assert study.per_bug["b"].dominant_share == 0.5

    def test_top_only_merges_by_crash_function(self):
        reports, truth = _population()
        study = stack_study(reports, truth, top_only=True)
        assert study.per_bug["a"].has_unique_signature
        assert not study.per_bug["c"].has_unique_signature

    def test_signature_count(self):
        reports, truth = _population()
        study = stack_study(reports, truth)
        assert study.n_signatures == 3
