"""Tests for the L1 logistic-regression baseline."""

import numpy as np
import pytest

from repro.baselines.logistic import l1_logistic_regression

from tests.helpers import make_reports


def _separable_population(n=60):
    """P0 perfectly predicts failure; P1 is pure noise."""
    runs = []
    for i in range(n):
        runs.append((True, {0} | ({1} if i % 2 else set()), None))
        runs.append((False, ({1} if i % 2 else set()), None))
    return make_reports(2, runs)


class TestFitting:
    def test_learns_positive_weight_for_predictor(self):
        reports = _separable_population()
        result = l1_logistic_regression(reports, lam=0.01)
        assert result.weights[0] > 0.5
        assert abs(result.weights[1]) < abs(result.weights[0]) / 4

    def test_l1_penalty_induces_sparsity(self):
        reports = _separable_population()
        light = l1_logistic_regression(reports, lam=0.001)
        heavy = l1_logistic_regression(reports, lam=0.5)
        nnz_light = int((np.abs(light.weights) > 1e-9).sum())
        nnz_heavy = int((np.abs(heavy.weights) > 1e-9).sum())
        assert nnz_heavy <= nnz_light

    def test_candidate_mask_pins_weights(self):
        reports = _separable_population()
        result = l1_logistic_regression(
            reports, lam=0.01, candidates=np.array([False, True])
        )
        assert result.weights[0] == 0.0

    def test_converges_on_easy_problem(self):
        reports = _separable_population()
        result = l1_logistic_regression(reports, lam=0.01, max_iter=2000)
        assert result.converged

    def test_momentum_and_plain_agree_on_sign(self):
        reports = _separable_population()
        fista = l1_logistic_regression(reports, lam=0.01)
        ista = l1_logistic_regression(reports, lam=0.01, use_momentum=False)
        assert np.sign(fista.weights[0]) == np.sign(ista.weights[0]) == 1.0


class TestTable9Behaviour:
    def _multi_bug_population(self):
        """The Table 9 pathology, as it arises under sparse sampling:

        * P0: super-bug predictor -- observed true in EVERY failure of
          both bugs plus a slice of successes ("long command line");
        * P1/P2: the real per-bug predictors, but sampling means each is
          observed true in only ~40% of its bug's failing runs;
        * P3: deterministic sub-bug predictor covering few failures.
        """
        runs = []
        for i in range(40):  # bug A
            true = {0}
            if i % 5 < 2:
                true.add(1)  # sampled in 40% of bug-A failures
            if i < 6:
                true.add(3)
            runs.append((True, true, None))
        for i in range(40):  # bug B
            true = {0}
            if i % 5 < 2:
                true.add(2)
            runs.append((True, true, None))
        for _ in range(30):
            runs.append((False, {0}, None))
        for _ in range(130):
            runs.append((False, set(), None))
        return make_reports(4, runs)

    def test_super_bug_predictor_outranks_bug_predictors(self):
        """The single predicate covering all failures beats the (sampled,
        hence partially observed) per-bug predictors -- the paper's
        critique of penalised logistic regression."""
        reports = self._multi_bug_population()
        result = l1_logistic_regression(reports, lam=0.05, max_iter=4000)
        ranked = result.top_predicates(reports, k=4)
        assert ranked, "model should select something"
        assert ranked[0][0].name == "P0"

    def test_top_predicates_excludes_nonpositive_weights(self):
        reports = self._multi_bug_population()
        result = l1_logistic_regression(reports, lam=0.8, max_iter=500)
        for pred, coef in result.top_predicates(reports, k=10):
            assert coef > 0
