"""Transform fuzz/regression suite over real stdlib sources.

The hand-built subjects exercise a narrow slice of Python syntax; the
subject factory feeds the instrumenter arbitrary package code.  This
suite pins the transform against the syntax real packages use:

* targeted differential regressions for the constructs the transform
  historically left dark or mishandled (``match`` statements, ``async
  for``/``async with`` bodies, ``try``/``except*`` groups, class-body
  assignments leaking a ``_cbi_prev`` class attribute);
* a transform+compile fuzz sweep over genuine stdlib module sources
  (a fixed subset in the tier-1 lane, the whole stdlib in the slow
  lane);
* exec-and-call differentials on instrumented stdlib modules, proving
  behaviour is unchanged end to end.
"""

import ast
import asyncio
import os
import sys
import sysconfig

import pytest

from repro.core.predicates import PredicateTable, Scheme
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.instrument.transform import Instrumenter


def _run_both(source, func, *args):
    plain = {}
    exec(compile(source, "<plain>", "exec"), plain)
    expected = plain[func](*args)

    prog = instrument_source(source, "t")
    prog.begin_run(SamplingPlan.full(), seed=1)
    actual = prog.func(func)(*args)
    prog.end_run()
    return expected, actual, prog


class TestMatchStatements:
    SRC = """
def classify(x):
    out = []
    match x:
        case int() as n if n > 10:
            out.append(n * 2)
        case [a, *rest]:
            total = a
            for r in rest:
                total += r
            out.append(total)
        case {"k": v, **extra}:
            out.append(v + len(extra))
        case str() | bytes():
            out.append(len(x))
        case _:
            out.append(-1)
    return out
"""

    @pytest.mark.parametrize(
        "value",
        [15, 3, [1, 2, 3], {"k": 5, "z": 0}, "hello", None],
        ids=["guard-hit", "guard-miss", "sequence", "mapping", "or-pattern", "wildcard"],
    )
    def test_match_semantics_preserved(self, value):
        expected, actual, _ = _run_both(self.SRC, "classify", value)
        assert expected == actual

    def test_match_bodies_and_guards_get_sites(self):
        prog = instrument_source(self.SRC, "t")
        sites = [s for s in prog.table.sites if s.function == "classify"]
        # The guard is a branch site; the case bodies carry return and
        # scalar-pair sites.  Before the fix the whole statement was dark.
        assert any(
            s.scheme is Scheme.BRANCHES and "n > 10" in s.description for s in sites
        )
        assert any(s.scheme is Scheme.SCALAR_PAIRS for s in sites)
        assert any(s.scheme is Scheme.RETURNS for s in sites)

    def test_patterns_not_rewritten(self):
        # Patterns are not expressions: a literal pattern must survive
        # the rewrite as a plain MatchValue, never a runtime call.
        prog = instrument_source(self.SRC, "t")
        tree = ast.parse(prog.source) if prog.source else None
        if tree is None:  # pragma: no cover - source always kept
            pytest.skip("instrumented source not retained")
        for node in ast.walk(tree):
            if isinstance(node, ast.MatchValue):
                assert isinstance(node.value, (ast.Constant, ast.Attribute))


class TestAsyncConstructs:
    SRC = """
async def agen(items):
    for i in items:
        yield i

class Ctx:
    async def __aenter__(self):
        return 100
    async def __aexit__(self, *a):
        return False

async def consume(items):
    acc = 0
    async for i in agen(items):
        if i % 2 == 0:
            acc += i
    async with Ctx() as c:
        acc += c
    return acc

def run(items):
    import asyncio
    return asyncio.run(consume(items))
"""

    def test_async_for_and_with_semantics(self):
        expected, actual, _ = _run_both(self.SRC, "run", [1, 2, 3, 4])
        assert expected == actual

    def test_async_bodies_get_sites(self):
        prog = instrument_source(self.SRC, "t")
        consume_sites = [s for s in prog.table.sites if s.function == "consume"]
        assert any(
            s.scheme is Scheme.BRANCHES and "i % 2" in s.description
            for s in consume_sites
        ), "async for body must be instrumented"


@pytest.mark.skipif(sys.version_info < (3, 11), reason="except* is 3.11+")
class TestTryStar:
    SRC = """
def f(xs):
    acc = 0
    try:
        for x in xs:
            if x < 0:
                raise ExceptionGroup("neg", [ValueError(str(x))])
            acc += x
    except* ValueError:
        acc = -1
    return acc
"""

    def test_trystar_semantics(self):
        for xs in ([1, 2, 3], [1, -2, 3]):
            expected, actual, _ = _run_both(self.SRC, "f", xs)
            assert expected == actual

    def test_trystar_bodies_get_sites(self):
        prog = instrument_source(self.SRC, "t")
        sites = [s for s in prog.table.sites if s.function == "f"]
        assert any(
            s.scheme is Scheme.BRANCHES and "x < 0" in s.description for s in sites
        ), "try body under except* must be instrumented"


class TestClassBodyHygiene:
    def test_no_cbi_prev_class_attribute(self):
        src = """
class Config:
    retries = 3
    timeout = retries * 10
    def total(self):
        return self.retries + self.timeout
"""
        prog = instrument_source(src, "t")
        cls = prog.namespace["Config"]
        assert not hasattr(cls, "_cbi_prev"), (
            "old-value capture must not survive as a class attribute"
        )
        assert cls().total() == 33

    def test_slots_class_unbroken(self):
        src = """
class Point:
    __slots__ = ("x", "y")
    def __init__(self, x, y):
        self.x = x
        self.y = y
    def norm1(self):
        d = abs(self.x) + abs(self.y)
        return d
"""
        expected, actual, prog = _run_both(src, "Point", 3, -4)
        assert prog.namespace["Point"](3, -4).norm1() == 7
        assert not hasattr(prog.namespace["Point"], "_cbi_prev")


class TestScopingRegressions:
    def test_walrus_in_while_and_comprehension(self):
        src = """
def f(xs):
    out = [y for x in xs if (y := x * 2) > 4]
    i = 0
    total = 0
    while (i := i + 1) < len(xs):
        total += i
    return out, total
"""
        expected, actual, _ = _run_both(src, "f", [1, 2, 3, 4])
        assert expected == actual

    def test_lambda_bodies_left_alone_but_defaults_work(self):
        src = """
def f(xs):
    key = lambda p, scale=len(xs): p * scale
    return sorted(xs, key=key)
"""
        expected, actual, prog = _run_both(src, "f", [3, 1, 2])
        assert expected == actual
        # Lambdas are deliberately skipped (no statement anchors for
        # pairs); their bodies must carry no sites.
        assert all("lambda" not in s.description for s in prog.table.sites)

    def test_class_scope_comprehension(self):
        src = """
def make():
    class Table:
        names = ["a", "b", "c"]
        index = {n: i for i, n in enumerate(names)}
    return Table.index
"""
        expected, actual, _ = _run_both(src, "make")
        assert expected == actual


# ----------------------------------------------------------------------
# Stdlib sweep
# ----------------------------------------------------------------------

#: Pure-python stdlib modules the tier-1 sweep transforms and compiles.
#: Chosen for syntax breadth: dataclasses (heavy decorators + class
#: bodies), typing (3.12 generics usage), asyncio pieces (async
#: everything), plus the factory's own corpus ancestors.
TIER1_SWEEP = [
    "textwrap",
    "csv",
    "json.scanner",
    "json.decoder",
    "json.encoder",
    "fnmatch",
    "bisect",
    "heapq",
    "shlex",
    "difflib",
    "statistics",
    "dataclasses",
    "string",
    "colorsys",
    "quopri",
    "uuid",
    "ipaddress",
    "argparse",
    "selectors",
    "queue",
    "tokenize",
    "ast",
    "enum",
    "functools",
    "contextlib",
]


def _module_source(name):
    import importlib.util

    spec = importlib.util.find_spec(name)
    if spec is None or spec.origin is None or not spec.origin.endswith(".py"):
        pytest.skip(f"{name} has no python source here")
    with open(spec.origin, encoding="utf-8") as fh:
        return fh.read(), spec.origin


@pytest.mark.parametrize("name", TIER1_SWEEP)
def test_stdlib_transform_and_compile(name):
    source, origin = _module_source(name)
    table = PredicateTable()
    inst = Instrumenter(table=table)
    tree = inst.instrument(source, filename=origin)
    compile(tree, origin, "exec")
    assert len(table.sites) > 0


@pytest.mark.parametrize(
    "name,func,args",
    [
        ("textwrap", "wrap", ("the quick brown fox jumps over the lazy dog", 10)),
        ("fnmatch", "fnmatch", ("data_001.csv", "data_*.csv")),
        ("bisect", "bisect_left", ([1, 3, 5, 7, 9], 6)),
        ("shlex", "split", ("a 'b c' d",)),
        ("colorsys", "rgb_to_hsv", (0.2, 0.4, 0.4)),
    ],
)
def test_stdlib_exec_and_call_differential(name, func, args):
    source, _ = _module_source(name)
    import importlib

    plain = getattr(importlib.import_module(name), func)(*args)

    prog = instrument_source(source, name)
    prog.begin_run(SamplingPlan.full(), seed=7)
    instrumented = prog.func(func)(*args)
    prog.end_run()
    assert instrumented == plain


@pytest.mark.slow
def test_whole_stdlib_transform_fuzz():
    """Transform + compile every parseable pure-python stdlib file."""
    stdlib = sysconfig.get_paths()["stdlib"]
    failures = []
    count = 0
    for root, dirs, files in os.walk(stdlib):
        dirs[:] = [
            d
            for d in dirs
            if d
            not in ("test", "tests", "idle_test", "site-packages", "turtledemo")
        ]
        for fn in sorted(files):
            if not fn.endswith(".py"):
                continue
            path = os.path.join(root, fn)
            try:
                with open(path, encoding="utf-8", errors="replace") as fh:
                    src = fh.read()
                ast.parse(src)
            except (SyntaxError, ValueError):
                continue  # not source for this interpreter version
            count += 1
            try:
                inst = Instrumenter()
                tree = inst.instrument(src, filename=path)
                compile(tree, path, "exec")
            except Exception as exc:  # noqa: BLE001 - collecting evidence
                failures.append((os.path.relpath(path, stdlib), repr(exc)))
    assert count > 200, f"suspiciously small stdlib sweep: {count}"
    assert not failures, failures[:10]
