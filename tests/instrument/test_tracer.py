"""Tests for program loading and crash-stack capture."""

import pytest

from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import crash_stack, instrument_source


class TestInstrumentSource:
    def test_module_level_code_executes(self):
        src = """
LIMIT = 40 + 2

def f():
    return LIMIT
"""
        prog = instrument_source(src, "t")
        prog.begin_run(SamplingPlan.full(), seed=0)
        assert prog.func("f")() == 42

    def test_missing_function_raises(self):
        prog = instrument_source("def f():\n    return 1\n", "t")
        with pytest.raises(KeyError):
            prog.func("nope")

    def test_extra_globals_injected(self):
        src = """
def f():
    return EXTRA + 1
"""
        prog = instrument_source(src, "t", extra_globals={"EXTRA": 10})
        prog.begin_run(SamplingPlan.full(), seed=0)
        assert prog.func("f")() == 11

    def test_instrumented_source_is_inspectable(self):
        prog = instrument_source("def f(x):\n    if x:\n        return 1\n    return 0\n", "t")
        assert "_cbi.branch" in prog.source

    def test_shared_table_across_programs(self):
        from repro.core.predicates import PredicateTable

        table = PredicateTable()
        p1 = instrument_source("def f(x):\n    if x:\n        return 1\n    return 0\n", "a", table=table)
        before = table.n_sites
        p2 = instrument_source("def g(y):\n    if y:\n        return 2\n    return 0\n", "b", table=table)
        assert table.n_sites > before
        assert p2.table is table


class TestCrashStack:
    def test_stack_keeps_only_program_frames(self):
        src = """
def inner(x):
    return x.missing_attribute

def outer(x):
    return inner(x)
"""
        prog = instrument_source(src, "t")
        prog.begin_run(SamplingPlan.full(), seed=0)
        try:
            prog.func("outer")(7)
        except AttributeError as exc:
            stack = crash_stack(exc, prog.filename)
        else:  # pragma: no cover
            pytest.fail("expected a crash")
        assert stack == ("outer", "inner", "AttributeError")

    def test_stack_ends_with_exception_type(self):
        src = """
def f():
    raise RuntimeError("boom")
"""
        prog = instrument_source(src, "t")
        prog.begin_run(SamplingPlan.full(), seed=0)
        try:
            prog.func("f")()
        except RuntimeError as exc:
            stack = crash_stack(exc, prog.filename)
        assert stack[-1] == "RuntimeError"
        assert "f" in stack
