"""Tests for the observation runtime (branch/ret/pairs semantics)."""

import pytest

from repro.core.predicates import PredicateTable, Scheme
from repro.instrument.runtime import Runtime, UNBOUND
from repro.instrument.sampling import SamplingPlan


def _runtime_with(scheme, description="x"):
    table = PredicateTable()
    site = table.add_site(scheme, "f", 1, description)
    rt = Runtime(table)
    rt.begin_run(SamplingPlan.full(), seed=0)
    return rt, site, table


class TestBranch:
    def test_true_and_false_counted_separately(self):
        rt, site, table = _runtime_with(Scheme.BRANCHES)
        assert rt.branch(site.index, 1 > 0) is True
        assert rt.branch(site.index, []) == []  # falsy passthrough
        site_obs, pred_true = rt.end_run()
        assert site_obs[site.index] == 2
        assert pred_true == {0: 1, 1: 1}

    def test_value_returned_unchanged(self):
        rt, site, _ = _runtime_with(Scheme.BRANCHES)
        sentinel = object()
        assert rt.branch(site.index, sentinel) is sentinel


class TestReturns:
    @pytest.mark.parametrize(
        "value,expected_offsets",
        [
            (-3, {0, 4, 5}),  # <0, !=0, <=0
            (0, {1, 3, 5}),   # ==0, >=0, <=0
            (7, {2, 3, 4}),   # >0, >=0, !=0
            (2.5, {2, 3, 4}),
        ],
    )
    def test_sign_predicates(self, value, expected_offsets):
        rt, site, _ = _runtime_with(Scheme.RETURNS)
        assert rt.ret(site.index, value) == value
        _, pred_true = rt.end_run()
        assert set(pred_true) == expected_offsets

    def test_exactly_three_of_six_true_per_observation(self):
        """The paper: one sampled negative return observes all six
        predicates but only three are observed to be true."""
        rt, site, _ = _runtime_with(Scheme.RETURNS)
        rt.ret(site.index, -1)
        site_obs, pred_true = rt.end_run()
        assert site_obs[site.index] == 1
        assert len(pred_true) == 3

    def test_non_scalar_returns_leave_site_unobserved(self):
        rt, site, _ = _runtime_with(Scheme.RETURNS)
        assert rt.ret(site.index, "text") == "text"
        assert rt.ret(site.index, None) is None
        site_obs, pred_true = rt.end_run()
        assert site_obs == {} and pred_true == {}

    def test_bool_returns_leave_site_unobserved(self):
        """Regression: ``isinstance(True, int)`` must not make Python truth
        values count as scalar returns -- the paper's C scheme only covers
        scalar-returning call sites, and bool-returning calls have no C
        analogue (their information lives in the ``branches`` scheme)."""
        rt, site, _ = _runtime_with(Scheme.RETURNS)
        assert rt.ret(site.index, True) is True
        assert rt.ret(site.index, False) is False
        site_obs, pred_true = rt.end_run()
        assert site_obs == {} and pred_true == {}


class TestPairs:
    def test_relations_recorded(self):
        rt, site, _ = _runtime_with(Scheme.SCALAR_PAIRS, "x __ y")
        rt.pairs((site.index,), 3, (5,))
        _, pred_true = rt.end_run()
        assert set(pred_true) == {0, 4, 5}  # <, !=, <=

    def test_equal_values(self):
        rt, site, _ = _runtime_with(Scheme.SCALAR_PAIRS, "x __ y")
        rt.pairs((site.index,), 4, (4,))
        _, pred_true = rt.end_run()
        assert set(pred_true) == {1, 3, 5}  # ==, >=, <=

    def test_unbound_sentinel_skips_site(self):
        rt, site, _ = _runtime_with(Scheme.SCALAR_PAIRS, "x __ y")
        rt.pairs((site.index,), 3, (UNBOUND,))
        site_obs, _ = rt.end_run()
        assert site_obs == {}

    def test_non_numeric_x_skips_everything(self):
        rt, site, _ = _runtime_with(Scheme.SCALAR_PAIRS, "x __ y")
        rt.pairs((site.index,), "str", (5,))
        site_obs, _ = rt.end_run()
        assert site_obs == {}

    def test_bool_operands_leave_site_unobserved(self):
        """Regression: bools are not scalars for the scalar-pairs scheme,
        on either side of the pair."""
        rt, site, _ = _runtime_with(Scheme.SCALAR_PAIRS, "x __ y")
        rt.pairs((site.index,), True, (5,))
        rt.pairs((site.index,), 3, (False,))
        site_obs, pred_true = rt.end_run()
        assert site_obs == {} and pred_true == {}


class TestSamplingIntegration:
    def test_full_plan_observes_everything(self):
        rt, site, _ = _runtime_with(Scheme.BRANCHES)
        for _ in range(100):
            rt.branch(site.index, True)
        site_obs, _ = rt.end_run()
        assert site_obs[site.index] == 100

    def test_uniform_sampling_thins_observations(self):
        rt, site, _ = _runtime_with(Scheme.BRANCHES)
        rt.begin_run(SamplingPlan.uniform(0.05), seed=3)
        for _ in range(2000):
            rt.branch(site.index, True)
        site_obs, _ = rt.end_run()
        count = site_obs.get(site.index, 0)
        assert 50 <= count <= 160  # ~100 expected

    def test_per_site_rates_respected(self):
        table = PredicateTable()
        hot = table.add_site(Scheme.BRANCHES, "f", 1, "hot")
        rare = table.add_site(Scheme.BRANCHES, "f", 2, "rare")
        rt = Runtime(table)
        rt.begin_run(SamplingPlan.per_site([0.01, 1.0]), seed=5)
        for _ in range(1000):
            rt.branch(hot.index, True)
        rt.branch(rare.index, True)
        site_obs, _ = rt.end_run()
        assert site_obs[rare.index] == 1  # rate-1.0 site never misses
        assert site_obs.get(hot.index, 0) < 50

    def test_runs_are_reproducible_by_seed(self):
        rt, site, _ = _runtime_with(Scheme.BRANCHES)

        def run(seed):
            rt.begin_run(SamplingPlan.uniform(0.1), seed=seed)
            for i in range(500):
                rt.branch(site.index, i % 3 == 0)
            return rt.end_run()

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_begin_run_resets_counters(self):
        rt, site, _ = _runtime_with(Scheme.BRANCHES)
        rt.branch(site.index, True)
        rt.begin_run(SamplingPlan.full(), seed=1)
        site_obs, pred_true = rt.end_run()
        assert site_obs == {} and pred_true == {}

    def test_unknown_plan_mode_rejected(self):
        rt, _, _ = _runtime_with(Scheme.BRANCHES)
        with pytest.raises(ValueError):
            rt.begin_run(SamplingPlan(mode="bogus"), seed=0)


class TestFloatKinds:
    def _rt(self):
        table = PredicateTable()
        site = table.add_site(Scheme.FLOAT_KINDS, "f", 1, "x")
        rt = Runtime(table)
        rt.begin_run(SamplingPlan.full(), seed=0)
        return rt, site

    @pytest.mark.parametrize(
        "value,offsets",
        [
            (-2.5, {0}),
            (0.0, {1}),
            (-0.0, {1}),
            (3.25, {2}),
            (float("nan"), {3}),
            (float("inf"), {4}),
            (float("-inf"), {4}),
            (1e-310, {5}),   # subnormal positive
            (-1e-310, {5}),  # subnormal negative
        ],
    )
    def test_classification(self, value, offsets):
        """Regression: the six families are mutually exclusive (paper §5
        "kinds") -- ``±inf`` used to count in both the infinite family
        and a sign family, and subnormals in both subnormal and sign,
        while NaN was already exclusive.  Every value now lands in
        exactly one family; see docs/ALGORITHM.md for the layout."""
        rt, site = self._rt()
        rt.float_kind(site.index, value)
        site_obs, pred_true = rt.end_run()
        assert set(pred_true) == offsets
        assert site_obs[site.index] == 1
        assert sum(pred_true.values()) == 1  # exclusive: one family per value

    def test_non_floats_leave_site_unobserved(self):
        rt, site = self._rt()
        rt.float_kind(site.index, 7)      # int
        rt.float_kind(site.index, "7.0")  # str
        site_obs, _ = rt.end_run()
        assert site_obs == {}

    def test_predicate_names(self):
        table = PredicateTable()
        table.add_site(Scheme.FLOAT_KINDS, "f", 1, "ratio")
        names = [p.name for p in table.predicates]
        assert "ratio is NaN" in names
        assert "ratio is subnormal" in names


class TestCustomScheme:
    def test_custom_flags(self):
        table = PredicateTable()
        site = table.add_custom_site("f", 1, "heap", ["ok", "corrupt", "big"])
        rt = Runtime(table)
        rt.begin_run(SamplingPlan.full(), seed=0)
        rt.custom(site.index, [True, False, True])
        site_obs, pred_true = rt.end_run()
        assert site_obs[site.index] == 1
        assert set(pred_true) == {0, 2}

    @pytest.mark.parametrize("sampler", ["fast", "legacy"])
    def test_predicate_less_custom_site(self, sampler):
        """Regression: ``Runtime.custom`` used to call
        ``table.predicate_indices_at(site)[0]`` per observation, which
        raised IndexError on a custom site registered with no predicates
        (and paid a table lookup on the hot path); it now uses the cached
        ``_base`` table like every other helper."""
        table = PredicateTable()
        site = table.add_custom_site("f", 1, "empty family", [])
        rt = Runtime(table, sampler=sampler)
        rt.begin_run(SamplingPlan.full(), seed=0)
        rt.custom(site.index, [])  # must not raise
        site_obs, pred_true = rt.end_run()
        assert site_obs[site.index] == 1
        assert pred_true == {}

    def test_custom_uses_cached_base_not_table_lookup(self):
        """The hot path must not consult the PredicateTable per call."""
        table = PredicateTable()
        site = table.add_custom_site("f", 1, "heap", ["ok", "bad"])
        rt = Runtime(table)
        rt.begin_run(SamplingPlan.full(), seed=0)

        calls = []
        original = table.predicate_indices_at

        def spying(index):
            calls.append(index)
            return original(index)

        table.predicate_indices_at = spying
        try:
            rt.custom(site.index, [False, True])
        finally:
            table.predicate_indices_at = original
        assert calls == []
        _, pred_true = rt.end_run()
        assert set(pred_true) == {1}
