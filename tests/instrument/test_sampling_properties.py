"""Property-based tests for the sampling machinery.

Two families of properties:

* the geometric-countdown sampler is *distributionally equivalent* to
  per-opportunity Bernoulli coin flips (the paper's "each potential
  sample is taken or skipped randomly and independently"), and the
  countdown implementation inside :class:`Runtime` is *exactly*
  equivalent to drawing geometric gaps from the same RNG stream;
* sampler state round-trips through
  :meth:`Runtime.sampler_state`/:meth:`restore_sampler_state`, so the
  take/skip decision stream survives an arbitrary split point -- the
  in-process analogue of a shard boundary, and the determinism contract
  the fault-tolerant collector's retries lean on.

All statistical assertions use a deterministic RNG derived from
hypothesis-chosen seeds plus generous (many-sigma) bounds, so the suite
is reproducible and flake-free.
"""

import math
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.instrument.runtime import Runtime  # noqa: E402
from repro.instrument.sampling import SamplingPlan, geometric_gap  # noqa: E402

from tests.helpers import make_table  # noqa: E402

pytestmark = pytest.mark.property

#: Shared hypothesis profile: deterministic, no deadline (statistical
#: examples do real simulation work), modest example counts.
_SETTINGS = dict(derandomize=True, deadline=None)

_rates = st.floats(min_value=0.02, max_value=1.0, allow_nan=False)
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _mean(xs):
    return sum(xs) / len(xs)


class TestGeometricEquivalence:
    @settings(max_examples=25, **_SETTINGS)
    @given(rate=_rates, seed=_seeds)
    def test_gap_mean_matches_bernoulli_waiting_time(self, rate, seed):
        """E[gap] = 1/rate, within many standard errors."""
        rng = random.Random(seed)
        m = 4000
        gaps = [geometric_gap(rate, rng.random()) for _ in range(m)]
        # Var(Geometric(rate)) = (1-rate)/rate^2.
        se = math.sqrt(1.0 - rate) / rate / math.sqrt(m)
        assert abs(_mean(gaps) - 1.0 / rate) < 7 * se + 1e-9

    @settings(max_examples=25, **_SETTINGS)
    @given(rate=_rates, seed=_seeds)
    def test_gap_distribution_matches_direct_coin_flips(self, rate, seed):
        """Gaps drawn by inverse-CDF match gaps of a literal Bernoulli
        scan: same mean and same per-bucket probabilities
        P(gap = k) = rate * (1-rate)^(k-1)."""
        m = 4000
        rng = random.Random(seed)
        gaps = [geometric_gap(rate, rng.random()) for _ in range(m)]
        flip = random.Random(seed + 1)
        direct = []
        for _ in range(m):
            k = 1
            while flip.random() >= rate:
                k += 1
            direct.append(k)

        se_mean = math.sqrt(1.0 - rate) / rate / math.sqrt(m)
        assert abs(_mean(gaps) - _mean(direct)) < 10 * se_mean + 1e-9
        for k in (1, 2, 3):
            p = rate * (1.0 - rate) ** (k - 1)
            se_p = math.sqrt(p * (1.0 - p) / m)
            for sample in (gaps, direct):
                phat = sum(1 for g in sample if g == k) / m
                assert abs(phat - p) < 7 * se_p + 1e-9

    @settings(max_examples=50, **_SETTINGS)
    @given(rate=_rates, u=st.floats(min_value=1e-12, max_value=1.0, exclude_max=True))
    def test_gap_is_at_least_one(self, rate, u):
        assert geometric_gap(rate, u) >= 1

    @settings(max_examples=20, **_SETTINGS)
    @given(u=st.floats(min_value=0.0, max_value=1.0, exclude_max=True))
    def test_rate_one_always_samples(self, u):
        assert geometric_gap(1.0, u) == 1

    @settings(max_examples=25, **_SETTINGS)
    @given(rate=_rates, seed=_seeds, n=st.integers(min_value=1, max_value=400))
    def test_runtime_countdown_equals_gap_stream(self, rate, seed, n):
        """The uniform-mode countdown in Runtime produces exactly the
        take/skip stream implied by drawing geometric gaps from the same
        RNG -- the countdown is an implementation of the gap draw, not an
        approximation of it."""
        runtime = Runtime(make_table(1))
        runtime.begin_run(SamplingPlan.uniform(rate), seed=seed)
        stream = [runtime._take(0) for _ in range(n)]

        rng = random.Random(seed)
        expected = []
        gap = geometric_gap(rate, rng.random())
        for _ in range(n):
            gap -= 1
            if gap > 0:
                expected.append(False)
            else:
                expected.append(True)
                gap = geometric_gap(rate, rng.random())
        assert stream == expected


class TestSamplerStateRoundTrip:
    """Countdown state survives an arbitrary split point: restoring a
    snapshot into a *different* Runtime instance continues the decision
    stream exactly where the original would have."""

    @settings(max_examples=25, **_SETTINGS)
    @given(
        rate=_rates,
        seed=_seeds,
        n=st.integers(min_value=2, max_value=300),
        data=st.data(),
    )
    def test_uniform_stream_survives_split(self, rate, seed, n, data):
        split = data.draw(st.integers(min_value=0, max_value=n))
        reference = Runtime(make_table(1))
        reference.begin_run(SamplingPlan.uniform(rate), seed=seed)
        whole = [reference._take(0) for _ in range(n)]

        first = Runtime(make_table(1))
        first.begin_run(SamplingPlan.uniform(rate), seed=seed)
        head = [first._take(0) for _ in range(split)]
        snapshot = first.sampler_state()

        second = Runtime(make_table(1))
        second.begin_run(SamplingPlan.uniform(rate), seed=seed + 12345)
        second.restore_sampler_state(snapshot)
        tail = [second._take(0) for _ in range(n - split)]
        assert head + tail == whole

    @settings(max_examples=20, **_SETTINGS)
    @given(
        seed=_seeds,
        n=st.integers(min_value=2, max_value=200),
        rates=st.lists(_rates, min_size=2, max_size=4),
        data=st.data(),
    )
    def test_per_site_stream_survives_split(self, seed, n, rates, data):
        split = data.draw(st.integers(min_value=0, max_value=n))
        n_sites = len(rates)
        plan = SamplingPlan.per_site(rates)
        # The visit order exercises interleaved per-site countdowns.
        site_rng = random.Random(seed ^ 0x5EED)
        visits = [site_rng.randrange(n_sites) for _ in range(n)]

        reference = Runtime(make_table(n_sites))
        reference.begin_run(plan, seed=seed)
        whole = [reference._take(s) for s in visits]

        first = Runtime(make_table(n_sites))
        first.begin_run(plan, seed=seed)
        head = [first._take(s) for s in visits[:split]]
        snapshot = first.sampler_state()

        second = Runtime(make_table(n_sites))
        second.begin_run(plan, seed=seed + 999)
        second.restore_sampler_state(snapshot)
        tail = [second._take(s) for s in visits[split:]]
        assert head + tail == whole

    @settings(max_examples=10, **_SETTINGS)
    @given(seed=_seeds)
    def test_full_mode_round_trips(self, seed):
        runtime = Runtime(make_table(1))
        runtime.begin_run(SamplingPlan.full(), seed=seed)
        snapshot = runtime.sampler_state()
        assert snapshot["kind"] == "full"
        other = Runtime(make_table(1))
        other.begin_run(SamplingPlan.uniform(0.5), seed=seed)
        other.restore_sampler_state(snapshot)
        assert all(other._take(0) for _ in range(50))

    @settings(max_examples=15, **_SETTINGS)
    @given(rate=_rates, seed=_seeds)
    def test_snapshot_does_not_disturb_counters(self, rate, seed):
        """Snapshotting and restoring is observation-neutral: only the
        sampling side moves, never the counters."""
        runtime = Runtime(make_table(1))
        runtime.begin_run(SamplingPlan.uniform(rate), seed=seed)
        for _ in range(20):
            runtime.branch(0, True)
        before = runtime.end_run()
        runtime.restore_sampler_state(runtime.sampler_state())
        assert runtime.end_run() == before

    def test_unknown_snapshot_kind_rejected(self):
        runtime = Runtime(make_table(1))
        runtime.begin_run(SamplingPlan.full(), seed=0)
        snapshot = runtime.sampler_state()
        snapshot["kind"] = "quantum"
        with pytest.raises(ValueError, match="unknown sampler kind"):
            runtime.restore_sampler_state(snapshot)


class TestExplicitModeRoundTrip:
    """The runtime's explicit ``mode`` attribute round-trips through
    ``sampler_state`` / ``restore_sampler_state`` -- the snapshot carries
    it under both the legacy ``kind`` key and the new ``mode`` key, and
    restoring reproduces the attribute (and the integer dispatch id
    behind the fast path) exactly."""

    def _begin(self, runtime, mode, rate, seed):
        if mode == "full":
            runtime.begin_run(SamplingPlan.full(), seed=seed)
        elif mode == "uniform":
            runtime.begin_run(SamplingPlan.uniform(rate), seed=seed)
        else:
            runtime.begin_run(SamplingPlan.per_site([rate, 1.0]), seed=seed)

    @settings(max_examples=40, **_SETTINGS)
    @given(
        mode=st.sampled_from(["full", "uniform", "per-site"]),
        rate=_rates,
        seed=_seeds,
        warmup=st.integers(min_value=0, max_value=80),
        sampler=st.sampled_from(["fast", "legacy"]),
    )
    def test_mode_round_trips(self, mode, rate, seed, warmup, sampler):
        runtime = Runtime(make_table(2), sampler=sampler)
        self._begin(runtime, mode, rate, seed)
        for _ in range(warmup):
            runtime._take(0)
        assert runtime.mode == mode
        snapshot = runtime.sampler_state()
        assert snapshot["mode"] == mode == snapshot["kind"]

        other = Runtime(make_table(2), sampler=sampler)
        # Start the receiver in a *different* mode: the snapshot wins.
        self._begin(other, "uniform" if mode != "uniform" else "full", 0.5, seed + 7)
        other.restore_sampler_state(snapshot)
        assert other.mode == mode
        assert other.sampler_state()["mode"] == mode

    @settings(max_examples=25, **_SETTINGS)
    @given(
        rate=_rates,
        seed=_seeds,
        warmup=st.integers(min_value=0, max_value=120),
        n=st.integers(min_value=1, max_value=200),
    )
    def test_pending_gap_batch_survives_round_trip(self, rate, seed, warmup, n):
        """The fast path pre-draws a batch of countdown gaps; a snapshot
        taken mid-batch must hand the unconsumed gaps (in consumption
        order) to the restored instance, keeping the decision stream
        bit-identical to the uninterrupted one."""
        reference = Runtime(make_table(1))
        reference.begin_run(SamplingPlan.uniform(rate), seed=seed)
        whole = [reference._take(0) for _ in range(warmup + n)]

        first = Runtime(make_table(1))
        first.begin_run(SamplingPlan.uniform(rate), seed=seed)
        head = [first._take(0) for _ in range(warmup)]
        snapshot = first.sampler_state()
        assert snapshot["pending"] == first.sampler_state()["pending"]

        second = Runtime(make_table(1))
        second.begin_run(SamplingPlan.uniform(0.9), seed=seed + 1)
        second.restore_sampler_state(snapshot)
        tail = [second._take(0) for _ in range(n)]
        assert head + tail == whole

    @settings(max_examples=15, **_SETTINGS)
    @given(seed=_seeds, rate=_rates, warmup=st.integers(min_value=0, max_value=60))
    def test_legacy_snapshot_without_mode_key_restores(self, seed, rate, warmup):
        """Snapshots written before the explicit ``mode`` attribute carry
        only ``kind``; they must keep restoring byte-for-byte."""
        donor = Runtime(make_table(1))
        donor.begin_run(SamplingPlan.uniform(rate), seed=seed)
        for _ in range(warmup):
            donor._take(0)
        snapshot = donor.sampler_state()
        del snapshot["mode"]
        expected = [donor._take(0) for _ in range(100)]

        receiver = Runtime(make_table(1))
        receiver.begin_run(SamplingPlan.full(), seed=seed)
        receiver.restore_sampler_state(snapshot)
        assert receiver.mode == "uniform"
        assert [receiver._take(0) for _ in range(100)] == expected


class TestSufficientStatsPartitionAlgebra:
    """The parallel engine's algebra: sufficient statistics are additive
    over *any* run partition and sliceable over *any* predicate
    partition, with integer (run axis) and bitwise-float (predicate
    axis) equality to the monolithic computation.  These are the two
    halves of the ``analyze --jobs`` bit-identity contract
    (``repro/core/engine.py``)."""

    @staticmethod
    def _random_population(data, max_preds=6, max_runs=40):
        import numpy as np

        from tests.helpers import make_reports

        n_preds = data.draw(st.integers(1, max_preds))
        n_runs = data.draw(st.integers(1, max_runs))
        runs = []
        for _ in range(n_runs):
            failed = data.draw(st.booleans())
            true = data.draw(st.sets(st.integers(0, n_preds - 1), max_size=n_preds))
            # Partial observation exercises F_obs/S_obs too.
            observed = data.draw(
                st.one_of(
                    st.none(),
                    st.sets(st.integers(0, n_preds - 1), max_size=n_preds),
                )
            )
            runs.append((failed, true, observed))
        return make_reports(n_preds, runs), np, n_runs

    @settings(max_examples=40, **_SETTINGS)
    @given(data=st.data())
    def test_random_run_partition_merges_to_monolithic(self, data):
        """Any assignment of runs to parts, merged in any tree shape,
        reproduces the monolithic counts exactly (integer equality)."""
        from repro.core.scores import sufficient_counts
        from repro.store.incremental import SufficientStats

        reports, np, n_runs = self._random_population(data)
        k = data.draw(st.integers(1, 5))
        assignment = [data.draw(st.integers(0, k - 1)) for _ in range(n_runs)]
        parts = []
        for part in range(k):
            mask = np.array([a == part for a in assignment], dtype=bool)
            if mask.any():
                parts.append(SufficientStats.from_reports(reports, run_mask=mask))
        merged = SufficientStats.merge_tree(parts)

        F, S, F_obs, S_obs, num_failing, num_successful = sufficient_counts(reports)
        np.testing.assert_array_equal(merged.F, F)
        np.testing.assert_array_equal(merged.S, S)
        np.testing.assert_array_equal(merged.F_obs, F_obs)
        np.testing.assert_array_equal(merged.S_obs, S_obs)
        assert merged.num_failing == num_failing
        assert merged.num_successful == num_successful

    @settings(max_examples=40, **_SETTINGS)
    @given(data=st.data())
    def test_merge_shape_independence(self, data):
        """Tree merge equals left fold over any permutation of parts."""
        from repro.store.incremental import SufficientStats

        reports, np, n_runs = self._random_population(data)
        k = data.draw(st.integers(1, 5))
        assignment = [data.draw(st.integers(0, k - 1)) for _ in range(n_runs)]
        parts = []
        for part in range(k):
            mask = np.array([a == part for a in assignment], dtype=bool)
            parts.append(SufficientStats.from_reports(reports, run_mask=mask))
        order = data.draw(st.permutations(range(len(parts))))
        shuffled = [parts[i] for i in order]

        tree = SufficientStats.merge_tree([p + SufficientStats.zeros(p.n_predicates) for p in shuffled])
        fold = SufficientStats.zeros(parts[0].n_predicates)
        for p in parts:
            fold.add(p)
        np.testing.assert_array_equal(tree.F, fold.F)
        np.testing.assert_array_equal(tree.S, fold.S)
        np.testing.assert_array_equal(tree.F_obs, fold.F_obs)
        np.testing.assert_array_equal(tree.S_obs, fold.S_obs)
        assert tree.num_failing == fold.num_failing
        assert tree.num_successful == fold.num_successful

    @settings(max_examples=40, **_SETTINGS)
    @given(data=st.data())
    def test_predicate_slices_score_bitwise(self, data):
        """Scoring predicate slices and concatenating is bitwise equal
        to scoring the whole table (the predicate-axis half)."""
        from repro.core.engine import concat_scores, partition_bounds
        from repro.store.incremental import SufficientStats

        reports, np, _ = self._random_population(data)
        stats = SufficientStats.from_reports(reports)
        parts = data.draw(st.integers(1, 8))
        whole = stats.to_scores()
        sliced = concat_scores(
            [
                stats.slice_predicates(lo, hi).to_scores()
                for lo, hi in partition_bounds(stats.n_predicates, parts)
            ]
        )
        for field in (
            "failure", "context", "increase", "increase_se", "increase_lo",
            "increase_hi", "pf", "ps", "z", "z_defined", "defined",
        ):
            assert getattr(sliced, field).tobytes() == getattr(whole, field).tobytes()
        np.testing.assert_array_equal(sliced.F, whole.F)
        np.testing.assert_array_equal(sliced.S, whole.S)
