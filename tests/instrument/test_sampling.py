"""Tests for the Bernoulli/geometric sampling machinery."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument.sampling import (
    MIN_ADAPTIVE_RATE,
    SamplingPlan,
    adaptive_rates,
    geometric_gap,
)


class TestGeometricGap:
    def test_rate_one_always_samples(self):
        assert geometric_gap(1.0, 0.5) == 1
        assert geometric_gap(1.0, 0.999) == 1

    def test_gaps_are_positive(self):
        rng = random.Random(0)
        for _ in range(200):
            assert geometric_gap(0.01, rng.random()) >= 1

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            geometric_gap(0.0, 0.5)
        with pytest.raises(ValueError):
            geometric_gap(1.5, 0.5)

    def test_mean_gap_matches_geometric_distribution(self):
        """E[gap] for Geometric(p) is 1/p; check within 10%."""
        rng = random.Random(42)
        rate = 0.05
        gaps = [geometric_gap(rate, rng.random()) for _ in range(20000)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1 / rate, rel=0.1)

    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(0.001, 1.0), u=st.floats(1e-9, 1 - 1e-9))
    def test_gap_is_deterministic_in_inputs(self, rate, u):
        assert geometric_gap(rate, u) == geometric_gap(rate, u)


class TestAdaptiveRates:
    def test_hot_sites_get_low_rates(self):
        rates = adaptive_rates([10000.0], target_samples=100)
        assert rates[0] == pytest.approx(0.01)

    def test_rare_sites_get_rate_one(self):
        """Sites reached fewer than `target` times per run sample always."""
        rates = adaptive_rates([5.0, 99.0], target_samples=100)
        assert rates.tolist() == [1.0, 1.0]

    def test_rate_floor_clamps_extremely_hot_sites(self):
        rates = adaptive_rates([10 ** 9], target_samples=100)
        assert rates[0] == MIN_ADAPTIVE_RATE

    def test_unreached_sites_get_rate_one(self):
        rates = adaptive_rates([0.0])
        assert rates[0] == 1.0

    def test_intermediate_site_rate_is_target_over_count(self):
        rates = adaptive_rates([400.0], target_samples=100)
        assert rates[0] == pytest.approx(0.25)


class TestSamplingPlan:
    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan.uniform(0.0)
        plan = SamplingPlan.uniform(0.5)
        assert plan.mode == "uniform" and plan.rate == 0.5

    def test_per_site_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan.per_site([0.5, 0.0])
        plan = SamplingPlan.per_site([0.5, 1.0])
        assert plan.mode == "per-site"

    def test_full_plan_has_no_gaps(self):
        rng = np.random.default_rng(0)
        assert SamplingPlan.full().initial_gaps(5, rng) == []

    def test_uniform_plan_single_gap(self):
        rng = np.random.default_rng(0)
        gaps = SamplingPlan.uniform(0.1).initial_gaps(5, rng)
        assert len(gaps) == 1 and gaps[0] >= 1

    def test_per_site_plan_gap_per_site(self):
        rng = np.random.default_rng(0)
        plan = SamplingPlan.per_site([0.5, 1.0, 0.01])
        gaps = plan.initial_gaps(3, rng)
        assert len(gaps) == 3
        assert gaps[1] == 1  # rate 1.0 always samples

    def test_per_site_plan_requires_enough_rates(self):
        rng = np.random.default_rng(0)
        plan = SamplingPlan.per_site([0.5])
        with pytest.raises(ValueError):
            plan.initial_gaps(3, rng)

    def test_adaptive_constructor_combines_training(self):
        plan = SamplingPlan.adaptive([1000.0, 3.0], target_samples=100)
        assert plan.site_rates[0] == pytest.approx(0.1)
        assert plan.site_rates[1] == 1.0
