"""Tests for the source-to-source instrumenter.

The central property: instrumentation must preserve program semantics.
We check it on hand-written programs covering every rewritten construct
and on randomly generated programs (hypothesis).
"""

import ast

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import Scheme
from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.instrument.transform import InstrumentationConfig, Instrumenter


def _run_both(source, func, *args, config=None):
    """Execute ``func(*args)`` in the plain and the instrumented module."""
    plain = {}
    exec(compile(source, "<plain>", "exec"), plain)
    expected = plain[func](*args)

    prog = instrument_source(source, "t", config=config)
    prog.begin_run(SamplingPlan.full(), seed=1)
    actual = prog.func(func)(*args)
    prog.end_run()
    return expected, actual, prog


class TestSemanticPreservation:
    def test_branches_and_loops(self):
        src = """
def f(n):
    total = 0
    i = 0
    while i < n:
        if i % 3 == 0 and i % 2 == 0:
            total += i
        elif i % 5 == 0 or i > 12:
            total -= 1
        i += 1
    return total
"""
        expected, actual, _ = _run_both(src, "f", 30)
        assert expected == actual

    def test_ternary_and_comprehension(self):
        src = """
def f(xs):
    ys = [x * 2 for x in xs if x > 0]
    return ys if len(ys) > 1 else []
"""
        expected, actual, _ = _run_both(src, "f", [3, -1, 4])
        assert expected == actual

    def test_call_wrapping_preserves_values(self):
        src = """
def g(x):
    return x - 10

def f(x):
    return g(abs(x)) + len([x])
"""
        expected, actual, _ = _run_both(src, "f", -5)
        assert expected == actual

    def test_short_circuit_evaluation_preserved(self):
        src = """
CALLS = []

def effect(tag, value):
    CALLS.append(tag)
    return value

def f():
    r = effect('a', False) and effect('b', True)
    s = effect('c', True) or effect('d', True)
    return (r, s, CALLS)
"""
        expected, actual, _ = _run_both(src, "f")
        assert expected == actual  # 'b' and 'd' never evaluated

    def test_augmented_and_annotated_assignments(self):
        src = """
def f(n):
    x: int = 3
    x += n
    x *= 2
    return x
"""
        expected, actual, _ = _run_both(src, "f", 4)
        assert expected == actual

    def test_try_except_with_and_nested_functions(self):
        src = """
def f(n):
    def inner(k):
        return k * 3
    out = []
    try:
        out.append(inner(n))
        if n < 0:
            raise ValueError("neg")
    except ValueError:
        out.append(-1)
    finally:
        out.append(99)
    return out
"""
        for arg in (2, -2):
            expected, actual, _ = _run_both(src, "f", arg)
            assert expected == actual

    def test_classes_and_methods(self):
        src = """
class Counter:
    def __init__(self, start):
        self.value = start

    def bump(self, by):
        self.value += by
        return self.value

def f(n):
    c = Counter(n)
    for i in range(3):
        c.bump(i)
    return c.value
"""
        expected, actual, _ = _run_both(src, "f", 10)
        assert expected == actual

    def test_unbound_variable_paths_do_not_break(self):
        """Scalar-pair capture of a maybe-unbound variable must not
        change behaviour."""
        src = """
def f(flag):
    if flag:
        y = 10
    z = 5
    return z
"""
        expected, actual, _ = _run_both(src, "f", False)
        assert expected == actual

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(-20, 20),
        b=st.integers(-20, 20),
        ops=st.lists(st.sampled_from(["+", "-", "*"]), min_size=1, max_size=4),
    )
    def test_random_arithmetic_programs(self, a, b, ops):
        body = ["    r = a"]
        for i, op in enumerate(ops):
            body.append(f"    r = r {op} (b + {i}) if r > {i} else r {op} a")
        src = "def f(a, b):\n" + "\n".join(body) + "\n    return r\n"
        expected, actual, _ = _run_both(src, "f", a, b)
        assert expected == actual


class TestSiteRegistration:
    def test_branch_sites_for_if_and_while(self):
        src = """
def f(x):
    while x > 0:
        if x % 2:
            x -= 1
        x -= 1
    return x
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(returns=False, scalar_pairs=False)
        )
        branch_sites = [s for s in prog.table.sites if s.scheme is Scheme.BRANCHES]
        assert len(branch_sites) == 2
        descs = {s.description for s in branch_sites}
        assert descs == {"x > 0", "x % 2"}

    def test_descriptions_do_not_leak_instrumentation(self):
        src = """
def f(x):
    if g(x) > 0 and h(x):
        return 1
    return 0

def g(x):
    return x

def h(x):
    return x
"""
        prog = instrument_source(src, "t")
        for pred in prog.table.predicates:
            assert "_cbi" not in pred.name

    def test_returns_sites_per_call(self):
        src = """
def f(x):
    a = g(x)
    return g(a) + h(x)

def g(x):
    return x

def h(x):
    return x
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(branches=False, scalar_pairs=False)
        )
        ret_sites = [s for s in prog.table.sites if s.scheme is Scheme.RETURNS]
        assert len(ret_sites) == 3
        assert {s.description for s in ret_sites} == {"g", "h"}

    def test_scalar_pair_sites_include_old_value(self):
        src = """
def f(a):
    x = a + 1
    x = x * 2
    return x
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(branches=False, returns=False)
        )
        descs = [s.description for s in prog.table.sites]
        assert "new value of x __ old value of x" in descs
        assert any(d == "x __ a" for d in descs)

    def test_for_loop_target_gets_pairs(self):
        src = """
def f(n):
    total = 0
    for i in range(n):
        total += i
    return total
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(branches=False, returns=False)
        )
        descs = [s.description for s in prog.table.sites]
        assert any(d.startswith("i __ ") for d in descs)

    def test_constants_appear_as_pair_candidates(self):
        src = """
def f(a):
    limit = 500
    count = a
    return count
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(branches=False, returns=False)
        )
        names = [p.name for p in prog.table.predicates]
        assert "count > 500" in names


class TestExclusions:
    def test_excluded_call_prefixes_not_wrapped(self):
        src = """
def record_bug(x):
    return 1

def f():
    return record_bug("id")
"""
        prog = instrument_source(
            src, "t", config=InstrumentationConfig(branches=False, scalar_pairs=False)
        )
        assert all(s.description != "record_bug" for s in prog.table.sites)

    def test_excluded_functions_not_instrumented(self):
        src = """
def hot(x):
    if x > 0:
        return x
    return -x

def f(x):
    if x > 1:
        return hot(x)
    return 0
"""
        config = InstrumentationConfig(
            returns=False, scalar_pairs=False, exclude_functions=frozenset({"hot"})
        )
        prog = instrument_source(src, "t", config=config)
        functions = {s.function for s in prog.table.sites}
        assert "hot" not in functions
        assert "f" in functions

    def test_scheme_toggles(self):
        src = """
def f(x):
    y = g(x)
    if y > 0:
        return y
    return 0

def g(x):
    return x
"""
        none = instrument_source(
            src,
            "t",
            config=InstrumentationConfig(
                branches=False, returns=False, scalar_pairs=False
            ),
        )
        assert none.table.n_sites == 0


class TestFunctionEntries:
    SRC = """
def alpha(x):
    return x + 1

def beta(x):
    return alpha(x) * 2
"""

    def test_entry_sites_registered(self):
        prog = instrument_source(
            self.SRC,
            "t",
            config=InstrumentationConfig(
                branches=False,
                returns=False,
                scalar_pairs=False,
                function_entries=True,
            ),
        )
        entry_sites = [
            s for s in prog.table.sites if s.scheme is Scheme.FUNCTION_ENTRIES
        ]
        assert {s.description for s in entry_sites} == {"alpha", "beta"}
        names = [p.name for p in prog.table.predicates]
        assert "alpha entered" in names

    def test_entries_recorded_as_coverage(self):
        prog = instrument_source(
            self.SRC,
            "t",
            config=InstrumentationConfig(
                branches=False,
                returns=False,
                scalar_pairs=False,
                function_entries=True,
            ),
        )
        prog.begin_run(SamplingPlan.full(), seed=0)
        assert prog.func("beta")(3) == 8
        site_obs, pred_true = prog.end_run()
        assert len(site_obs) == 2  # both functions entered
        assert all(count == 1 for count in pred_true.values())

    def test_default_config_has_no_entry_sites(self):
        prog = instrument_source(self.SRC, "t")
        assert not any(
            s.scheme is Scheme.FUNCTION_ENTRIES for s in prog.table.sites
        )

    def test_semantics_preserved(self):
        expected, actual, _ = _run_both(
            self.SRC,
            "beta",
            5,
            config=InstrumentationConfig(function_entries=True),
        )
        assert expected == actual


class TestFloatKindsScheme:
    SRC = """
def f(a, b):
    ratio = a / b if b else float('nan')
    total = a + b
    return (ratio, total)
"""

    def _config(self):
        return InstrumentationConfig(
            branches=False, returns=False, scalar_pairs=False, float_kinds=True
        )

    def test_sites_registered_per_assignment(self):
        prog = instrument_source(self.SRC, "t", config=self._config())
        fk = [s for s in prog.table.sites if s.scheme is Scheme.FLOAT_KINDS]
        assert {s.description for s in fk} == {"ratio", "total"}

    def test_observations_classify_values(self):
        prog = instrument_source(self.SRC, "t", config=self._config())
        prog.begin_run(SamplingPlan.full(), seed=0)
        prog.func("f")(1.0, 0)
        _, pred_true = prog.end_run()
        names = {prog.table.predicates[i].name for i in pred_true}
        assert "ratio is NaN" in names
        # total = 1.0 + 0 = 1.0 (float): positive.
        assert "total is positive" in names

    def test_semantics_preserved(self):
        expected, actual, _ = _run_both(
            self.SRC, "f", 6.0, 3.0, config=self._config()
        )
        assert expected == actual

    def test_int_assignments_unobserved(self):
        prog = instrument_source(self.SRC, "t", config=self._config())
        prog.begin_run(SamplingPlan.full(), seed=0)
        prog.func("f")(6, 3)  # ints: ratio is float (true div), total int
        site_obs, _ = prog.end_run()
        fk_sites = {
            s.index for s in prog.table.sites if s.scheme is Scheme.FLOAT_KINDS
        }
        observed_fk = fk_sites & set(site_obs)
        descs = {prog.table.sites[s].description for s in observed_fk}
        assert descs == {"ratio"}


class TestPairCaps:
    def test_max_pair_vars_cap(self):
        lines = ["def f(a):"]
        for i in range(15):
            lines.append(f"    v{i} = a + {i}")
        lines.append("    final = a")
        lines.append("    return final")
        src = "\n".join(lines) + "\n"
        capped = Instrumenter(
            config=InstrumentationConfig(
                branches=False, returns=False, max_pair_vars=3, max_pair_consts=0,
                include_old_value=False,
            )
        )
        capped.instrument(src)
        final_sites = [
            s for s in capped.table.sites if s.description.startswith("final __ ")
        ]
        assert len(final_sites) == 3
        # The most recently assigned variables are kept.
        assert {s.description for s in final_sites} == {
            "final __ v12",
            "final __ v13",
            "final __ v14",
        }
