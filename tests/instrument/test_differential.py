"""Differential testing: instrumentation must preserve semantics.

For every registered subject, the instrumented program and the plain
(un-instrumented) source are executed over the same randomized input
corpus; outputs, exception types, oracle verdicts and recorded
ground-truth bugs must be identical.  This pins the transformer's
"helpers return their wrapped value unchanged" contract on real subject
code, not just synthetic snippets -- and it must hold under sampling
too, since skipped observations may not change behaviour either.
"""

import random

import pytest

from repro.cli import SUBJECTS
from repro.instrument.sampling import SamplingPlan
from repro.subjects import base as subject_base

#: Inputs per subject; seeds are fixed so failures are reproducible.
_CORPUS_SIZE = 20

#: The hand-built subjects only: their 20-input corpus is tuned to hit
#: both crashing and passing runs, which factory mutants (graded by a
#: differential oracle, often without crashing at all) need not.
_BUILTINS = sorted(
    name for name in SUBJECTS if SUBJECTS[name]().kind == "builtin"
)


def _run_plain(subject, entry, trial_input):
    """Execute the un-instrumented source on one input."""
    subject_base.begin_truth_capture()
    try:
        output = entry(trial_input)
    except Exception as exc:
        return ("raised", type(exc).__name__, subject_base.end_truth_capture())
    bugs = subject_base.end_truth_capture()
    return ("returned", repr(output), subject.oracle(trial_input, output), bugs)


def _run_instrumented(subject, program, plan, trial_input, seed):
    """Execute the instrumented program on one input under ``plan``."""
    entry = program.func(subject.entry)
    subject_base.begin_truth_capture()
    program.begin_run(plan, seed=seed)
    try:
        output = entry(trial_input)
    except Exception as exc:
        program.end_run()
        return ("raised", type(exc).__name__, subject_base.end_truth_capture())
    program.end_run()
    bugs = subject_base.end_truth_capture()
    return ("returned", repr(output), subject.oracle(trial_input, output), bugs)


def _plain_namespace(subject):
    if subject.kind == "factory":
        # Same (mutated) sources, executed through the loader but
        # without instrumentation.
        from repro.factory.loader import pristine_namespace

        return pristine_namespace(subject.package, subject.modules())
    namespace = {"__name__": f"plain_{subject.name}"}
    exec(compile(subject.source(), f"<plain {subject.name}>", "exec"), namespace)
    return namespace


@pytest.mark.parametrize("name", sorted(SUBJECTS))
def test_instrumented_execution_identical_to_plain(name):
    subject = SUBJECTS[name]()
    plain_entry = _plain_namespace(subject)[subject.entry]
    program = subject.build_program()
    plan = SamplingPlan.full()

    mismatches = []
    for i in range(_CORPUS_SIZE):
        trial_input = subject.generate_input(random.Random(1000 + i))
        plain = _run_plain(subject, plain_entry, trial_input)
        instrumented = _run_instrumented(subject, program, plan, trial_input, i + 1)
        if plain != instrumented:
            mismatches.append((i, plain, instrumented))
    assert not mismatches, mismatches


@pytest.mark.parametrize("name", sorted(SUBJECTS))
def test_semantics_preserved_under_sampling(name):
    """Sampling only skips observations; it must never change behaviour
    or which bugs occur."""
    subject = SUBJECTS[name]()
    plain_entry = _plain_namespace(subject)[subject.entry]
    program = subject.build_program()
    plan = SamplingPlan.uniform(0.1)

    for i in range(_CORPUS_SIZE // 2):
        trial_input = subject.generate_input(random.Random(2000 + i))
        plain = _run_plain(subject, plain_entry, trial_input)
        instrumented = _run_instrumented(subject, program, plan, trial_input, i + 1)
        assert instrumented == plain, (i, plain, instrumented)


@pytest.mark.parametrize("name", _BUILTINS)
def test_corpus_exercises_both_outcomes(name):
    """The differential comparison is only convincing if the corpus
    actually covers both crashing and passing runs for every subject."""
    subject = SUBJECTS[name]()
    plain_entry = _plain_namespace(subject)[subject.entry]
    outcomes = set()
    for i in range(_CORPUS_SIZE):
        trial_input = subject.generate_input(random.Random(1000 + i))
        outcomes.add(_run_plain(subject, plain_entry, trial_input)[0])
    assert outcomes == {"raised", "returned"}
