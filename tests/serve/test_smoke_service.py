"""Service smoke test: real processes, concurrent clients, kill/restart.

This is the CI ``service-smoke`` scenario: a collection daemon as a real
subprocess, two concurrent ``repro-cbi submit`` clients, live ``/scores``
polling, a SIGKILL mid-stream with acknowledged-but-uncommitted reports
in the WAL, a restart over the same store, and a graceful SIGTERM drain
-- after which the store must recover and audit clean.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.store import ShardStore

pytestmark = pytest.mark.slow

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def _cli(*argv, **kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kwargs,
    )


def _start_server(store_dir, *extra):
    process = _cli(
        "serve", str(store_dir), "--port", "0", "--batch-runs", "20",
        "--sampling", "full", *extra,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving ccrypt on http://"), line
    url = line.split(" on ", 1)[1].split(" ", 1)[0]
    return process, url


def _submit(url, spool_dir, seed, runs):
    return _cli(
        "submit", "--subject", "ccrypt", "--url", url,
        "--runs", str(runs), "--seed", str(seed),
        "--spool", str(spool_dir), "--batch-size", "10",
        "--sampling", "full",
    )


def _get(url, path, timeout=5.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def _poll_runs(url, want, deadline=60.0):
    end = time.time() + deadline
    while time.time() < end:
        doc = _get(url, "/scores")
        if doc["n_runs"] >= want:
            return doc
        time.sleep(0.2)
    pytest.fail(f"server never reached {want} committed runs")


def test_service_smoke(tmp_path):
    store_dir = tmp_path / "store"
    server, url = _start_server(store_dir, "--subject", "ccrypt")
    try:
        # Two concurrent clients over disjoint seed ranges.
        clients = [
            _submit(url, tmp_path / "spool-a", 0, 40),
            _submit(url, tmp_path / "spool-b", 40, 40),
        ]
        for client in clients:
            out, err = client.communicate(timeout=180)
            assert client.returncode == 0, err
            assert "submitted: 40 accepted, 0 duplicate, 0 rejected" in out

        # Seeds 0..79 are contiguous, so every batch commits; the live
        # scores document converges on the full committed population.
        doc = _poll_runs(url, 80)
        assert doc["subject"] == "ccrypt"
        assert doc["num_failing"] > 0
        assert doc["predicates"], "no predictors over the live population"
        health = _get(url, "/healthz")
        assert health["n_runs"] == 80
        assert health["queue_depth"] == 0

        # A third client leaves a partial tail (half a batch): those 10
        # reports are acknowledged but live only in the ingest WAL.
        tail = _submit(url, tmp_path / "spool-c", 80, 10)
        out, err = tail.communicate(timeout=120)
        assert tail.returncode == 0, err
        assert _get(url, "/healthz")["queue_depth"] == 10

        # Kill -9 mid-stream: no drain, no goodbye.
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # Restart over the same store: the manifest pins the subject and the
    # WAL replay restores the acknowledged tail.
    server, url = _start_server(store_dir)
    try:
        assert _get(url, "/healthz")["queue_depth"] == 10

        # Completing the seed range flushes the replayed tail to disk.
        finish = _submit(url, tmp_path / "spool-d", 90, 10)
        out, err = finish.communicate(timeout=120)
        assert finish.returncode == 0, err
        _poll_runs(url, 100)

        server.send_signal(signal.SIGTERM)
        out, err = server.communicate(timeout=60)
        assert server.returncode == 0, err
        assert "drained 0 pending reports" in out
        assert "100 runs" in out
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    store = ShardStore.open(str(store_dir))
    assert store.n_runs == 100
    assert store.recover() == ([], [])
    audit = store.audit()
    assert audit.runs_lost == 0
    assert store.n_runs == 100
