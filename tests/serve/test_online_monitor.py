"""End-to-end Section 5 loop: live server scores drive the online monitor.

The cooperative deployment closes the paper's feedback loop: clients
upload reports, the server publishes top predictors through
``GET /scores``, and a client turns those predictors into an
:class:`repro.core.online.OnlineMonitor` watch list -- so the *next*
failing run raises an alert before it crashes.
"""

from __future__ import annotations

import random

import pytest

from repro.core.online import OnlineMonitor
from repro.harness.runner import run_one_trial
from repro.serve import (
    ReportSpool,
    drain_spool,
    fetch_scores,
    run_and_spool,
    watched_from_scores,
)

N_RUNS = 150


def _failing_crash_seed(subject, program, plan, watched):
    """A seed whose run crashes while observing a watched predictor."""
    entry = program.func(subject.entry)
    for seed in range(N_RUNS, N_RUNS + 400):
        failed, _, pred_true, stack, _ = run_one_trial(
            subject, program, entry, plan, seed
        )
        if failed and stack is not None and watched.keys() & pred_true.keys():
            return seed
    pytest.fail("no crashing seed observes a watched predictor")


def test_live_scores_arm_a_monitor_that_fires_before_the_crash(
    tmp_path, ccrypt_server, ccrypt_subject, ccrypt_program, full_plan
):
    store, service, server = ccrypt_server

    # Phase 1: a cooperative population streams through the service.
    spool = ReportSpool(str(tmp_path / "spool"))
    run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, N_RUNS)
    drain_spool(
        spool,
        server.url,
        ccrypt_subject.name,
        ccrypt_program.table.signature(),
        batch_size=50,
        backoff_base=0.01,
        jitter=0.0,
    )

    # Phase 2: pull the live ranking and arm a monitor from it.
    document = fetch_scores(server.url, k=5)
    assert document["n_runs"] >= N_RUNS - service.batcher.batch_runs
    watched = watched_from_scores(document, k=5)
    assert watched, "the live ranking produced no predictors"
    assert all(0.0 <= v <= 1.0 for v in watched.values())

    # Phase 3: on a fresh failing input, the alert precedes the crash.
    seed = _failing_crash_seed(
        ccrypt_subject, ccrypt_program, full_plan, watched
    )
    events = []
    monitor = OnlineMonitor(
        ccrypt_program.runtime,
        watched,
        on_alert=lambda alert: events.append("alert"),
    )
    monitor.install()
    try:
        input_rng_seed = seed * 2654435761 % (2 ** 31)
        trial_input = ccrypt_subject.generate_input(random.Random(input_rng_seed))
        ccrypt_program.begin_run(full_plan, seed=seed + 1)
        try:
            ccrypt_program.func(ccrypt_subject.entry)(trial_input)
        except Exception:
            events.append("crash")
        ccrypt_program.end_run()
    finally:
        monitor.uninstall()

    assert monitor.fired
    assert events[0] == "alert"
    assert events[-1] == "crash"
    assert monitor.alerts[0].predicate.index in watched
