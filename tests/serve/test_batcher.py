"""Unit tests for the contiguous-seed report batcher."""

from __future__ import annotations

import pytest

from repro.serve.batcher import BatcherFull, ReportBatcher
from repro.serve.protocol import RunReport


def _report(seed: int) -> RunReport:
    return RunReport(
        seed=seed,
        failed=False,
        site_obs={0: 1},
        pred_true={},
        stack=None,
        bugs=(),
    )


def _offer_range(batcher, start, stop):
    for seed in range(start, stop):
        assert batcher.offer(_report(seed)) == "queued"


class TestOffer:
    def test_queue_and_depth(self):
        b = ReportBatcher(batch_runs=10)
        _offer_range(b, 0, 4)
        assert b.queue_depth == 4

    def test_duplicate_pending(self):
        b = ReportBatcher(batch_runs=10)
        assert b.offer(_report(3)) == "queued"
        assert b.offer(_report(3)) == "duplicate"
        assert b.queue_depth == 1

    def test_duplicate_committed(self):
        # committed takes half-open (start, stop) pairs, manifest-style.
        b = ReportBatcher(batch_runs=10, committed=[(100, 150)])
        assert b.is_committed(100)
        assert b.is_committed(149)
        assert not b.is_committed(150)
        assert b.offer(_report(120)) == "duplicate"
        assert b.queue_depth == 0

    def test_committed_ranges_merge(self):
        b = ReportBatcher(batch_runs=10, committed=[(0, 10), (20, 30)])
        b.mark_committed(10, 10)  # bridges the gap: one range [0, 30)
        assert all(b.is_committed(s) for s in range(0, 30))
        assert not b.is_committed(30)

    def test_full_raises(self):
        b = ReportBatcher(batch_runs=10, max_buffered=3)
        _offer_range(b, 0, 3)
        with pytest.raises(BatcherFull):
            b.offer(_report(3))
        # A duplicate of a pending report never raises, even at capacity.
        assert b.offer(_report(0)) == "duplicate"

    def test_discard(self):
        b = ReportBatcher(batch_runs=10)
        _offer_range(b, 0, 2)
        b.discard(1)
        assert b.queue_depth == 1
        assert b.offer(_report(1)) == "queued"


class TestTakeReady:
    def test_no_batch_until_full_run(self):
        b = ReportBatcher(batch_runs=5)
        _offer_range(b, 0, 4)
        assert b.take_ready() == []
        b.offer(_report(4))
        batches = b.take_ready()
        assert [(s, [r.seed for r in reports]) for s, reports in batches] == [
            (0, [0, 1, 2, 3, 4])
        ]

    def test_out_of_order_arrival(self):
        b = ReportBatcher(batch_runs=3)
        for seed in (2, 0, 1):
            b.offer(_report(seed))
        [(seed_start, reports)] = b.take_ready()
        assert seed_start == 0
        assert [r.seed for r in reports] == [0, 1, 2]

    def test_batch_must_align_after_committed_prefix(self):
        b = ReportBatcher(batch_runs=3, committed=[(0, 3)])
        _offer_range(b, 3, 6)
        [(seed_start, reports)] = b.take_ready()
        assert seed_start == 3
        assert [r.seed for r in reports] == [3, 4, 5]

    def test_gap_blocks_later_group(self):
        b = ReportBatcher(batch_runs=3)
        _offer_range(b, 0, 3)
        # seeds 4..6 are contiguous with each other but not batch-aligned
        # relative to their own group start; group [4,5,6] is full-size so
        # it ships too — groups are independent contiguous runs.
        _offer_range(b, 4, 7)
        starts = sorted(s for s, _ in b.take_ready())
        assert starts == [0, 4]

    def test_pending_until_mark_committed(self):
        b = ReportBatcher(batch_runs=2)
        _offer_range(b, 0, 2)
        [(seed_start, reports)] = b.take_ready()
        # Reports remain pending (crash between take and commit is safe);
        # the contract is commit-then-mark, so a second take before the
        # mark simply hands the same batch back.
        assert b.queue_depth == 2
        assert b.take_ready() == [(seed_start, reports)]
        b.mark_committed(seed_start, len(reports))
        assert b.queue_depth == 0
        assert b.offer(_report(0)) == "duplicate"

    def test_multiple_batches_from_one_long_run(self):
        b = ReportBatcher(batch_runs=2)
        _offer_range(b, 0, 6)
        starts = [s for s, _ in b.take_ready()]
        assert starts == [0, 2, 4]


class TestTakeAll:
    def test_includes_partial_tail(self):
        b = ReportBatcher(batch_runs=4)
        _offer_range(b, 0, 6)
        batches = b.take_all()
        assert [(s, len(r)) for s, r in batches] == [(0, 4), (4, 2)]

    def test_respects_gaps(self):
        b = ReportBatcher(batch_runs=10)
        _offer_range(b, 0, 2)
        _offer_range(b, 5, 6)
        batches = b.take_all()
        assert [(s, len(r)) for s, r in batches] == [(0, 2), (5, 1)]

    def test_empty(self):
        assert ReportBatcher(batch_runs=4).take_all() == []


class TestPendingReports:
    def test_seed_order(self):
        b = ReportBatcher(batch_runs=10)
        for seed in (7, 1, 4):
            b.offer(_report(seed))
        assert [r.seed for r in b.pending_reports()] == [1, 4, 7]
