"""Wire-format tests: the ``repro-report/v1`` schema and its validation."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.serve.protocol import (
    MAX_BODY_BYTES,
    REPORT_SCHEMA,
    ProtocolError,
    RunReport,
    decode_body,
    encode_batch,
    report_from_wire,
    validate_payload,
)

TABLE_SHA = "f" * 64


def _report(seed=0, **overrides) -> RunReport:
    base = dict(
        seed=seed,
        failed=bool(seed % 2),
        site_obs={1: 3, 0: 1},
        pred_true={2: 4},
        stack=("f", "g") if seed % 2 else None,
        bugs=("bug1",) if seed % 2 else (),
    )
    base.update(overrides)
    return RunReport(**base)


def _valid(reports, **overrides):
    payload = {
        "schema": REPORT_SCHEMA,
        "subject": "demo",
        "table_sha": TABLE_SHA,
        "reports": [r.to_wire() for r in reports],
    }
    payload.update(overrides)
    return payload


def _validate(payload):
    return validate_payload(
        payload,
        subject="demo",
        table_sha=TABLE_SHA,
        n_sites=10,
        n_predicates=10,
        bug_ids=["bug1", "bug2"],
    )


class TestEncodeDecode:
    def test_gzip_round_trip(self):
        reports = [_report(0), _report(1)]
        body, headers = encode_batch(reports, "demo", TABLE_SHA, compress=True)
        assert headers["Content-Encoding"] == "gzip"
        payload = decode_body(body, headers.get("Content-Encoding"))
        decoded = _validate(payload)
        assert decoded == reports

    def test_identity_round_trip(self):
        body, headers = encode_batch([_report(5)], "demo", TABLE_SHA, compress=False)
        assert "Content-Encoding" not in headers
        decoded = _validate(decode_body(body, None))
        assert decoded[0].seed == 5

    def test_gzip_bytes_are_deterministic(self):
        one, _ = encode_batch([_report(3)], "demo", TABLE_SHA)
        two, _ = encode_batch([_report(3)], "demo", TABLE_SHA)
        assert one == two

    def test_broken_gzip_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"not actually gzip", "gzip")
        assert err.value.reason == "bad-encoding"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"{}", "br")
        assert err.value.reason == "bad-encoding"

    def test_unparseable_json_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"{nope", None)
        assert err.value.reason == "bad-json"

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError) as err:
            decode_body(b"[1, 2]", None)
        assert err.value.reason == "bad-schema"

    def test_oversized_body_rejected(self):
        # A gzip bomb decompresses far past the wire size; the guard
        # fires on the decompressed length.
        body = gzip.compress(b" " * (MAX_BODY_BYTES + 1))
        with pytest.raises(ProtocolError) as err:
            decode_body(body, "gzip")
        assert err.value.reason == "too-large"


class TestValidation:
    def test_wrong_schema(self):
        with pytest.raises(ProtocolError) as err:
            _validate(_valid([_report()], schema="repro-report/v0"))
        assert err.value.reason == "bad-schema"

    def test_wrong_subject(self):
        with pytest.raises(ProtocolError) as err:
            _validate(_valid([_report()], subject="other"))
        assert err.value.reason == "wrong-subject"

    def test_table_mismatch(self):
        with pytest.raises(ProtocolError) as err:
            _validate(_valid([_report()], table_sha="0" * 64))
        assert err.value.reason == "table-mismatch"

    def test_empty_reports(self):
        with pytest.raises(ProtocolError) as err:
            _validate(_valid([]))
        assert err.value.reason == "bad-schema"

    def test_duplicate_seed_in_batch(self):
        with pytest.raises(ProtocolError) as err:
            _validate(_valid([_report(4), _report(4)]))
        assert err.value.reason == "bad-report"

    @pytest.mark.parametrize("seed", [-1, 1.5, "3", True, None])
    def test_bad_seed(self, seed):
        wire = _report().to_wire()
        wire["seed"] = seed
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_site_index_out_of_range(self):
        wire = _report().to_wire()
        wire["site_obs"] = {"10": 1}
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_pred_index_out_of_range(self):
        wire = _report().to_wire()
        wire["pred_true"] = {"-1": 1}
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    @pytest.mark.parametrize("count", [0, -2, 1.5, True, "3"])
    def test_bad_counter_value(self, count):
        wire = _report().to_wire()
        wire["site_obs"] = {"1": count}
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_unknown_bug_id(self):
        wire = _report(1).to_wire()
        wire["bugs"] = ["not-a-bug"]
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_bad_stack(self):
        wire = _report().to_wire()
        wire["stack"] = [1, 2]
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_failed_must_be_bool(self):
        wire = _report().to_wire()
        wire["failed"] = 1
        with pytest.raises(ProtocolError):
            report_from_wire(wire, 10, 10, ["bug1"])

    def test_wire_dict_is_json_clean(self):
        wire = _report(7).to_wire()
        assert json.loads(json.dumps(wire)) == wire
