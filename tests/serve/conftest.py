"""Shared fixtures for the ingestion-service tests.

Instrumenting a subject costs a transform + exec, so the ccrypt program
used by most service tests is built once per session.  Server fixtures
are per-test: each test gets its own store directory, service, and (when
needed) a live ``FeedbackServer`` on an ephemeral port.
"""

from __future__ import annotations

import pytest

from repro.instrument.sampling import SamplingPlan
from repro.instrument.tracer import instrument_source
from repro.serve import CollectionService, FeedbackServer
from repro.store import ShardStore
from repro.subjects.ccrypt import CcryptSubject


@pytest.fixture(scope="session")
def ccrypt_subject():
    return CcryptSubject()


@pytest.fixture(scope="session")
def ccrypt_program(ccrypt_subject):
    return instrument_source(ccrypt_subject.source(), ccrypt_subject.name)


@pytest.fixture()
def full_plan():
    return SamplingPlan.full()


def make_service(
    directory, subject, program, plan, batch_runs=20, max_buffered=100_000,
    **service_kwargs,
):
    """A fresh store + service over ``directory``.

    Extra keyword arguments pass through to :class:`CollectionService`
    (steering knobs, stopping policy, ...).
    """
    store = ShardStore.open_or_create(
        str(directory), subject.name, program.table, plan
    )
    service = CollectionService(
        store, subject, batch_runs=batch_runs, max_buffered=max_buffered,
        **service_kwargs,
    )
    return store, service


@pytest.fixture()
def ccrypt_service(tmp_path, ccrypt_subject, ccrypt_program, full_plan):
    """``(store, service)`` over a fresh per-test store."""
    return make_service(
        tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
    )


@pytest.fixture()
def ccrypt_server(ccrypt_service):
    """A started ``FeedbackServer``; closed (drained) at teardown."""
    store, service = ccrypt_service
    server = FeedbackServer(service, port=0).start()
    try:
        yield store, service, server
    finally:
        server.close(drain=True)
