"""CollectionService + FeedbackServer behaviour: ingest, commit, WAL, HTTP."""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.core.engine import AnalysisEngine
from repro.core.importance import importance_scores
from repro.serve import (
    CollectionService,
    ReportSpool,
    RunReport,
    encode_batch,
    run_and_spool,
)
from repro.serve.server import WAL_NAME
from repro.store.shards import QUARANTINE_DIR

from .conftest import make_service


def _synthetic(seed: int, failed: bool = False) -> RunReport:
    return RunReport(
        seed=seed,
        failed=failed,
        site_obs={0: 1},
        pred_true={},
        stack=("boom",) if failed else None,
        bugs=(),
    )


def _post_reports(service, reports, store):
    body, headers = encode_batch(
        reports, store.manifest.subject, store.manifest.table_sha
    )
    return service.ingest_body(body, headers.get("Content-Encoding"))


class TestIngestCommit:
    def test_full_batch_commits_a_shard(self, ccrypt_service):
        store, service = ccrypt_service  # batch_runs=20
        status, doc = _post_reports(
            service, [_synthetic(s) for s in range(20)], store
        )
        assert status == 200
        assert doc["accepted"] == list(range(20))
        assert doc["duplicate"] == []
        assert store.n_shards == 1
        assert store.n_runs == 20
        assert service.batcher.queue_depth == 0

    def test_partial_batch_stays_queued(self, ccrypt_service):
        store, service = ccrypt_service
        status, _ = _post_reports(
            service, [_synthetic(s) for s in range(5)], store
        )
        assert status == 200
        assert store.n_shards == 0
        assert service.batcher.queue_depth == 5

    def test_duplicates_acknowledged(self, ccrypt_service):
        store, service = ccrypt_service
        _post_reports(service, [_synthetic(s) for s in range(20)], store)
        status, doc = _post_reports(
            service, [_synthetic(s) for s in range(18, 22)], store
        )
        assert status == 200
        assert doc["duplicate"] == [18, 19]
        assert doc["accepted"] == [20, 21]

    def test_flush_commits_partial_tail(self, ccrypt_service):
        store, service = ccrypt_service
        _post_reports(service, [_synthetic(s) for s in range(7)], store)
        assert service.flush() == 7
        assert store.n_runs == 7
        assert service.batcher.queue_depth == 0

    def test_close_drains(self, ccrypt_service):
        store, service = ccrypt_service
        _post_reports(service, [_synthetic(s) for s in range(3)], store)
        assert service.close(drain=True) == 3
        assert store.n_runs == 3


class TestRejection:
    def test_bad_payload_quarantined(self, ccrypt_service):
        store, service = ccrypt_service
        body, headers = encode_batch(
            [_synthetic(0)], store.manifest.subject, "0" * 64
        )
        status, doc = service.ingest_body(body, headers.get("Content-Encoding"))
        assert status == 400
        assert doc["error"] == "table-mismatch"
        qdir = os.path.join(store.directory, QUARANTINE_DIR)
        uploads = [n for n in os.listdir(qdir) if n.startswith("upload-")]
        payloads = [n for n in uploads if not n.endswith(".reason.json")]
        reasons = [n for n in uploads if n.endswith(".reason.json")]
        assert len(payloads) == 1 and len(reasons) == 1
        with open(os.path.join(qdir, reasons[0]), encoding="utf-8") as handle:
            record = json.load(handle)
        assert record["reason"] == "upload-table-mismatch"

    def test_garbage_body_rejected(self, ccrypt_service):
        store, service = ccrypt_service
        status, doc = service.ingest_body(b"{nope", None)
        assert status == 400
        assert doc["error"] == "bad-json"
        assert store.n_runs == 0

    def test_buffer_full_returns_503_and_rolls_back(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        store, service = make_service(
            tmp_path / "store",
            ccrypt_subject,
            ccrypt_program,
            full_plan,
            batch_runs=100,
            max_buffered=10,
        )
        status, _ = _post_reports(
            service, [_synthetic(s) for s in range(10)], store
        )
        assert status == 200
        status, doc = _post_reports(
            service, [_synthetic(s) for s in range(10, 15)], store
        )
        assert status == 503
        assert doc["error"] == "buffer-full"
        # The partially offered batch was rolled back whole.
        assert service.batcher.queue_depth == 10
        # And nothing of it leaked into the WAL.
        with open(service.wal_path, encoding="utf-8") as handle:
            seeds = [json.loads(line)["seed"] for line in handle if line.strip()]
        assert seeds == list(range(10))


class TestMetrics:
    def test_committed_counters_match_store(self, ccrypt_service):
        store, service = ccrypt_service
        _post_reports(service, [_synthetic(s) for s in range(47)], store)
        doc = service.metrics_payload()
        counters = doc["counters"]
        assert counters["serve.reports_committed"] == store.n_runs == 40
        assert counters["serve.batches_committed"] == store.n_shards == 2
        assert counters["serve.reports_queued"] == 47
        assert doc["gauges"]["serve.queue_depth"] == 7.0
        service.flush()
        counters = service.metrics_payload()["counters"]
        assert counters["serve.reports_committed"] == store.n_runs == 47


class TestScores:
    def test_empty_store_scores(self, ccrypt_service):
        store, service = ccrypt_service
        doc = service.scores_payload()
        assert doc["schema"] == "repro-scores/v1"
        assert doc["n_runs"] == 0
        assert doc["predicates"] == []

    def test_scores_bitwise_match_analyze(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        store, service = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
        )
        spool = ReportSpool(str(tmp_path / "spool"))
        run_and_spool(ccrypt_subject, ccrypt_program, full_plan, spool, 60)
        reports = [spool.load(seed) for seed in spool.pending_seeds()]
        _post_reports(service, reports, store)
        assert store.n_runs == 60

        live = service.scores_payload(k=10)
        engine = AnalysisEngine(jobs=1)
        scoring = engine.score_stats(store.sufficient_stats())
        imp = importance_scores(scoring.scores)
        order = sorted(
            scoring.pruning.kept_indices.tolist(),
            key=lambda i: imp.importance[i],
            reverse=True,
        )[:10]
        assert [p["index"] for p in live["predicates"]] == order
        for entry in live["predicates"]:
            i = entry["index"]
            # Floats must agree bit for bit with the analyze path.
            assert entry["importance"] == float(imp.importance[i])
            assert entry["increase"] == float(scoring.scores.increase[i])
            assert entry["failure"] == float(scoring.scores.failure[i])
            assert entry["context"] == float(scoring.scores.context[i])
            assert entry["F"] == int(scoring.scores.F[i])
            assert entry["S"] == int(scoring.scores.S[i])
            assert entry["F_obs"] == int(scoring.scores.F_obs[i])
            assert entry["S_obs"] == int(scoring.scores.S_obs[i])
        assert live["n_runs"] == 60
        assert live["num_failing"] == store.sufficient_stats().num_failing


class TestWalRestart:
    def test_acked_reports_survive_restart(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        store, service = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
        )
        _post_reports(service, [_synthetic(s) for s in range(27)], store)
        assert store.n_runs == 20  # one full batch committed
        assert service.batcher.queue_depth == 7
        # Simulate a SIGKILL: no drain, no close -- just reopen the store.
        store2, service2 = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
        )
        assert store2.n_runs == 20
        assert service2.batcher.queue_depth == 7
        # The replayed reports still commit and dedup normally.
        _post_reports(
            service2, [_synthetic(s) for s in range(25, 40)], store2
        )
        assert store2.n_runs == 40
        assert service2.batcher.queue_depth == 0

    def test_torn_tail_tolerated(
        self, tmp_path, ccrypt_subject, ccrypt_program, full_plan
    ):
        store, service = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
        )
        _post_reports(service, [_synthetic(s) for s in range(3)], store)
        with open(os.path.join(store.directory, WAL_NAME), "a") as handle:
            handle.write('{"seed": 99, "fail')  # crash mid-append
        store2, service2 = make_service(
            tmp_path / "store", ccrypt_subject, ccrypt_program, full_plan
        )
        assert service2.batcher.queue_depth == 3
        events = [r["event"] for r in store2.read_log()]
        assert "serve-wal-torn-tail" in events

    def test_wal_compacted_after_commit(self, ccrypt_service):
        store, service = ccrypt_service
        _post_reports(service, [_synthetic(s) for s in range(23)], store)
        with open(service.wal_path, encoding="utf-8") as handle:
            seeds = [json.loads(line)["seed"] for line in handle if line.strip()]
        assert seeds == [20, 21, 22]  # committed prefix compacted away


class TestHttpEndpoints:
    def test_healthz(self, ccrypt_server):
        store, service, server = ccrypt_server
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as resp:
            doc = json.loads(resp.read())
        assert doc["status"] == "ok"
        assert doc["subject"] == store.manifest.subject
        assert doc["queue_depth"] == 0

    def test_post_and_scores_over_http(self, ccrypt_server):
        store, service, server = ccrypt_server
        body, headers = encode_batch(
            [_synthetic(s, failed=s == 3) for s in range(20)],
            store.manifest.subject,
            store.manifest.table_sha,
        )
        request = urllib.request.Request(
            server.url + "/reports", data=body, headers=headers, method="POST"
        )
        with urllib.request.urlopen(request, timeout=5) as resp:
            doc = json.loads(resp.read())
        assert len(doc["accepted"]) == 20
        with urllib.request.urlopen(server.url + "/scores?k=3", timeout=5) as resp:
            scores = json.loads(resp.read())
        assert scores["n_runs"] == 20
        assert len(scores["predicates"]) <= 3

    def test_metrics_endpoint(self, ccrypt_server):
        _, _, server = ccrypt_server
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as resp:
            doc = json.loads(resp.read())
        assert doc["schema"] == "repro-metrics/v1"

    def test_unknown_paths_404(self, ccrypt_server):
        _, _, server = ccrypt_server
        for method, path in (("GET", "/nope"), ("POST", "/nope")):
            request = urllib.request.Request(
                server.url + path,
                data=b"" if method == "POST" else None,
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=5)
            assert err.value.code == 404

    def test_bad_scores_query_400(self, ccrypt_server):
        _, _, server = ccrypt_server
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/scores?k=banana", timeout=5)
        assert err.value.code == 400
