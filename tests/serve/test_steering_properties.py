"""Property-based steering laws: exact wire, pure refit, monotone stop.

Hypothesis drives the three invariants the steering acceptance suite
pins only pointwise:

* the rate table survives the JSON wire **bitwise** (a client applies
  exactly the floats the daemon fit, never a rounded cousin);
* the refit is a pure function of the committed snapshot -- same
  manifest digest, same document, byte for byte;
* the CI-based stopping verdict is monotone in evidence -- a converged
  population stays converged under any integer scaling of its counts
  (more of the same evidence can never un-converge a subject).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.stopping import StoppingPolicy, assess_stats
from repro.instrument.sampling import MIN_ADAPTIVE_RATE
from repro.serve.steering import (
    SteeringDocument,
    fit_steering,
    manifest_digest,
    steering_from_wire,
)
from repro.store import ShardStore
from repro.store.incremental import SufficientStats

from tests.conftest import build_synthetic_store
from tests.helpers import make_reports

pytestmark = pytest.mark.property

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

rate_tables = st.lists(
    st.floats(
        min_value=MIN_ADAPTIVE_RATE,
        max_value=1.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=64,
)


@SETTINGS
@given(rates=rate_tables, epoch=st.integers(min_value=0, max_value=10**9))
def test_rate_table_wire_round_trip_is_exact(rates, epoch):
    document = SteeringDocument(
        subject="synthetic",
        table_sha="a" * 64,
        epoch=epoch,
        manifest_sha="b" * 64,
        n_runs=epoch,
        num_failing=0,
        rates=rates,
    )
    wire_text = json.dumps(document.to_wire(), sort_keys=True)
    decoded = steering_from_wire(json.loads(wire_text))
    # Bitwise equality, not approx: repr-based JSON floats round-trip.
    assert decoded.rates == rates
    assert decoded.version == document.version
    # A second trip changes nothing (the wire form is a fixed point).
    assert json.dumps(decoded.to_wire(), sort_keys=True) == wire_text


@pytest.fixture(scope="module")
def synthetic_store():
    root = tempfile.mkdtemp(prefix="steer-prop-")
    store, _ = build_synthetic_store(
        os.path.join(root, "baseline"), k=4, n_runs=48, n_preds=6, seed=11
    )
    yield store
    shutil.rmtree(root, ignore_errors=True)


@SETTINGS
@given(
    watchlist_k=st.integers(min_value=1, max_value=8),
    target_samples=st.floats(min_value=1.0, max_value=500.0),
)
def test_refit_is_deterministic_in_the_snapshot(
    synthetic_store, watchlist_k, target_samples
):
    """Same manifest digest -> byte-identical steering document."""
    store_a = ShardStore.open(synthetic_store.directory)
    store_b = ShardStore.open(synthetic_store.directory)
    assert manifest_digest(store_a.manifest) == manifest_digest(store_b.manifest)
    totals = store_a.load_merged()[0].site_counts.sum(axis=0)
    fits = [
        fit_steering(
            store,
            "synthetic",
            totals,
            watchlist_k=watchlist_k,
            target_samples=target_samples,
        )
        for store in (store_a, store_b)
    ]
    wires = [json.dumps(fit.to_wire(), sort_keys=True) for fit in fits]
    assert wires[0] == wires[1]
    assert fits[0].manifest_sha == manifest_digest(store_a.manifest)
    assert fits[0].epoch == store_a.n_runs


populations = st.lists(
    st.tuples(
        st.booleans(),
        st.sets(st.integers(min_value=0, max_value=3), max_size=4),
    ),
    min_size=20,
    max_size=60,
)


@SETTINGS
@given(
    population=populations,
    m=st.integers(min_value=2, max_value=8),
    epsilon=st.floats(min_value=0.02, max_value=1.0),
)
def test_converged_is_monotone_under_count_scaling(population, m, epsilon):
    runs = [(failed, preds, None) for failed, preds in population]
    stats = SufficientStats.from_reports(make_reports(5, runs))
    scaled = SufficientStats(
        F=stats.F * m,
        S=stats.S * m,
        F_obs=stats.F_obs * m,
        S_obs=stats.S_obs * m,
        num_failing=stats.num_failing * m,
        num_successful=stats.num_successful * m,
    )
    policy = StoppingPolicy(min_runs=10, min_failing=1, epsilon=epsilon)
    if assess_stats(stats, policy).converged:
        assert assess_stats(scaled, policy).converged
